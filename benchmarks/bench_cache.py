"""[EXT] Persistent result cache: warm grids and cached explorations.

The PR-5 perf claim, guarded (like the parallel-grid one) by
bit-for-bit equality so the speedup can never be bought with a
behaviour change:

* **Warm conformance grid** — a dfm grid whose cells are all in the
  persistent store must be ≥5× faster than the cold run that computed
  them, with identical per-cell schedule digests and an identical
  report digest.  Hits are JSON reads; the cells never execute.
* **Cached solver exploration** — a repeated ``solve`` of the same
  description/budgets is served from the store, digest-identical to
  the computed result.
* **Checkpoint resume overhead** — resuming a truncated exploration
  re-derives the carried values by witness replay; the rows record
  what that portability costs relative to the straight run.
"""

import os
import time

from conftest import banner, row

from repro.cache.store import CacheStore
from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.solver import SmoothSolutionSolver
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.par import run_conformance_parallel

GRID_SEEDS = range(int(os.environ.get("CACHE_GRID_SEEDS", "4")))

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def _dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def _cell_digests(report):
    return [
        (c.plan, c.seed, c.outcome,
         c.schedule.digest() if c.schedule is not None else None)
        for c in report.cases
    ]


def test_warm_grid_speedup(tmp_path):
    """Cold dfm grid vs the warm rerun served from the store: same
    per-cell digests, same report digest, ≥5× faster."""

    def grid(store):
        started = time.perf_counter()
        report = run_conformance_parallel(
            "dfm", seeds=GRID_SEEDS, workers=1, cache=store)
        return report, time.perf_counter() - started

    cold_store = CacheStore(tmp_path)
    cold, cold_s = grid(cold_store)
    assert cold.all_conform, cold.violations
    assert cold_store.counters()["write"] == len(cold.cases)

    best_warm_s = float("inf")
    warm = None
    for _ in range(3):
        warm_store = CacheStore(tmp_path)
        warm, warm_s = grid(warm_store)
        best_warm_s = min(best_warm_s, warm_s)
        assert warm_store.counters()["hit"] == len(warm.cases)

    assert all(c.cached for c in warm.cases)
    assert _cell_digests(warm) == _cell_digests(cold)
    assert warm.digest() == cold.digest()

    speedup = cold_s / best_warm_s if best_warm_s > 0 else 0.0
    banner("EXT-CACHE", "warm dfm grid served from the store")
    row("cells", len(cold.cases))
    row("cold grid (ms)", round(cold_s * 1e3, 1))
    row("warm grid (ms, best-of-3)", round(best_warm_s * 1e3, 1))
    row("speedup", round(speedup, 2))
    row("per-cell digests identical", True)
    row("report digest identical", True)
    assert speedup >= 5.0, (
        f"warm grid only {speedup:.2f}x faster than cold "
        f"({cold_s * 1e3:.0f}ms -> {best_warm_s * 1e3:.0f}ms)")


def test_cached_solver_exploration(tmp_path, benchmark):
    """Repeated solve of the same exploration: a store hit,
    digest-identical to the computed result."""
    depth = int(os.environ.get("CACHE_SOLVER_DEPTH", "5"))
    cold = SmoothSolutionSolver.over_channels(
        _dfm(), [B, C, D], cache=CacheStore(tmp_path)).explore(depth)

    warm_solver = SmoothSolutionSolver.over_channels(
        _dfm(), [B, C, D], cache=CacheStore(tmp_path))
    warm = benchmark(lambda: warm_solver.explore(depth))
    assert warm.digest() == cold.digest()

    banner("EXT-CACHE", "solver exploration served from the store")
    row("depth", depth)
    row("nodes explored (cold)", cold.nodes_explored)
    row("digest identical", True)


def test_checkpoint_resume_overhead():
    """Truncate at ~1/3 of the nodes, resume, compare total cost
    against the straight run — the price of pure-JSON checkpoints."""
    depth = int(os.environ.get("CACHE_SOLVER_DEPTH", "5"))

    def solver():
        return SmoothSolutionSolver.over_channels(_dfm(), [B, C, D])

    started = time.perf_counter()
    straight = solver().explore(depth)
    straight_s = time.perf_counter() - started

    budget = max(1, straight.nodes_explored // 3)
    started = time.perf_counter()
    partial = solver().explore(depth, max_nodes=budget)
    ckpt = partial.checkpoint()
    resumed = solver().explore(depth, resume_from=ckpt)
    split_s = time.perf_counter() - started

    assert partial.truncated
    assert resumed.digest() == straight.digest()

    banner("EXT-CACHE", "truncate→checkpoint→resume vs straight run")
    row("nodes (straight)", straight.nodes_explored)
    row("truncation budget", budget)
    row("checkpoint traces carried", len(ckpt))
    row("straight run (ms)", round(straight_s * 1e3, 1))
    row("truncate+resume total (ms)", round(split_s * 1e3, 1))
    row("overhead factor",
        round(split_s / straight_s if straight_s > 0 else 0.0, 2))
    row("digest identical", True)
