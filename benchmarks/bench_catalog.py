"""[E1–E6] The §4 process catalog: per-process claims.

* E1 CHAOS: every trace over ``b`` is a smooth solution of ``K ⟵ K``.
* E2 Ticks: the only smooth solution of ``b ⟵ T;b`` is ``(b,T)^ω``.
* E3 Random bit (sequence): ``R(b) ⟵ T̄`` has exactly the traces
  ``(b,T)`` and ``(b,F)``; ``R(b) ⟵ c`` answers one bit per tick.
* E4 Fair random sequence: smooth solutions carry infinitely many of
  both bits; all-T / all-F streams are rejected.
* E5 Finite ticks: ``(d,T)^i`` is a trace for every i; ``(d,T)^ω`` not.
* E6 Random number: the traces are exactly ``(d,n)`` for n ∈ ℕ.
"""

from conftest import banner, row

from repro.processes import (
    chaos,
    fair_random,
    finite_ticks,
    random_bit,
    random_number,
    ticks,
)
from repro.processes.fair_random import bit_trace
from repro.processes.ticks import the_trace
from repro.traces import Trace


def get(process, name):
    return next(c for c in process.channels if c.name == name)


def test_e1_chaos(benchmark):
    process = chaos.make()
    count = benchmark(lambda: len(process.traces_upto(3)))
    banner("E1", "CHAOS: every trace is a smooth solution of K ⟵ K")
    row("traces to depth 3 (expect 1+2+4+8)", count)
    assert count == 15


def test_e2_ticks(benchmark):
    process = ticks.make()
    b = next(iter(process.channels))

    def check():
        finite = process.traces_upto(5)
        omega_ok = process.description().is_smooth_solution(
            the_trace(b), depth=32
        )
        return finite, omega_ok

    finite, omega_ok = benchmark(check)
    banner("E2", "Ticks: only (b,T)^ω is a smooth solution of b ⟵ T;b")
    row("finite smooth solutions", len(finite))
    row("(b,T)^ω smooth", omega_ok)
    assert not finite and omega_ok


def test_e3_random_bit(benchmark):
    process = random_bit.make()
    traces = benchmark(lambda: process.traces_upto(3))
    banner("E3", "Random bit: exactly the traces (b,T) and (b,F)")
    row("traces", sorted(repr(t) for t in traces))
    assert len(traces) == 2


def test_e3_random_bit_sequence(benchmark):
    process = random_bit.make_sequence()
    b, c = get(process, "b"), get(process, "c")

    def counts_balance():
        return all(
            t.count_on(b) == t.count_on(c)
            for t in process.traces_upto(4)
        )

    balanced = benchmark(counts_balance)
    banner("E3", "Random bit sequence: one bit per tick (R(b) ⟵ c)")
    row("bit count = tick count in every trace", balanced)
    assert balanced


def test_e4_fair_random(benchmark):
    process = fair_random.make()
    c = get(process, "c")
    desc = process.description()

    def verdicts():
        fair = desc.is_smooth_solution(bit_trace(c, ("T", "F")),
                                       depth=24)
        all_t = desc.is_smooth_solution(
            Trace.cycle_pairs([(c, "T")]), depth=24
        )
        all_f = desc.is_smooth_solution(
            Trace.cycle_pairs([(c, "F")]), depth=24
        )
        return fair, all_t, all_f

    fair, all_t, all_f = benchmark(verdicts)
    banner("E4", "Fair random sequence: both bits infinitely often")
    row("fair alternation smooth", fair)
    row("T^ω smooth (must be False)", all_t)
    row("F^ω smooth (must be False)", all_f)
    assert fair and not all_t and not all_f


def test_e5_finite_ticks(benchmark):
    process = finite_ticks.make()
    d = get(process, "d")

    def check():
        finite_ok = all(
            process.is_trace(Trace.from_pairs([(d, "T")] * i),
                             depth=32)
            for i in range(5)
        )
        omega = Trace.cycle_pairs([(d, "T")])
        return finite_ok, process.is_trace(omega)

    finite_ok, omega_ok = benchmark(check)
    banner("E5", "Finite ticks: (d,T)^i for every i, never (d,T)^ω")
    row("(d,T)^i traces, i < 5", finite_ok)
    row("(d,T)^ω a trace (must be False)", omega_ok)
    assert finite_ok and not omega_ok


def test_e6_random_number(benchmark):
    process = random_number.make()
    d = get(process, "d")

    def check():
        naturals_ok = all(
            process.is_trace(Trace.from_pairs([(d, n)]), depth=48)
            for n in (0, 1, 2, 5, 11)
        )
        rejects = not process.is_trace(Trace.empty()) and \
            not process.is_trace(Trace.from_pairs([(d, 1), (d, 2)]))
        return naturals_ok, rejects

    naturals_ok, rejects = benchmark(check)
    banner("E6", "Random number: traces = {(d,n) : n ∈ ℕ}, exactly one")
    row("n ∈ {0,1,2,5,11} all traces", naturals_ok)
    row("ε and double outputs rejected", rejects)
    assert naturals_ok and rejects
