"""[F1] Figure 1 / §2.1: the two-copy loop.

Paper claims regenerated:
* ``c = b, b = c`` — least fixpoint is the pair of empty sequences;
* ``c = b, b = 0;c`` — least fixpoint is ``0^ω``; every finite
  computation is a prefix of it, and the computation never terminates;
* Theorem 4: those least fixpoints are the unique smooth solutions.
"""

from conftest import banner, row

from repro.channels import Channel
from repro.core import kahn_least_fixpoint
from repro.core.description import DescriptionSystem
from repro.kahn import RandomOracle, run_network
from repro.kahn.agents import copy_agent, prepend0_agent
from repro.processes.deterministic import (
    copy_description,
    prepend0_description,
)
from repro.seq import EMPTY
from repro.traces import Trace

B = Channel("b", alphabet={0})
C = Channel("c", alphabet={0})


def loop_system():
    return DescriptionSystem(
        [copy_description(B, C), copy_description(C, B)],
        channels=[B, C], name="fig1",
    )


def modified_system():
    return DescriptionSystem(
        [copy_description(B, C), prepend0_description(C, B)],
        channels=[B, C], name="fig1-modified",
    )


def test_plain_loop_least_fixpoint(benchmark):
    semantics = benchmark(lambda: kahn_least_fixpoint(loop_system()))
    banner("F1", "c ⟵ b , b ⟵ c: least fixpoint is (ε, ε)")
    env = semantics.environment()
    row("lfp b", repr(env[B]))
    row("lfp c", repr(env[C]))
    row("converged", semantics.converged)
    assert env[B] == EMPTY and env[C] == EMPTY


def test_plain_loop_unique_smooth_solution(benchmark):
    system = loop_system()

    def verdicts():
        empty_ok = system.is_smooth_solution(Trace.empty())
        one_step = system.is_smooth_solution(
            Trace.from_pairs([(B, 0), (C, 0)])
        )
        return empty_ok, one_step

    empty_ok, one_step = benchmark(verdicts)
    banner("F1", "the only smooth solution is the empty trace (Thm 4)")
    row("ε smooth", empty_ok)
    row("⟨(b,0)(c,0)⟩ smooth", one_step)
    assert empty_ok and not one_step


def test_modified_loop_zero_omega(benchmark):
    def lazy_lfp():
        semantics = kahn_least_fixpoint(modified_system(),
                                        max_iterations=12)
        return semantics.lazy_environment()[B].take(16)

    prefix = benchmark(lazy_lfp)
    banner("F1", "c ⟵ b , b ⟵ 0;c: least solution is 0^ω")
    row("lfp b prefix", list(prefix))
    assert list(prefix) == [0] * 16


def test_modified_loop_never_terminates(benchmark):
    def run():
        return run_network(
            {"p1": copy_agent(B, C), "p2": prepend0_agent(C, B)},
            [B, C], RandomOracle(0), max_steps=400,
        )

    result = benchmark(run)
    banner("F1", "the modified network's computation never terminates")
    row("quiescent at step bound", result.quiescent)
    row("messages sent (all 0)", result.trace.length())
    assert not result.quiescent
    assert set(e.message for e in result.trace) == {0}


def test_modified_loop_omega_is_smooth(benchmark):
    system = modified_system()
    omega = Trace.cycle_pairs([(B, 0), (C, 0)])
    ok = benchmark(
        lambda: system.is_smooth_solution(omega, depth=32)
    )
    banner("F1", "⟨(b,0)(c,0)⟩^ω is a smooth solution "
                 "(finite prefixes are not)")
    row("0^ω smooth", ok)
    assert ok
