"""[F2] Figure 2 / §2.2: the discriminated fair merge ``dfm``.

Paper claims regenerated:
* the descriptions ``even(d) ⟵ b, odd(d) ⟵ c`` capture nondeterminism
  *and* fairness: smooth solutions are exactly the fair merges;
* the §3.1.1 quiescent / non-quiescent classification;
* solver enumeration matches operational sampling (computations ⇔
  smooth solutions).
"""

from conftest import banner, row

from repro.channels import Channel
from repro.core import Description, combine, solve
from repro.functions import chan, even_of, odd_of
from repro.kahn import check_operational_soundness, collect_traces
from repro.kahn.agents import dfm_agent, source_agent
from repro.traces import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def network():
    return {
        "env-b": source_agent(B, [0, 2]),
        "env-c": source_agent(C, [1]),
        "dfm": dfm_agent(B, C, D),
    }


def test_classification_of_histories(benchmark):
    desc = dfm()
    histories = [
        ("ε", Trace.empty(), "quiescent"),
        ("(b,0)(d,0)", Trace.from_pairs([(B, 0), (D, 0)]),
         "quiescent"),
        ("(b,0)(c,1)(c,3)(d,1)(d,3)(d,0)",
         Trace.from_pairs([(B, 0), (C, 1), (C, 3), (D, 1), (D, 3),
                           (D, 0)]), "quiescent"),
        ("(b,0)", Trace.from_pairs([(B, 0)]), "non-quiescent"),
        ("(b,0)(d,0)(c,1)",
         Trace.from_pairs([(B, 0), (D, 0), (C, 1)]),
         "non-quiescent"),
    ]

    def classify():
        return [desc.check(t) for _, t, _ in histories]

    verdicts = benchmark(classify)
    banner("F2", "§3.1.1 classification of dfm communication histories")
    for (label, _, expected), verdict in zip(histories, verdicts):
        got = "quiescent" if verdict.is_smooth else "non-quiescent"
        row(label, f"{got}  (paper: {expected})")
        assert got == expected


def test_solver_enumeration(benchmark):
    result = benchmark(lambda: solve(dfm(), [B, C, D], max_depth=4))
    banner("F2", "§3.3 enumeration of dfm smooth solutions to depth 4")
    row("nodes explored", result.nodes_explored)
    row("finite smooth solutions", len(result.finite_solutions))
    assert result.finite_solutions


def test_operational_cross_check(benchmark):
    def check():
        return check_operational_soundness(
            network, [B, C, D], dfm(), seeds=range(30),
            max_steps=80,
        )

    report = benchmark(check)
    banner("F2", "computations ⇔ smooth solutions (operational sample)")
    row("quiescent runs smooth", f"{report.quiescent_smooth}"
        f"/{report.quiescent_checked}")
    row("all agree", report.all_agree)
    assert report.all_agree


def test_fair_merge_output_orders(benchmark):
    def outputs():
        sample = collect_traces(network, [B, C, D],
                                seeds=range(80), max_steps=80)
        return {
            tuple(t.messages_on(D))
            for t in sample.distinct_quiescent()
        }

    got = benchmark(outputs)
    banner("F2", "all fair interleavings of ⟨0 2⟩ and ⟨1⟩ are computed")
    row("output orders observed", sorted(got))
    assert got == {(0, 2, 1), (0, 1, 2), (1, 0, 2)}
