"""[S84] §8.4: smooth-solution induction.

Claims regenerated:
* the rule proves the §2.3-style safety property for dfm (outputs are
  justified by prior inputs);
* the rule's acknowledged weakness (Trakhtenbrot): it ignores the limit
  condition, so some true properties of all smooth solutions have
  unprovable premises.
"""

from conftest import banner, row

from repro.channels import Channel
from repro.core import (
    Description,
    SmoothSolutionSolver,
    check_premises_on_tree,
    combine,
    conclude,
    holds_on_prefixes,
)
from repro.functions import chan, even_of, odd_of
from repro.functions.base import const_seq
from repro.seq import fseq
from repro.traces import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def outputs_justified(t: Trace) -> bool:
    pool = [e.message for e in t if e.channel in (B, C)]
    for m in t.messages_on(D):
        if m in pool:
            pool.remove(m)
        else:
            return False
    return True


def test_safety_by_induction(benchmark):
    desc = dfm()
    solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])

    def prove():
        report = check_premises_on_tree(
            solver, outputs_justified, max_depth=4
        )
        solution = Trace.from_pairs([(B, 0), (C, 1), (D, 1), (D, 0)])
        return report, conclude(report, desc, solution)

    report, concluded = benchmark(prove)
    banner("S84", "safety of dfm by smooth-solution induction")
    row("base φ(⊥)", report.base_holds)
    row("step failures", len(report.step_failures))
    row("edges checked", report.edges_checked)
    row("φ concluded for a smooth solution", concluded)
    assert report.premises_hold and concluded


def test_direct_check_agrees(benchmark):
    solution = Trace.cycle_pairs([(B, 0), (D, 0)])
    ok = benchmark(
        lambda: holds_on_prefixes(outputs_justified, solution, 32)
    )
    banner("S84", "direct prefix check agrees on an infinite solution")
    row("φ on all prefixes to 32", ok)
    assert ok


def test_rule_incompleteness(benchmark):
    bz = Channel("bz", alphabet={0})
    desc = Description(chan(bz), const_seq(fseq(0)))
    solver = SmoothSolutionSolver.over_channels(desc, [bz])
    phi = lambda t: t.length() > 0  # true of every smooth solution

    def attempt():
        solutions = solver.explore(3).finite_solutions
        all_satisfy = all(phi(s) for s in solutions)
        report = check_premises_on_tree(solver, phi, max_depth=3)
        return all_satisfy, report.premises_hold

    all_satisfy, premises = benchmark(attempt)
    banner("S84", "incompleteness: a true property the rule misses")
    row("φ holds of every smooth solution", all_satisfy)
    row("rule premises provable (False!)", premises)
    assert all_satisfy and not premises
