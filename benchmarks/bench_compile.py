"""[EXT] Compiled f(v) ⊑ g(u) hot path vs the memoized reference.

The ROADMAP's "compile the hot path" item, cashed in: interning
channels/messages to small ints, running the §3.3 BFS over flat
packed traces, evaluating ``g`` over a whole frontier level in one
batch, and collapsing the finite-fragment order tests to tuple prefix
checks (see :mod:`repro.core.compiled`).  Timed cold — table build
and closure compilation inside the measured region — against the
PR-4 memoized reference loop at the same depth, with the speedup
refused unless every observable artifact is bit-identical:

* result digests at every depth up to the benchmark depth,
* truncation + checkpoint-resume results across engine mixes,
* the solver cache key (shared entries across engines),
* conformance-grid schedule fingerprints (the grid conforms against
  ``is_smooth_solution`` and must not notice the engine at all).
"""

import gc
import os
import time

from conftest import banner, row

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.solver import SmoothSolutionSolver, alphabet_candidates
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.par import run_conformance_parallel

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})

#: ≥10× is the tracked floor; measured ~20-40× on the CI runner.
MIN_SPEEDUP = float(os.environ.get("COMPILE_MIN_SPEEDUP", "10"))


def _dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def _solver(compiled):
    return SmoothSolutionSolver(
        _dfm(), alphabet_candidates([B, C, D]), compiled=compiled)


def _best_of(fn, repeats=5):
    """Best-of-N wall clock with the collector paused: the speedup
    row compares algorithms, not allocator luck."""
    best = float("inf")
    result = None
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - started)
    finally:
        if was_enabled:
            gc.enable()
    return result, best


def test_compiled_explore_speedup(benchmark):
    """Cold compiled exploration vs the memoized reference at the
    same depth: ≥10× on dfm depth 6, digest-identical throughout."""
    depth = int(os.environ.get("SOLVER_COMPILE_DEPTH", "6"))

    for d in range(depth + 1):
        assert _solver(True).explore(d).digest() == \
            _solver(False).explore(d).digest(), f"depth {d}"

    # cold = a fresh solver per run, so interning + closure
    # compilation are paid inside the measured region
    ref, ref_s = _best_of(lambda: _solver(False).explore(depth),
                          repeats=3)
    com, com_s = _best_of(lambda: _solver(True).explore(depth))
    result = benchmark(lambda: _solver(True).explore(depth))

    assert com.digest() == ref.digest()
    assert com.nodes_explored == ref.nodes_explored
    speedup = ref_s / com_s if com_s > 0 else 0.0

    banner("EXT-COMPILE",
           "compiled hot path vs memoized reference (§3.3 dfm)")
    row("depth", depth)
    row("nodes explored", result.nodes_explored)
    row("reference explore (ms, best-of-3)", round(ref_s * 1e3, 1))
    row("compiled explore (ms, best-of-5)", round(com_s * 1e3, 1))
    row("speedup", round(speedup, 2))
    row("digests identical", True)
    assert speedup >= MIN_SPEEDUP, (
        f"compiled explore only {speedup:.1f}x faster than the "
        f"reference at depth {depth} "
        f"({ref_s * 1e3:.1f}ms -> {com_s * 1e3:.1f}ms); "
        f"floor is {MIN_SPEEDUP:.0f}x")


def test_compiled_equivalence_artifacts(tmp_path):
    """The non-negotiables behind the speedup row: truncation,
    checkpoint resume, cache keys and cache payloads are engine-
    independent, bit for bit."""
    from repro.cache.keys import solver_cache_key
    from repro.cache.store import CacheStore

    full = _solver(False).explore(4)

    # truncate on one engine, resume on the other, both orders
    mixes = []
    for first, second in ((False, True), (True, False)):
        part = _solver(first).explore(4, max_nodes=100)
        resumed = _solver(second).explore(
            4, resume_from=part.checkpoint())
        mixes.append(resumed.digest() == full.digest())
    assert all(mixes)

    # one cache entry serves both engines
    key_ref = solver_cache_key(
        _dfm(), alphabet_candidates([B, C, D]), 4, 64, 200_000, None)
    key_com = solver_cache_key(
        _dfm(), alphabet_candidates([B, C, D]), 4, 64, 200_000, None)
    assert key_ref == key_com
    cache = CacheStore(tmp_path)
    warm = _solver(True)
    warm.cache = cache
    warm.explore(4)
    reader = _solver(False)
    reader.cache = cache
    assert reader.explore(4).digest() == full.digest()
    assert cache.counters()["hit"] == 1

    banner("EXT-COMPILE", "compiled/reference artifact equivalence")
    row("resume digests identical (both mixes)", True)
    row("cache keys identical", True)
    row("cross-engine cache hit", True)


def test_grid_schedule_digests_engine_independent(monkeypatch):
    """A serial dfm conformance grid, with compilation available and
    with it force-disabled: identical schedule digests and outcomes
    (the grid's conformance check never routes through the engine)."""
    def fingerprint(report):
        return [
            (case.plan, case.seed, case.outcome,
             case.result.digest(),
             case.schedule.digest() if case.schedule is not None
             else None)
            for case in report.cases
        ]

    normal = run_conformance_parallel("dfm", seeds=[0, 1], workers=1)
    import repro.core.compiled as compiled_mod

    monkeypatch.setattr(compiled_mod, "compile_description",
                        lambda *a, **k: None)
    forced = run_conformance_parallel("dfm", seeds=[0, 1], workers=1)
    assert fingerprint(normal) == fingerprint(forced)
    banner("EXT-COMPILE", "grid schedule digests engine-independent")
    row("cells", len(normal.cases))
    row("fingerprints identical", True)
