"""[F5] Figure 5 / §4.5: the implication process.

Paper claims regenerated:
* the trace set is exactly {⊥, (c,T)(d,T), (c,T)(d,F), (c,F)(d,F)};
* the description needs the auxiliary random bit ``b`` (§8.2);
* the reader exercise: ``d ⟵ c AND d`` is not a description of this
  process.
"""

from conftest import banner, row

from repro.channels import Channel
from repro.core import Description
from repro.functions import and_of, chan
from repro.processes import implication
from repro.processes.implication import expected_traces
from repro.traces import Trace


def get(process, name):
    return next(c for c in process.channels if c.name == name)


def test_trace_set(benchmark):
    process = implication.make()
    c, d = get(process, "c"), get(process, "d")

    got = benchmark(lambda: process.traces_upto(3))
    banner("F5", "traces = the four histories listed in §4.5")
    for t in sorted(got, key=repr):
        row("trace", repr(t))
    assert got == expected_traces(c, d)


def test_auxiliary_channel_needed(benchmark):
    process = implication.make()

    def memberships():
        c, d = get(process, "c"), get(process, "d")
        return (
            process.is_trace(Trace.from_pairs([(c, "T"), (d, "F")])),
            process.is_trace(Trace.from_pairs([(c, "F"), (d, "T")])),
        )

    ok, bad = benchmark(memberships)
    banner("F5", "auxiliary-channel membership (§8.2 projection)")
    row("(c,T)(d,F) is a trace", ok)
    row("(c,F)(d,T) is a trace", bad)
    assert ok and not bad


def test_reader_exercise(benchmark):
    c = Channel("c", alphabet={"T", "F"})
    d = Channel("d", alphabet={"T", "F"})
    bogus = Description(chan(d), and_of(chan(c), chan(d)))

    def verdicts():
        return (
            bogus.is_smooth_solution(Trace.from_pairs([(c, "T")])),
            bogus.is_smooth_solution(
                Trace.from_pairs([(c, "T"), (d, "T")])
            ),
        )

    pending_accepted, genuine_accepted = benchmark(verdicts)
    banner("F5", "why d ⟵ c AND d is NOT a description (exercise)")
    row("accepts the pending history (c,T)", pending_accepted)
    row("accepts the genuine trace (c,T)(d,T)", genuine_accepted)
    assert pending_accepted       # over-accepts: calls it quiescent
    assert not genuine_accepted   # under-accepts: self-caused output
