"""[F7] Figure 7 / §4.10: the general fair merge via tagging.

Paper claims regenerated:
* the five-description Figure-7 system reduces, by eliminating c' and
  d' (justified by §7), to the three-description system of §4.10;
* the trace set is exactly the fair interleavings (unfairness — a
  dropped input — is not quiescent);
* operational tagged merge agrees.
"""

from conftest import banner, row

from repro.core import check_conditions, eliminate_channels
from repro.kahn import quiescent_traces
from repro.kahn.agents import source_agent, tagging_merge_agent
from repro.processes import merge
from repro.seq import fseq, interleavings
from repro.traces import Trace


def get(process, name):
    return next(c for c in process.channels if c.name == name)


def test_elimination_of_internal_channels(benchmark):
    full = merge.make_fair_merge(full_network=True)
    c1 = next(ch for ch in full.channels if ch.name == "c'")
    d1 = next(ch for ch in full.channels if ch.name == "d'")

    def eliminate():
        reports = [check_conditions(full.system, ch)
                   for ch in (c1, d1)]
        reduced = eliminate_channels(full.system, [c1, d1])
        return reports, reduced

    reports, reduced = benchmark(eliminate)
    banner("F7", "eliminating c', d' from the Figure-7 system (§7)")
    for report in reports:
        row(f"conditions for {report.channel.name}", report.sound)
    row("descriptions after elimination", len(reduced))
    assert all(r.sound for r in reports)
    assert len(reduced) == 3


def test_trace_set_is_fair_interleavings(benchmark):
    process = merge.make_fair_merge()
    c, d, e = (get(process, n) for n in "cde")
    left, right = fseq(0, 1), fseq(2)

    def check_all():
        good = []
        for merged in interleavings(left, right):
            t = Trace.from_pairs(
                [(c, m) for m in left] + [(d, m) for m in right]
                + [(e, m) for m in merged]
            )
            good.append(process.is_trace(t, depth=24))
        starved = Trace.from_pairs(
            [(c, 0), (c, 1), (d, 2), (e, 0), (e, 1)]
        )
        return good, process.is_trace(starved)

    good, starved_ok = benchmark(check_all)
    banner("F7", "traces = fair interleavings; starvation rejected")
    row("interleavings accepted", f"{sum(good)}/{len(good)}")
    row("starved merge accepted", starved_ok)
    assert all(good) and not starved_ok


def test_operational_fair_merge(benchmark):
    process = merge.make_fair_merge()
    c, d, e = (get(process, n) for n in "cde")
    left, right = fseq(0, 1), fseq(2)

    def sample():
        observed = quiescent_traces(
            lambda: {
                "src-c": source_agent(c, list(left)),
                "src-d": source_agent(d, list(right)),
                "merge": tagging_merge_agent(c, d, e),
            },
            [c, d, e], seeds=range(50), max_steps=60,
        )
        return {tuple(t.messages_on(e)) for t in observed}

    outputs = benchmark(sample)
    expected = {tuple(s) for s in interleavings(left, right)}
    banner("F7", "operational outputs = all interleavings")
    row("outputs", sorted(outputs))
    assert outputs == expected
