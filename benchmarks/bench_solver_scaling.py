"""[S33] §3.3: the smooth-solution tree search — growth behaviour.

The generalization of Kleene iteration from a chain to a tree has a
cost: the tree's width is governed by how much nondeterminism the
description leaves open.  These benches measure the growth for three
archetypes:

* CHAOS — maximal branching (every event admissible everywhere);
* dfm — input events always admissible, outputs only when justified;
* Ticks — a single path (deterministic): the tree *is* the Kleene chain.
"""

import pytest
from conftest import banner, row

from repro.channels import Channel
from repro.core import Description, SmoothSolutionSolver, combine
from repro.functions import chan, even_of, odd_of, prepend_of
from repro.functions.base import const_seq
from repro.seq import fseq

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})
T = Channel("t", alphabet={"T"})


def chaos_solver():
    k = const_seq(fseq())
    return SmoothSolutionSolver.over_channels(
        Description(k, k, name="K ⟵ K"), [B]
    )


def dfm_solver():
    desc = combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")
    return SmoothSolutionSolver.over_channels(desc, [B, C, D])


def ticks_solver():
    return SmoothSolutionSolver.over_channels(
        Description(chan(T), prepend_of("T", chan(T))), [T]
    )


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_chaos_growth(benchmark, depth):
    solver = chaos_solver()
    result = benchmark(lambda: solver.explore(depth))
    banner("S33", f"CHAOS tree at depth {depth}: full branching")
    row("nodes", result.nodes_explored)
    row("solutions", len(result.finite_solutions))
    # 2-letter alphabet: complete binary-ish tree
    assert len(result.finite_solutions) == 2 ** (depth + 1) - 1


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_dfm_growth(benchmark, depth):
    solver = dfm_solver()
    result = benchmark(lambda: solver.explore(depth))
    banner("S33", f"dfm tree at depth {depth}: justified outputs only")
    row("nodes", result.nodes_explored)
    row("solutions", len(result.finite_solutions))
    assert result.nodes_explored > 0


@pytest.mark.parametrize("depth", [8, 32, 64])
def test_ticks_is_a_chain(benchmark, depth):
    solver = ticks_solver()
    result = benchmark(lambda: solver.explore(depth))
    banner("S33", f"Ticks tree at depth {depth}: a single path "
                  "(= Kleene chain)")
    row("nodes (expect depth+1)", result.nodes_explored)
    assert result.nodes_explored == depth + 1
    assert len(result.frontier) == 1


def test_branching_comparison(benchmark):
    def widths():
        return {
            "CHAOS": chaos_solver().explore(5).nodes_explored,
            "dfm": dfm_solver().explore(5).nodes_explored,
            "Ticks": ticks_solver().explore(5).nodes_explored,
        }

    result = benchmark(widths)
    banner("S33", "tree width at depth 5, by nondeterminism")
    for name, nodes in result.items():
        row(name, nodes)
    assert result["Ticks"] < result["CHAOS"] < result["dfm"]
