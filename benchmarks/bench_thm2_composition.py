"""[T2] Theorem 2 (§5): composition, with scaling.

Claims regenerated:
* the tuple of component descriptions describes the network: the
  sublemma's equivalence holds on sampled traces;
* scaling: checking a pipeline of N copy processes grows linearly in N
  (descriptions compose without blow-up — the point of the theorem).
"""

import pytest
from conftest import banner, row

from repro.channels import Channel
from repro.core.composition import Component, ComposedNetwork
from repro.processes.deterministic import copy_description
from repro.traces import Trace


def make_pipeline(n: int):
    chans = [Channel(f"x{i}", alphabet={0, 1}) for i in range(n + 1)]
    components = [
        Component(
            f"copy{i}", frozenset({chans[i], chans[i + 1]}),
            copy_description(chans[i], chans[i + 1]),
        )
        for i in range(n)
    ]
    return chans, ComposedNetwork(components, name=f"pipeline-{n}")


def propagated_trace(chans, message=0):
    return Trace.from_pairs([(c, message) for c in chans])


def test_sublemma_on_pipeline(benchmark):
    chans, net = make_pipeline(4)
    import itertools

    from repro.channels import Event

    events = [Event(c, 0) for c in chans]

    def check():
        agree = 0
        total = 0
        for n in range(3):
            for combo in itertools.product(events, repeat=n):
                t = Trace.finite(combo)
                total += 1
                if net.sublemma_agrees(t):
                    agree += 1
        return agree, total

    agree, total = benchmark(check)
    banner("T2", "sublemma: network smooth ≡ componentwise smooth")
    row("traces agreeing", f"{agree}/{total}")
    assert agree == total


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_pipeline_scaling(benchmark, n):
    chans, net = make_pipeline(n)
    good = propagated_trace(chans)
    stalled = good.take(n)  # last copy has not propagated

    def check():
        return net.network_smooth(good), net.network_smooth(stalled)

    ok, stalled_ok = benchmark(check)
    banner("T2", f"pipeline of {n} copies: full propagation quiescent")
    row("propagated trace smooth", ok)
    row("stalled trace smooth (False)", stalled_ok)
    assert ok and not stalled_ok
