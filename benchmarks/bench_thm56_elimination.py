"""[T56] Theorems 5/6 (§7): variable elimination.

Claims regenerated:
* Theorem 5: projections of D1-smooth solutions are D2-smooth;
* Theorem 6: the witness construction lifts D2-smooth solutions to D1;
* the ``f(⊥) = ⊥`` counterexample and the same-system substitution
  non-example, plus elimination-chain scaling.
"""

import itertools

import pytest
from conftest import banner, row

from repro.channels import Channel
from repro.core import (
    Description,
    DescriptionSystem,
    eliminate_channel,
    eliminate_channels,
    theorem5_holds,
    theorem6_holds,
)
from repro.functions.base import chan, const_seq
from repro.functions.seq_fns import prepend_of
from repro.seq import fseq
from repro.traces import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={0, 2})


def simple_system():
    return DescriptionSystem(
        [
            Description(chan(B), const_seq(fseq(0), name="⟨0⟩")),
            Description(chan(C), prepend_of(0, chan(B))),
        ],
        channels=[B, C], name="D1",
    )


def test_theorem5(benchmark):
    from repro.channels import Event

    system = simple_system()
    events = [Event(B, 0), Event(B, 2), Event(C, 0), Event(C, 2)]

    def check():
        return all(
            theorem5_holds(system, B, Trace.finite(combo))
            for n in range(4)
            for combo in itertools.product(events, repeat=n)
        )

    ok = benchmark(check)
    banner("T56", "Theorem 5: D1-smooth projects to D2-smooth")
    row("all small traces agree", ok)
    assert ok


def test_theorem6(benchmark):
    system = simple_system()
    s = Trace.from_pairs([(C, 0), (C, 0)])

    ok = benchmark(lambda: theorem6_holds(system, B, s))
    banner("T56", "Theorem 6: witness construction lifts D2 → D1")
    row("witness smooth and projects to s", ok)
    assert ok


def test_f_bottom_counterexample(benchmark):
    f = const_seq(fseq(9), name="⟨9⟩")
    d1 = DescriptionSystem(
        [Description(chan(B), f), Description(f, chan(B))],
        channels=[B], name="note-D1",
    )

    def check():
        no_solution = not any(
            d1.is_smooth_solution(t)
            for t in [Trace.empty(), Trace.from_pairs([(B, 0)]),
                      Trace.from_pairs([(B, 0), (B, 0)])]
        )
        d2 = eliminate_channel(d1, B, enforce=False)
        return no_solution, d2.is_smooth_solution(Trace.empty())

    no_solution, d2_has_bottom = benchmark(check)
    banner("T56", "f(⊥) ≠ ⊥: D1 has no smooth solution, D2 has ⊥")
    row("D1 has no smooth solution", no_solution)
    row("D2 accepts ⊥", d2_has_bottom)
    assert no_solution and d2_has_bottom


def test_same_system_substitution_non_example(benchmark):
    V = Channel("v", alphabet={0})
    W = Channel("w", alphabet={0})
    U = Channel("u", alphabet={0})

    def check():
        d1 = DescriptionSystem(
            [Description(chan(V), chan(W)),
             Description(chan(U), chan(V))],
            channels=[U, V, W],
        )
        d2 = DescriptionSystem(
            [Description(chan(V), chan(W)),
             Description(chan(U), chan(W))],
            channels=[U, V, W],
        )
        t = Trace.from_pairs([(W, 0), (U, 0), (V, 0)])
        return d2.is_smooth_solution(t), d1.is_smooth_solution(t)

    in_d2, in_d1 = benchmark(check)
    banner("T56", "substitution *within* a system changes solutions")
    row("⟨(w,0)(u,0)(v,0)⟩ smooth for D2", in_d2)
    row("…and for D1 (must be False)", in_d1)
    assert in_d2 and not in_d1


@pytest.mark.parametrize("n", [2, 4, 8])
def test_elimination_chain_scaling(benchmark, n):
    # x0 ⟵ ⟨0⟩, x1 ⟵ x0, …, xn ⟵ x(n-1); eliminate x0 … x(n-1)
    chans = [Channel(f"x{i}", alphabet={0}) for i in range(n + 1)]

    def build_and_eliminate():
        system = DescriptionSystem(
            [Description(chan(chans[0]), const_seq(fseq(0)))] + [
                Description(chan(chans[i + 1]), chan(chans[i]))
                for i in range(n)
            ],
            channels=chans,
        )
        return eliminate_channels(system, chans[:-1])

    reduced = benchmark(build_and_eliminate)
    banner("T56", f"eliminating a chain of {n} intermediate channels")
    row("descriptions left", len(reduced))
    assert len(reduced) == 1
    value = reduced.descriptions[0].rhs.apply(Trace.empty())
    assert value.take(3) == fseq(0)
