"""[PERF] Cost curves of the core operations.

Not a paper artifact — an implementation characterization, so adopters
know what scales how:

* smooth-solution checking is O(|t|) applications of both sides over
  prefixes (each application O(|t|)) — quadratic in trace length;
* projection and channel extraction are linear;
* description combination is O(1) (pairing, no normalization).
"""

import pytest
from conftest import banner, row

from repro.channels import Channel
from repro.core import Description, combine
from repro.functions import chan, even_of, odd_of
from repro.traces import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def periodic_solution(length: int) -> Trace:
    block = [(B, 0), (D, 0), (C, 1), (D, 1)]
    events = [block[i % 4] for i in range(length)]
    # truncate to a multiple of the block for quiescence
    cut = length - (length % 4)
    return Trace.from_pairs(events[:cut])


@pytest.mark.parametrize("length", [8, 32, 128])
def test_smooth_check_cost(benchmark, length):
    desc = dfm()
    t = periodic_solution(length)
    ok = benchmark(lambda: desc.is_smooth_solution(
        t, depth=t.length()
    ))
    banner("PERF", f"smooth-solution check, |t| = {t.length()}")
    row("is smooth", ok)
    assert ok


@pytest.mark.parametrize("length", [64, 256, 1024])
def test_projection_cost(benchmark, length):
    t = periodic_solution(length)
    proj = benchmark(lambda: t.project({D}).length())
    banner("PERF", f"projection, |t| = {t.length()}")
    row("events on d", proj)
    assert proj == t.length() // 2


@pytest.mark.parametrize("length", [64, 256, 1024])
def test_channel_sequence_cost(benchmark, length):
    t = periodic_solution(length)
    fn = even_of(chan(D))
    out = benchmark(lambda: len(fn.apply(t)))
    banner("PERF", f"even(d) extraction, |t| = {t.length()}")
    row("length", out)
    assert out == t.length() // 4
