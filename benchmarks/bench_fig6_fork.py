"""[F6] Figure 6 / §4.6: the fork process.

Paper claims regenerated:
* every splitting of the input stream across ``d`` and ``e`` is a
  trace, and nothing else (no fairness constraint);
* the oracle encoding (Park): a random-bit sequence ``b`` drives the
  routing; all smooth solutions are infinite (the oracle never stops).
"""

import itertools

from conftest import banner, row

from repro.kahn import RandomOracle, run_network
from repro.kahn.agents import fork_agent, source_agent
from repro.processes import fork
from repro.traces import Trace


def get(process, name):
    return next(c for c in process.channels if c.name == name)


def test_all_splittings_are_traces(benchmark):
    process = fork.make()
    c, d, e = (get(process, n) for n in "cde")
    inputs = [(c, 0), (c, 1), (c, 2)]

    def check_all():
        results = {}
        for sides in itertools.product([0, 1], repeat=3):
            outputs = [
                ((d if side == 0 else e), message)
                for side, (_, message) in zip(sides, inputs)
            ]
            t = Trace.from_pairs(inputs + outputs)
            results[sides] = process.is_trace(t, depth=24)
        return results

    results = benchmark(check_all)
    banner("F6", "all 2³ splittings of ⟨0 1 2⟩ are traces")
    accepted = sum(results.values())
    row("splittings accepted", f"{accepted}/8")
    assert all(results.values())


def test_non_splittings_rejected(benchmark):
    process = fork.make()
    c, d, e = (get(process, n) for n in "cde")

    def check_bad():
        bads = [
            Trace.from_pairs([(d, 0)]),                  # no input
            Trace.from_pairs([(c, 0)]),                  # unrouted
            Trace.from_pairs([(c, 0), (d, 0), (e, 0)]),  # duplicated
            Trace.from_pairs([(c, 0), (c, 1), (d, 1), (d, 0)]),
        ]
        return [process.is_trace(t, depth=16) for t in bads]

    verdicts = benchmark(check_bad)
    banner("F6", "non-splittings are rejected")
    row("rejected", f"{verdicts.count(False)}/4")
    assert not any(verdicts)


def test_operational_fork_covers_splittings(benchmark):
    process = fork.make()
    c, d, e = (get(process, n) for n in "cde")

    def sample():
        seen = set()
        for seed in range(40):
            result = run_network(
                {"src": source_agent(c, [0, 1]),
                 "fork": fork_agent(c, d, e)},
                [c, d, e], RandomOracle(seed), max_steps=60,
            )
            if result.quiescent:
                seen.add((
                    tuple(result.trace.messages_on(d)),
                    tuple(result.trace.messages_on(e)),
                ))
        return seen

    seen = benchmark(sample)
    banner("F6", "operational sampling reaches all 4 splittings of "
                 "⟨0 1⟩")
    row("splittings observed", len(seen))
    assert len(seen) == 4
