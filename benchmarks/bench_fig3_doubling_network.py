"""[F3] Figure 3 / §2.3: the doubling network.

Paper claims regenerated:
* ``x`` and ``y`` are smooth solutions of
  ``even(d) ⟵ 0;2×d , odd(d) ⟵ 2×d+1``;
* ``z`` solves the equations but violates smoothness at ``u = ε,
  v = ⟨−1⟩``;
* progress (every natural appears) and safety (2n preceded by n);
* the description is *derivable* from the component descriptions by
  variable elimination (§7).
"""

from conftest import banner, row

from repro.channels import Channel, Event
from repro.core import Description, combine, eliminate_channels
from repro.core.description import DescriptionSystem
from repro.functions import (
    affine_of,
    chan,
    even_of,
    odd_of,
    prepend_of,
    scale_of,
)
from repro.seq import misra_x, misra_y, misra_z
from repro.traces import Trace

D = Channel("d")
DEPTH = 48


def description():
    return combine([
        Description(even_of(chan(D)),
                    prepend_of(0, scale_of(2, chan(D)))),
        Description(odd_of(chan(D)), affine_of(2, 1, chan(D))),
    ], name="fig3")


def d_trace(seq, name):
    def gen():
        i = 0
        while True:
            try:
                yield Event(D, seq.item(i))
            except IndexError:
                return
            i += 1

    return Trace.lazy(gen(), name=name)


def test_xyz_classification(benchmark):
    desc = description()

    def classify():
        return {
            name: desc.check(d_trace(seq, name), depth=DEPTH)
            for name, seq in [("x", misra_x()), ("y", misra_y()),
                              ("z", misra_z())]
        }

    verdicts = benchmark(classify)
    banner("F3", "solutions x, y smooth; z a non-computation solution")
    for name in "xyz":
        v = verdicts[name]
        row(f"{name}: solves equations / smooth",
            f"{v.is_solution} / {v.is_smooth}")
    assert verdicts["x"].is_smooth
    assert verdicts["y"].is_smooth
    assert verdicts["z"].is_solution and not verdicts["z"].is_smooth
    violation = verdicts["z"].first_violation
    row("z rejected at", f"u = ε, v = ⟨-1⟩ "
        f"(|u| = {violation.u.length()})")
    assert violation.u.length() == 0


def test_elimination_derives_network_description(benchmark):
    b = Channel("b")
    c = Channel("c")

    def derive():
        full = DescriptionSystem(
            [
                Description(chan(b),
                            prepend_of(0, scale_of(2, chan(D)))),
                Description(chan(c), affine_of(2, 1, chan(D))),
                Description(even_of(chan(D)), chan(b)),
                Description(odd_of(chan(D)), chan(c)),
            ],
            channels=[b, c, D],
        )
        return eliminate_channels(full, [b, c])

    derived = benchmark(derive)
    banner("F3", "eliminating b, c yields equations (1, 2) of §2.3")
    for desc in derived:
        row("derived description", desc.name)
    assert derived.is_smooth_solution(d_trace(misra_x(), "x"),
                                      depth=32)
    assert not derived.is_smooth_solution(d_trace(misra_z(), "z"),
                                          depth=32)


def test_progress_property(benchmark):
    def check():
        seen = set(misra_x().take(2 * 2 ** 7))
        return all(n in seen for n in range(64))

    ok = benchmark(check)
    banner("F3", "progress: every natural number appears in the output")
    row("naturals 0..63 all appear", ok)
    assert ok


def test_safety_property(benchmark):
    def check():
        items = list(misra_x().take(300))
        return all(
            m // 2 in items[:i]
            for i, m in enumerate(items) if m > 0 and m % 2 == 0
        )

    ok = benchmark(check)
    banner("F3", "safety: the appearance of 2n is preceded by n")
    row("2n preceded by n (300-prefix)", ok)
    assert ok
