"""[EXT] Parallel conformance grid and the memoized §3.3 solver.

Two perf claims from the same PR, both guarded by bit-for-bit
equivalence assertions so a speedup can never be bought with a
behaviour change:

* **Grid parallelism** — the conformance cells are independent (fresh
  plan instance + fresh seeded oracle per cell; the generalized Kahn
  principle), so farming them over worker processes must keep every
  outcome and digest identical while dividing wall-clock.  The ≥2×
  speedup assertion only arms on machines with ≥4 CPUs (the CI
  runner); on smaller boxes the rows are still recorded.
* **Solver memoization** — per node the solver now evaluates ``g(u)``
  and the limit condition exactly once and carries ``f(v)`` from the
  parent's admissibility scan.  Timed against a naive reference
  explorer replicating the old per-node recomputation, with digest
  equality asserted at every depth.
"""

import multiprocessing
import os
import time

import pytest
from conftest import banner, row

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.solver import SmoothSolutionSolver, SolverResult
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.par import get_scenario, run_conformance_parallel
from repro.traces.trace import Trace

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()
CPUS = os.cpu_count() or 1
GRID_SEEDS = range(int(os.environ.get("PAR_GRID_SEEDS", "4")))


def _fingerprint(report):
    return [
        (c.plan, c.seed, c.outcome, c.result.digest(),
         c.schedule.digest() if c.schedule is not None else None)
        for c in report.cases
    ]


@pytest.mark.skipif(not FORK_AVAILABLE,
                    reason="parallel executor requires fork")
def test_parallel_grid_speedup():
    """dfm grid, workers=1 vs workers=4: identical fingerprints,
    divided wall-clock (speedup asserted only on ≥4-CPU machines)."""

    def grid(workers):
        started = time.perf_counter()
        report = run_conformance_parallel(
            "dfm", seeds=GRID_SEEDS, workers=workers)
        return report, time.perf_counter() - started

    run_conformance_parallel("dfm", seeds=[0], workers=2)  # warm pool
    serial, serial_s = grid(1)
    parallel, parallel_s = grid(4)
    assert _fingerprint(serial) == _fingerprint(parallel)
    assert serial.all_conform, serial.violations

    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    banner("EXT-PAR", "process-parallel dfm conformance grid")
    row("cells", len(serial.cases))
    row("cpus", CPUS)
    row("serial wall-clock (ms)", round(serial_s * 1e3, 1))
    row("parallel wall-clock (ms, workers=4)",
        round(parallel_s * 1e3, 1))
    row("speedup", round(speedup, 2))
    row("digests identical", True)
    if CPUS >= 4:
        assert speedup >= 2.0, (
            f"workers=4 grid only {speedup:.2f}x faster on a "
            f"{CPUS}-cpu machine ({serial_s * 1e3:.0f}ms -> "
            f"{parallel_s * 1e3:.0f}ms)")


@pytest.mark.skipif(not FORK_AVAILABLE,
                    reason="parallel executor requires fork")
def test_parallel_abp_grid_equivalence(benchmark):
    """The alternating-bit grid through the parallel executor: timed,
    and fingerprint-identical to the serial path."""
    serial = run_conformance_parallel(
        "alternating_bit", seeds=range(2), workers=1)
    parallel = benchmark(
        lambda: run_conformance_parallel(
            "alternating_bit", seeds=range(2), workers=4))
    assert _fingerprint(serial) == _fingerprint(parallel)
    banner("EXT-PAR", "parallel ABP grid equivalence")
    row("cells", len(parallel.cases))
    row("outcomes", parallel.outcomes())
    row("digests identical", True)


# -- solver memoization ------------------------------------------------------

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def _dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def _naive_explore(solver, max_depth):
    """The pre-memoization algorithm: limit check and child expansion
    each re-evaluate the description sides per node, and the frontier
    probe at the bound runs the full candidate scan again."""
    desc = solver.description
    result = SolverResult(depth=max_depth)
    level = [Trace.empty()]
    explored = 0
    for depth in range(max_depth + 1):
        next_level = []
        for u in level:
            explored += 1
            limit = desc.limit_holds(u, solver.limit_depth)
            kids = (list(solver.children(u))
                    if depth < max_depth else None)
            if limit:
                result.finite_solutions.append(u)
            if kids is None:
                if any(True for _ in solver.children(u)):
                    result.frontier.append(u)
                elif not limit:
                    result.dead_ends.append(u)
                continue
            if not kids and not limit:
                result.dead_ends.append(u)
            next_level.extend(kids)
        level = next_level
        if not level:
            break
    result.nodes_explored = explored
    return result


def test_solver_memoization_speedup(benchmark):
    """Memoized explore vs the naive reference at the same depth:
    digest-identical, and strictly fewer side evaluations buying a
    measurable speedup."""
    depth = int(os.environ.get("SOLVER_MEMO_DEPTH", "6"))
    solver = SmoothSolutionSolver.over_channels(_dfm(), [B, C, D])

    for d in range(depth + 1):
        assert solver.explore(d).digest() == \
            _naive_explore(solver, d).digest(), f"depth {d}"

    def best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    naive_s = best_of(lambda: _naive_explore(solver, depth))
    memo_s = best_of(lambda: solver.explore(depth))
    result = benchmark(lambda: solver.explore(depth))

    speedup = naive_s / memo_s if memo_s > 0 else 0.0
    banner("S33-MEMO", "memoized §3.3 exploration vs naive reference")
    row("depth", depth)
    row("nodes explored", result.nodes_explored)
    row("naive explore (ms, best-of-3)", round(naive_s * 1e3, 1))
    row("memoized explore (ms, best-of-3)", round(memo_s * 1e3, 1))
    row("speedup", round(speedup, 2))
    row("digests identical", True)
    assert speedup > 1.0, (
        f"memoized explore not faster than the naive reference "
        f"({naive_s * 1e3:.1f}ms -> {memo_s * 1e3:.1f}ms)")
