"""[COV] Oracle-sampling coverage: computations found vs seeds spent.

The paper quantifies over *all* computations; the operational side of
this reproduction samples them through seeded oracles.  This bench
charts the coverage curve — distinct quiescent traces discovered as the
seed budget grows — for the dfm network, and checks it saturates at the
exact denotational count (the solver's finite smooth solutions with the
same input contents), closing the loop between the two semantics.
"""

import pytest
from conftest import banner, row

from repro.channels import Channel
from repro.core import Description, combine, solve
from repro.functions import chan, even_of, odd_of
from repro.kahn.agents import dfm_agent, source_agent
from repro.kahn.quiescence import collect_traces
from repro.seq import fseq

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def network():
    return {
        "env-b": source_agent(B, [0, 2]),
        "env-c": source_agent(C, [1]),
        "dfm": dfm_agent(B, C, D),
    }


def denotational_count():
    """Smooth solutions whose inputs are exactly ⟨0 2⟩ on b, ⟨1⟩ on c."""
    result = solve(dfm(), [B, C, D], max_depth=6)
    return len([
        t for t in result.finite_solutions
        if t.messages_on(B) == fseq(0, 2)
        and t.messages_on(C) == fseq(1)
    ])


@pytest.mark.parametrize("seeds", [5, 20, 80])
def test_coverage_curve(benchmark, seeds):
    def sample():
        got = collect_traces(network, [B, C, D], range(seeds),
                             max_steps=80)
        return len(got.distinct_quiescent())

    distinct = benchmark(sample)
    banner("COV", f"distinct quiescent traces after {seeds} seeds")
    row("distinct computations", distinct)
    assert distinct >= 1


def test_saturation_matches_denotational(benchmark):
    expected = denotational_count()

    def sample():
        got = collect_traces(network, [B, C, D], range(800),
                             max_steps=80)
        return len(got.distinct_quiescent())

    distinct = benchmark(sample)
    banner("COV", "sampling saturates at the denotational count")
    row("solver count (inputs fixed)", expected)
    row("operational distinct traces", distinct)
    assert distinct == expected


def test_exhaustive_equality(benchmark):
    """The exact closing of the loop: enumerate *every* schedule and
    compare trace sets elementwise with the solver's."""
    from repro.kahn.explore import exhaustive_quiescent_traces

    def both_sides():
        operational = exhaustive_quiescent_traces(
            network, [B, C, D], max_steps=60,
        )
        denotational = {
            t for t in solve(dfm(), [B, C, D],
                             max_depth=6).finite_solutions
            if t.messages_on(B) == fseq(0, 2)
            and t.messages_on(C) == fseq(1)
        }
        return operational, denotational

    operational, denotational = benchmark(both_sides)
    banner("COV", "exhaustive schedules: computations = smooth "
                  "solutions (set equality)")
    row("operational traces", len(operational))
    row("denotational solutions", len(denotational))
    row("sets equal", operational == denotational)
    assert operational == denotational
