"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one figure / worked example /
theorem claim from the paper (see DESIGN.md §3 for the index) and
times the core computation with pytest-benchmark.  The printed rows
are the reproduction artifact; timings situate the implementation's
costs (tree search growth, elimination overhead, etc.).
"""

from __future__ import annotations


def banner(experiment: str, claim: str) -> None:
    print(f"\n[{experiment}] {claim}")


def row(label: str, value: object) -> None:
    print(f"    {label:<44s} {value}")
