"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one figure / worked example /
theorem claim from the paper (see DESIGN.md §3 for the index) and
times the core computation with pytest-benchmark.  The printed rows
are the reproduction artifact; timings situate the implementation's
costs (tree search growth, elimination overhead, etc.).

Besides printing, every ``row(...)`` is collected, and at session end
the rows plus the pytest-benchmark timing stats are written as
machine-readable JSON (default ``BENCH_core.json`` at the repo root;
override with ``BENCH_JSON``) — the perf trajectory the human-readable
rows could never seed.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
from typing import Any, Dict, List, Optional

_CONTEXT: Dict[str, Optional[str]] = {
    "experiment": None, "claim": None, "test": None,
}
_ROWS: List[Dict[str, Any]] = []


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def banner(experiment: str, claim: str) -> None:
    print(f"\n[{experiment}] {claim}")
    _CONTEXT["experiment"] = experiment
    _CONTEXT["claim"] = claim


def row(label: str, value: object) -> None:
    print(f"    {label:<44s} {value}")
    _ROWS.append({
        "experiment": _CONTEXT["experiment"],
        "claim": _CONTEXT["claim"],
        "test": _CONTEXT["test"],
        "label": label,
        "value": _jsonable(value),
    })


# -- pytest hooks: attribute rows to tests, dump JSON at session end ------

def pytest_runtest_logstart(nodeid, location):
    _CONTEXT["test"] = nodeid
    _CONTEXT["experiment"] = None
    _CONTEXT["claim"] = None


def _benchmark_stats(config) -> List[Dict[str, Any]]:
    """Extract pytest-benchmark timings, tolerating disabled runs."""
    session = getattr(config, "_benchmarksession", None)
    if session is None:
        return []
    out: List[Dict[str, Any]] = []
    for bench in getattr(session, "benchmarks", []):
        entry: Dict[str, Any] = {
            "name": getattr(bench, "name", None),
            "fullname": getattr(bench, "fullname", None),
            "group": getattr(bench, "group", None),
        }
        stats = getattr(bench, "stats", None)
        if stats is not None:
            for key in ("min", "max", "mean", "stddev", "median",
                        "rounds", "iterations", "ops"):
                try:
                    entry[key] = _jsonable(getattr(stats, key))
                except Exception:
                    continue
        out.append(entry)
    return out


def pytest_sessionfinish(session, exitstatus):
    benchmarks = _benchmark_stats(session.config)
    if not _ROWS and not benchmarks:
        return  # nothing benchmark-shaped ran; don't touch the file
    default = pathlib.Path(__file__).resolve().parent.parent \
        / "BENCH_core.json"
    path = pathlib.Path(os.environ.get("BENCH_JSON", default))
    payload = {
        "generated_at": datetime.datetime.now(
            datetime.timezone.utc).isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "exitstatus": int(exitstatus),
        "rows": _ROWS,
        "benchmarks": benchmarks,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    print(f"\nbenchmark JSON: {len(_ROWS)} rows, "
          f"{len(benchmarks)} timed benchmarks -> {path}")
