"""[ABL] Ablation: what does the smoothness condition buy?

The paper's design choice is to add smoothness on top of the limit
condition.  This ablation quantifies it:

* **limit-only vs smooth** — over all traces of bounded length, how
  many equation solutions are spurious (no computation realizes them)?
  Without smoothness the Brock–Ackermann network has 2 'behaviours';
  with it, 1 — and the gap grows with trace length for dfm-style
  descriptions.
* **depth sensitivity** — bounded limit checking on lazy traces: the
  verdicts for the §2.3 sequences are stable across checking depths
  (i.e. the chosen default depth is not doing the work).
"""

import itertools

import pytest
from conftest import banner, row

from repro.anomaly import (
    candidate_sequences,
    channels,
    combined_description,
    eliminated_system,
    solves_equations,
    trace_of_output,
)
from repro.channels import Channel, Event
from repro.core import Description, combine
from repro.functions import (
    affine_of,
    chan,
    even_of,
    odd_of,
    prepend_of,
    scale_of,
)
from repro.seq import misra_x, misra_z
from repro.traces import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


@pytest.mark.parametrize("length", [2, 4])
def test_limit_only_overcounts(benchmark, length):
    desc = dfm()
    events = [Event(B, 0), Event(B, 2), Event(C, 1), Event(C, 3),
              Event(D, 0), Event(D, 1), Event(D, 2), Event(D, 3)]

    def census():
        limit_only = 0
        smooth = 0
        for combo in itertools.product(events, repeat=length):
            t = Trace.finite(combo)
            if desc.limit_holds(t):
                limit_only += 1
                if desc.smoothness_holds(t):
                    smooth += 1
        return limit_only, smooth

    limit_only, smooth = benchmark(census)
    banner("ABL", f"dfm, traces of length {length}: "
                  "equation solutions vs smooth solutions")
    row("limit condition only", limit_only)
    row("limit + smoothness", smooth)
    row("spurious (no computation)", limit_only - smooth)
    # odd lengths have no solutions at all (outputs must balance
    # inputs), so the even lengths carry the comparison
    assert smooth <= limit_only
    if length >= 4:
        assert smooth < limit_only  # smoothness does real work


def test_brock_ackermann_ablation(benchmark):
    b, c = channels()
    system = eliminated_system(b, c)
    desc = combined_description(b, c)

    def census():
        solutions = [
            s for s in candidate_sequences()
            if solves_equations(c, s, system)
        ]
        smooth = [
            s for s in solutions
            if desc.is_smooth_solution(trace_of_output(c, s))
        ]
        return len(solutions), len(smooth)

    n_solutions, n_smooth = benchmark(census)
    banner("ABL", "Brock–Ackermann: behaviours admitted by each "
                  "semantics")
    row("history-insensitive (limit only)", n_solutions)
    row("with smoothness", n_smooth)
    assert (n_solutions, n_smooth) == (2, 1)


@pytest.mark.parametrize("depth", [16, 32, 64])
def test_depth_sensitivity(benchmark, depth):
    d = Channel("d")
    desc = combine([
        Description(even_of(chan(d)),
                    prepend_of(0, scale_of(2, chan(d)))),
        Description(odd_of(chan(d)), affine_of(2, 1, chan(d))),
    ], name="fig3")

    def d_trace(seq):
        def gen():
            i = 0
            while True:
                try:
                    yield Event(d, seq.item(i))
                except IndexError:
                    return
                i += 1

        return Trace.lazy(gen())

    def verdicts():
        x = desc.check(d_trace(misra_x()), depth=depth)
        z = desc.check(d_trace(misra_z()), depth=depth)
        return x.is_smooth, z.is_solution, z.is_smooth

    x_smooth, z_solution, z_smooth = benchmark(verdicts)
    banner("ABL", f"§2.3 verdicts at checking depth {depth}")
    row("x smooth", x_smooth)
    row("z solves / smooth", f"{z_solution} / {z_smooth}")
    assert x_smooth and z_solution and not z_smooth
