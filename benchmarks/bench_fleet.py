"""[EXT] Supervision overhead of the fault-tolerant grid fleet.

The fleet coordinator (``repro.par.fleet``) replaces the blind
``Pool.imap`` with per-cell dispatch over monitored workers: deadlines,
retries with seeded-jitter backoff, respawn-on-crash, quarantine.  All
of that machinery must be close to free on the happy path — a clean
grid through the fleet should cost within 10% of a bare pool farming
the same cells, with bit-for-bit identical outcomes and digests.

The bare pool here is the pre-fleet executor reproduced as a reference
(``Pool.imap`` over :func:`repro.par.run_cell`): no deadlines, no
supervision, no second chances.  The overhead assertion only arms on
machines with ≥4 CPUs (the CI runner); smaller boxes still record the
rows.  A second experiment prices recovery itself: a chaos grid
(``kill-worker``) that must respawn and retry every cell it loses.
"""

import multiprocessing
import os
import time

import pytest
from conftest import banner, row

from repro.par import (
    CellTask,
    FleetPolicy,
    get_scenario,
    run_cell,
    run_conformance_parallel,
)
from repro.par.fleet import ChaosSpec

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()
CPUS = os.cpu_count() or 1
FLEET_SEEDS = range(int(os.environ.get("FLEET_GRID_SEEDS", "4")))

pytestmark = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="fleet executor requires fork")


def _fingerprint(cases):
    return [
        (c.plan, c.seed, c.outcome, c.result.digest(),
         c.schedule.digest() if c.schedule is not None else None)
        for c in cases
    ]


def _grid_tasks(scenario, seeds):
    built = get_scenario(scenario)
    return [
        CellTask(scenario=scenario, plan=plan, seed=seed,
                 max_steps=built.max_steps)
        for plan in built.plans for seed in seeds
    ]


def _bare_pool(tasks, workers):
    """The pre-fleet executor: blind ``Pool.imap``, no supervision."""
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=workers) as pool:
        return list(pool.imap(run_cell, tasks))


def test_fleet_supervision_overhead():
    """Clean dfm grid, bare pool vs supervised fleet at the same
    worker count: identical fingerprints, <10% overhead (asserted on
    ≥4-CPU machines only)."""
    tasks = _grid_tasks("dfm", FLEET_SEEDS)
    workers = min(4, max(2, CPUS))

    _bare_pool(tasks[:1], workers)  # warm the fork path
    started = time.perf_counter()
    bare_cases = _bare_pool(tasks, workers)
    bare_s = time.perf_counter() - started

    started = time.perf_counter()
    fleet_report = run_conformance_parallel(
        "dfm", seeds=FLEET_SEEDS, workers=workers)
    fleet_s = time.perf_counter() - started

    assert _fingerprint(bare_cases) == _fingerprint(fleet_report.cases)
    assert fleet_report.all_conform, fleet_report.violations
    assert not fleet_report.degraded

    overhead = (fleet_s / bare_s - 1.0) if bare_s > 0 else 0.0
    banner("EXT-FLEET", "supervised fleet vs bare pool (clean grid)")
    row("cells", len(tasks))
    row("workers", workers)
    row("cpus", CPUS)
    row("bare pool wall-clock (ms)", round(bare_s * 1e3, 1))
    row("fleet wall-clock (ms)", round(fleet_s * 1e3, 1))
    row("supervision overhead (%)", round(overhead * 100, 1))
    row("digests identical", True)
    if CPUS >= 4:
        assert overhead < 0.10, (
            f"fleet supervision costs {overhead * 100:.1f}% over the "
            f"bare pool ({bare_s * 1e3:.0f}ms -> {fleet_s * 1e3:.0f}ms)")


def test_fleet_chaos_recovery_cost(benchmark):
    """A chaos grid that loses workers mid-cell and must respawn and
    retry: all cells still complete and conform — the price of the
    second chances is the recorded wall-clock delta."""
    workers = min(4, max(2, CPUS))
    policy = FleetPolicy(
        retries=4, backoff_unit_s=0.002,
        chaos=ChaosSpec(kill_worker_p=0.3, seed=2))

    clean = run_conformance_parallel(
        "dfm", seeds=FLEET_SEEDS, workers=workers)
    report = benchmark(lambda: run_conformance_parallel(
        "dfm", seeds=FLEET_SEEDS, workers=workers, fleet=policy))

    assert _fingerprint(report.cases) == _fingerprint(clean.cases)
    assert report.all_conform, report.violations
    stats = report.fleet_stats
    assert stats["crashes"] > 0  # the chaos actually bit
    assert stats["respawns"] > 0

    banner("EXT-FLEET", "chaos grid recovery (kill-worker:0.3)")
    row("cells", len(report.cases))
    row("workers", workers)
    row("chaos kills", stats["crashes"])
    row("respawns", stats["respawns"])
    row("retries", stats["retries"])
    row("all cells recovered", report.all_conform)
    row("digests identical to clean run", True)
