"""[EXT] Extension scenario: alternating-bit protocol over lossy
channels, verified against a Kahn service specification.

Not a paper artifact — the paper's machinery applied to the protocol
the dataflow literature always reaches for.  Rows reported:

* delivery correctness across sampled schedules, per channel drop bound;
* retransmission cost as the channels get lossier (the expected shape:
  more loss → more retransmissions, same delivered sequence).
"""

import pathlib
import sys

import pytest
from conftest import banner, row

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "examples")
)

from alternating_bit import (  # noqa: E402
    CHANNELS,
    MESSAGES,
    OUT,
    S2C,
    protocol_network,
    service_spec,
)
from repro.kahn import RandomOracle, run_network  # noqa: E402


@pytest.mark.parametrize("drop_bound", [0, 1, 3])
def test_delivery_under_loss(benchmark, drop_bound):
    spec = service_spec(MESSAGES)

    def campaign():
        ok = 0
        retransmissions = 0
        for seed in range(15):
            result = run_network(
                protocol_network(MESSAGES, drop_bound=drop_bound),
                CHANNELS, RandomOracle(seed), max_steps=4000,
            )
            visible = result.trace.project({OUT})
            if result.quiescent and spec.is_smooth_solution(visible):
                ok += 1
            retransmissions += (
                result.trace.count_on(S2C) - len(MESSAGES)
            )
        return ok, retransmissions

    ok, retransmissions = benchmark(campaign)
    banner("EXT", f"ABP, ≤{drop_bound} consecutive drops per channel")
    row("runs with exact in-order delivery", f"{ok}/15")
    row("total retransmissions", retransmissions)
    assert ok == 15
    if drop_bound > 0:
        assert retransmissions > 0
