"""[T4] Theorem 4 / §6: least fixpoints as the unique smooth solutions.

Claims regenerated:
* direction 1: the Kleene chain witnesses the least fixpoint of ``h``
  as a smooth solution of ``id ⟵ h``;
* direction 2: any smoothness-satisfying chain is dominated by the
  Kleene chain (``xⁿ ⊑ hⁿ(⊥)``);
* the bridge for deterministic networks (Kahn's result), with Kleene
  iteration cost scaling in the fixpoint size.
"""

import pytest
from conftest import banner, row

from repro.channels import Channel
from repro.core.chains import (
    dominated_by_kleene,
    id_description,
    kleene_witness_chain,
    theorem4_unique_smooth_solution,
)
from repro.core.description import Description, DescriptionSystem
from repro.core.fixpoint_bridge import kahn_least_fixpoint
from repro.functions.base import chan, const_seq
from repro.order.cpo import CountableChain
from repro.seq import SEQ_CPO, EMPTY, FiniteSeq, fseq


def saturating(limit):
    def h(s):
        return s if len(s) >= limit else s.append(1)

    return h


def test_direction1(benchmark):
    h = saturating(8)

    def check():
        lfp = theorem4_unique_smooth_solution(h, SEQ_CPO)
        desc = id_description(h, SEQ_CPO)
        chain = kleene_witness_chain(h, SEQ_CPO)
        return lfp, desc.is_smooth_via(lfp, chain, upto=12)

    lfp, smooth = benchmark(check)
    banner("T4", "the least fixpoint is a smooth solution of id ⟵ h")
    row("lfp", repr(lfp))
    row("witnessed smooth", smooth)
    assert smooth and len(lfp) == 8


def test_direction2(benchmark):
    h = saturating(6)
    desc = id_description(h, SEQ_CPO)
    # a slow chain satisfying smoothness
    slow_elements = [EMPTY, EMPTY] + [
        FiniteSeq([1] * k) for k in range(1, 7)
    ]
    slow = CountableChain.from_elements(SEQ_CPO, slow_elements)

    def check():
        return (desc.smoothness_holds_on(slow, upto=7),
                dominated_by_kleene(slow, h, SEQ_CPO, upto=7))

    smooth, dominated = benchmark(check)
    banner("T4", "smooth chains are dominated: xⁿ ⊑ hⁿ(⊥)")
    row("chain satisfies smoothness", smooth)
    row("dominated by Kleene chain", dominated)
    assert smooth and dominated


@pytest.mark.parametrize("size", [8, 32, 128])
def test_kleene_iteration_scaling(benchmark, size):
    h = saturating(size)
    lfp = benchmark(
        lambda: theorem4_unique_smooth_solution(
            h, SEQ_CPO, max_iterations=size + 4
        )
    )
    banner("T4", f"Kleene iteration to a fixpoint of size {size}")
    row("iterations needed", size)
    assert len(lfp) == size


def test_kahn_bridge(benchmark):
    # a 3-equation deterministic system: a ⟵ ⟨1 1⟩, b ⟵ a, c ⟵ b
    A = Channel("a", alphabet={1})
    B = Channel("b", alphabet={1})
    C = Channel("c", alphabet={1})
    system = DescriptionSystem(
        [
            Description(chan(A), const_seq(fseq(1, 1))),
            Description(chan(B), chan(A)),
            Description(chan(C), chan(B)),
        ],
        channels=[A, B, C],
    )

    semantics = benchmark(lambda: kahn_least_fixpoint(system))
    banner("T4", "Kahn bridge: deterministic system's lfp")
    env = semantics.environment()
    row("a = b = c", repr(env[C]))
    assert env[A] == env[B] == env[C] == fseq(1, 1)
    # and the realizing trace is a smooth solution
    from repro.traces import Trace

    t = Trace.from_pairs([(A, 1), (B, 1), (C, 1),
                          (A, 1), (B, 1), (C, 1)])
    assert system.is_smooth_solution(t)
