"""[EXT] Causal observatory costs: graph construction and profiling.

The happens-before graph (``repro.obs.causality``) is built *post
hoc* from an already-recorded event stream, so its cost rides on top
of tracing, not inside the run; and the solver's hot-path profile
(``repro.obs.profile``) only exists when a tracer is attached.  Rows
reported:

* graph construction time as a percentage of the traced fleet grid
  it explains (an offline add-on — gated well under the grid's own
  cost, and the trajectory keeps it from creeping);
* digest determinism across rebuilds (same records ⇒ same digest);
* the disabled path: an untraced ``explore`` allocates no profile at
  all — ``result.profile`` stays empty — so ``NULL_TRACER`` runs pay
  nothing for the observatory.
"""

import pathlib
import sys
import time

from conftest import banner, row

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "examples")
)

from repro import par  # noqa: E402
from repro.obs import (  # noqa: E402
    CausalGraph,
    RingBufferSink,
    Tracer,
    split_cells,
)


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_causal_graph_rides_on_tracing(benchmark):
    """Building the per-cell happens-before DAGs (and their Perfetto
    flow arrows) from a traced fleet grid must cost a small fraction
    of the grid that produced the stream — the observatory is an
    offline consumer of the merged buffer, exactly the path
    ``grid --trace`` takes, not a second instrumentation layer."""
    ring = RingBufferSink(capacity=500_000)
    tracer = Tracer([ring])
    started = time.perf_counter()
    report = par.run_conformance_parallel(
        "alternating_bit", seeds=range(4), workers=2, tracer=tracer)
    traced_s = time.perf_counter() - started
    assert not report.genuine_failures
    records = list(ring.records)

    def build_all():
        graphs = {}
        for cell, cell_records in sorted(
                split_cells(records).items()):
            if cell:
                graphs[cell] = CausalGraph.from_records(cell_records)
        return graphs

    graphs = benchmark(build_all)
    build_s = min(_timed(build_all) for _ in range(3))
    overhead_pct = 100.0 * build_s / traced_s
    flows = sum(len(g.flow_arrows()) for g in graphs.values())
    rebuilt = build_all()
    stable = all(graphs[c].digest() == rebuilt[c].digest()
                 for c in graphs)
    banner("EXT-CAUSAL",
           "happens-before graphs vs the traced grid that fed them")
    row("trace records", len(records))
    row("cells graphed", len(graphs))
    row("graph nodes", sum(len(g.nodes) for g in graphs.values()))
    row("flow arrows", flows)
    row("traced grid (ms)", round(traced_s * 1e3, 2))
    row("graph build (ms, best-of-3)", round(build_s * 1e3, 2))
    row("graph overhead (%)", round(overhead_pct, 2))
    row("digests deterministic", stable)
    assert graphs, "fleet buffer carried no per-cell records"
    assert stable
    # pure-Python graph construction runs ~13% of this grid's wall
    # clock; the loose gate absorbs starved runners while the tracked
    # trajectory row catches any creep from the measured baseline
    assert overhead_pct < 25.0, (
        f"graph construction cost {overhead_pct:.1f}% of the traced "
        f"grid ({build_s * 1e3:.2f}ms on {traced_s * 1e3:.2f}ms)")


def test_disabled_path_allocates_nothing(benchmark):
    """Without a tracer the solver must not allocate a profile — the
    observatory's disabled path is the pre-existing hot path."""
    from repro.channels import Channel
    from repro.core import (
        Description,
        SmoothSolutionSolver,
        combine,
    )
    from repro.functions import chan, even_of, odd_of

    b = Channel("b", alphabet={0, 2})
    c = Channel("c", alphabet={1, 3})
    d = Channel("d", alphabet={0, 1, 2, 3})
    spec = combine([
        Description(even_of(chan(d)), chan(b)),
        Description(odd_of(chan(d)), chan(c)),
    ], name="dfm")

    def explore():
        solver = SmoothSolutionSolver.over_channels(spec, [b, c, d])
        return solver.explore(4)

    result = benchmark(explore)
    untraced_s = min(_timed(explore) for _ in range(3))
    banner("EXT-CAUSAL", "untraced explore carries no profile")
    row("nodes explored", result.nodes_explored)
    row("untraced explore (ms, best-of-3)",
        round(untraced_s * 1e3, 2))
    row("disabled-path profile entries", len(result.profile))
    row("disabled-path metrics entries", len(result.metrics))
    assert result.profile == {}
    assert result.metrics == {}
