"""[F4] Figure 4 / §2.4: the Brock–Ackermann anomaly.

Paper claims regenerated:
* the eliminated equations have exactly two solutions, ⟨0 1 2⟩ and
  ⟨0 2 1⟩;
* ⟨0 1 2⟩ is not smooth — ¬(odd(⟨0 1⟩) ⊑ f(⟨0⟩)) — while ⟨0 2 1⟩ is;
* operationally only ⟨0 2 1⟩ is ever computed: the anomaly is resolved.
"""

from conftest import banner, row

from repro.anomaly import (
    SOLUTION_ANOMALOUS,
    SOLUTION_REAL,
    analyse,
    candidate_sequences,
    channels,
    combined_description,
    eliminated_system,
    operational_outputs,
    solves_equations,
    trace_of_output,
)


def test_equation_solutions(benchmark):
    b, c = channels()
    system = eliminated_system(b, c)

    def enumerate_solutions():
        return [
            s for s in candidate_sequences()
            if solves_equations(c, s, system)
        ]

    solutions = benchmark(enumerate_solutions)
    banner("F4", "exactly two equation solutions over {0,1,2}")
    for s in solutions:
        row("solution", list(s))
    assert solutions == [SOLUTION_ANOMALOUS, SOLUTION_REAL]


def test_smoothness_filter(benchmark):
    b, c = channels()
    desc = combined_description(b, c)

    def verdicts():
        return (
            desc.check(trace_of_output(c, SOLUTION_ANOMALOUS)),
            desc.check(trace_of_output(c, SOLUTION_REAL)),
        )

    anomalous, real = benchmark(verdicts)
    banner("F4", "smoothness rejects ⟨0 1 2⟩, accepts ⟨0 2 1⟩")
    row("⟨0 1 2⟩ solution / smooth",
        f"{anomalous.is_solution} / {anomalous.is_smooth}")
    row("⟨0 2 1⟩ solution / smooth",
        f"{real.is_solution} / {real.is_smooth}")
    v = anomalous.first_violation
    row("rejection witness",
        f"odd({v.v!r}) = {v.lhs_of_v[1].take(4)!r} ⋢ "
        f"f({v.u!r}) = {v.rhs_of_u[1].take(4)!r}")
    assert not anomalous.is_smooth and real.is_smooth


def test_operational_resolution(benchmark):
    outputs = benchmark(
        lambda: operational_outputs(max_steps=200, n_seeds=50)
    )
    banner("F4", "sampled computations produce only ⟨0 2 1⟩")
    row("operational outputs", sorted(tuple(s) for s in outputs))
    assert outputs == {SOLUTION_REAL}


def test_full_analysis(benchmark):
    analysis = benchmark(lambda: analyse(n_seeds=40))
    banner("F4", "end-to-end: smooth solutions = computations")
    row("anomalous rejected", analysis.anomalous_rejected)
    row("resolved", analysis.resolved)
    assert analysis.resolved
