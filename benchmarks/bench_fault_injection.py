"""[EXT] Fault-injection conformance grid over the direct-wired ABP.

Times the conformance harness (``repro.faults.harness``) running the
alternating-bit protocol against its service specification under a
grid of seeded channel fault plans, and the supervised runtime's
watchdog catching an unfair-loss livelock.  Rows reported:

* conformance outcomes per plan family (must be all-conform for fair
  plans);
* watchdog termination step vs. the raw step budget (the saving the
  supervision layer buys on pathological runs).

Seeds per cell default to a quick-mode count so this file is cheap
enough to run in CI; set ``FAULT_GRID_SEEDS`` for a denser grid.
"""

import os
import pathlib
import sys

import pytest
from conftest import banner, row

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "examples")
)

from alternating_bit import (  # noqa: E402
    FAULTY_CHANNELS,
    MESSAGES,
    OUT,
    direct_agents,
    fair_loss_plan,
    loss_and_duplication_plan,
    service_spec,
    unfair_loss_plan,
)
from repro.faults import no_faults, run_conformance, run_supervised  # noqa: E402
from repro.kahn import RandomOracle  # noqa: E402

SEEDS = range(int(os.environ.get("FAULT_GRID_SEEDS", "6")))

PLAN_FAMILIES = {
    "no-faults": no_faults,
    "fair-loss": lambda: fair_loss_plan(seed=11),
    "heavy-loss": lambda: fair_loss_plan(seed=23, p=0.5),
    "loss+dup": lambda: loss_and_duplication_plan(seed=5),
}


@pytest.mark.parametrize("plan_name", sorted(PLAN_FAMILIES))
def test_conformance_grid(benchmark, plan_name):
    spec = service_spec(MESSAGES)
    plans = {plan_name: PLAN_FAMILIES[plan_name]}

    def campaign():
        return run_conformance(
            "abp-direct", direct_agents(MESSAGES), FAULTY_CHANNELS,
            spec.combined(), plans, SEEDS,
            observe={OUT}, max_steps=4000, watchdog_limit=600,
        )

    report = benchmark(campaign)
    banner("EXT-FAULTS", f"ABP conformance under {plan_name}")
    row("runs", len(report.cases))
    row("outcomes", report.outcomes())
    assert report.all_conform, report.violations


def test_traced_grid_writes_jsonl():
    """With ``FAULT_GRID_TRACE=<path>`` set, re-run a small fair-loss
    grid with the structured tracer attached and write the JSONL event
    log there (CI uploads it as a workflow artifact)."""
    trace_path = os.environ.get("FAULT_GRID_TRACE")
    if trace_path is None:
        pytest.skip("set FAULT_GRID_TRACE=<path> to record a trace")
    from repro.obs import JsonlSink, RingBufferSink, Tracer

    ring = RingBufferSink()
    jsonl = JsonlSink(trace_path)
    tracer = Tracer([ring, jsonl])
    report = run_conformance(
        "abp-direct", direct_agents(MESSAGES), FAULTY_CHANNELS,
        service_spec(MESSAGES).combined(),
        {"fair-loss": lambda: fair_loss_plan(seed=11)},
        seeds=range(2), observe={OUT}, max_steps=4000,
        watchdog_limit=600, tracer=tracer,
    )
    tracer.close()
    banner("EXT-OBS", "traced fair-loss grid → JSONL event log")
    row("trace records", len(ring))
    row("jsonl path", trace_path)
    row("cell wall-clock (ms)",
        [round(c.elapsed_s * 1e3, 2) for c in report.cases])
    assert len(ring) > 0
    assert jsonl.count == len(ring)
    assert report.all_conform, report.violations


def test_recorder_overhead_within_noise(benchmark):
    """Flight recording is list appends on the oracle/RNG hot path;
    its cost must stay within run-to-run noise so ``record=True`` can
    be the harness default.  Times the same fair-loss campaign with
    the recorder off and on and asserts a lenient ratio bound (the
    loose factor absorbs CI timer jitter on a ~10ms workload)."""
    import time

    spec = service_spec(MESSAGES).combined()
    plans = {"fair-loss": lambda: fair_loss_plan(seed=11)}

    def campaign(record):
        return run_conformance(
            "abp-direct", direct_agents(MESSAGES), FAULTY_CHANNELS,
            spec, plans, SEEDS, observe={OUT}, max_steps=4000,
            watchdog_limit=600, record=record,
        )

    def measure(record, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            report = campaign(record)
            best = min(best, time.perf_counter() - started)
            assert report.all_conform, report.violations
        return best

    campaign(False)  # warm-up
    off = measure(False)
    on = measure(True)
    recorded = benchmark(lambda: campaign(True))
    decisions = sum(len(c.schedule) for c in recorded.cases)
    banner("EXT-OBS", "flight-recorder overhead on the fair-loss grid")
    row("recorder off (ms, best-of-3)", round(off * 1e3, 2))
    row("recorder on  (ms, best-of-3)", round(on * 1e3, 2))
    row("overhead ratio", round(on / off, 3))
    row("decisions recorded", decisions)
    assert decisions > 0
    assert on < off * 1.5 + 0.01, (
        f"recording cost {on / off:.2f}x the unrecorded campaign "
        f"({off * 1e3:.1f}ms -> {on * 1e3:.1f}ms)"
    )


def test_watchdog_beats_step_budget(benchmark):
    budget = 50_000

    def livelocked_run():
        return run_supervised(
            direct_agents(MESSAGES, retransmit_limit=None),
            FAULTY_CHANNELS, RandomOracle(3),
            max_steps=budget, fault_plan=unfair_loss_plan(),
            watchdog_limit=400,
        )

    result = benchmark(livelocked_run)
    banner("EXT-FAULTS", "watchdog vs. unfair-loss livelock")
    row("step budget", budget)
    row("terminated at step", result.steps)
    row("watchdog fired", result.watchdog_fired)
    assert result.watchdog_fired
    assert result.steps < budget // 10
