"""[EXT] Search strategies and the query layer vs full enumeration.

The ROADMAP's "solver that survives depth" item, cashed in: pluggable
exploration order (best-first, iterative deepening), duplicate-state
reduction keyed on the paper's per-channel projections, and a query
API that stops at the first witness or counterexample instead of
enumerating the whole §3.3 tree (see :mod:`repro.core.search`).

The speedup rows are refused unless the correctness bar holds: every
strategy's solution-set digest equals BFS wherever BFS completes, and
the query answers a question — under the *same node budget* — at a
depth where plain enumeration gives up truncated.
"""

import gc
import os
import time

from conftest import banner, row

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.solver import SmoothSolutionSolver
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})

#: the query must settle in at most this fraction of the enumeration's
#: node count (measured ~0.002 on the CI runner; floor is generous)
MAX_NODE_RATIO = float(os.environ.get("QUERY_MAX_NODE_RATIO", "0.1"))

QUERY_DEPTH = int(os.environ.get("SOLVER_QUERY_DEPTH", "7"))
NODE_BUDGET = 2000
PREDICATE = "on:b >= 2"


def _dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def _solver(**kwargs):
    return SmoothSolutionSolver.over_channels(_dfm(), [B, C, D],
                                              **kwargs)


def _best_of(fn, repeats=5):
    best = float("inf")
    result = None
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - started)
    finally:
        if was_enabled:
            gc.enable()
    return result, best


def test_strategies_match_bfs_digest():
    """Correctness bar behind every other row: best-first and
    iterative deepening (with and without dedup) reproduce the BFS
    solution-set digest wherever BFS completes, on both engines."""
    depth = 5
    base = _solver().explore(depth)
    assert not base.truncated
    checked = 0
    for strategy in ("best-first", "iterative-deepening"):
        for compiled in (False, None):
            for dedup in (False, True):
                got = _solver(strategy=strategy, compiled=compiled,
                              dedup=dedup).explore(depth)
                assert got.digest() == base.digest(), \
                    (strategy, compiled, dedup)
                assert got.nodes_explored == base.nodes_explored
                checked += 1
    banner("EXT-SEARCH",
           "exploration order never changes the solution set")
    row("equivalence depth", depth)
    row("strategy/engine/dedup combos digest-equal", checked)


def test_query_answers_where_enumeration_truncates(benchmark):
    """The acceptance bar: under one shared node budget, ``solve``
    truncates at the benchmark depth while ``query`` settles the
    existence question with a replayable witness — in a small
    fraction of the nodes full enumeration needs."""
    truncated = _solver().explore(QUERY_DEPTH, max_nodes=NODE_BUDGET)
    assert truncated.truncated, (
        f"depth {QUERY_DEPTH} no longer truncates at "
        f"{NODE_BUDGET} nodes; raise SOLVER_QUERY_DEPTH")

    def ask():
        return _solver(strategy="best-first").query(
            PREDICATE, QUERY_DEPTH, max_nodes=NODE_BUDGET)

    answer = benchmark(ask)
    assert answer.holds is True
    assert answer.certificate is not None
    replayed = _solver().replay_witness(answer.certificate)
    assert replayed == answer.witness

    # a completing depth gives the honest ratio/speedup comparison:
    # the same question, answered by pruning vs by enumerating
    full_depth = 6
    full, full_s = _best_of(
        lambda: _solver().explore(full_depth), repeats=3)
    assert not full.truncated
    settled, query_s = _best_of(
        lambda: _solver(strategy="best-first").query(
            PREDICATE, full_depth))
    assert settled.holds is True
    ratio = settled.nodes_explored / full.nodes_explored
    speedup = full_s / query_s if query_s > 0 else 0.0

    banner("EXT-SEARCH",
           "query prunes instead of enumerating (§3.3 witness paths)")
    row("depth", QUERY_DEPTH)
    row("node budget", NODE_BUDGET)
    row("solve truncated at budget", True)
    row("query nodes at budget", answer.nodes_explored)
    row("enumeration nodes (full run)", full.nodes_explored)
    row("query node ratio", round(ratio, 4))
    row("query early-exit speedup", round(speedup, 2))
    row("witness replays", True)
    assert ratio <= MAX_NODE_RATIO, (
        f"query explored {ratio:.1%} of the enumeration's nodes; "
        f"ceiling is {MAX_NODE_RATIO:.0%}")
    assert speedup >= 1.0


def test_dedup_counters_and_strategy_metrics():
    """Duplicate-state reduction shares evaluation work on dfm's
    converging traces without dropping a single solution, and the
    per-strategy counters land in the profile."""
    from repro.obs import RingBufferSink, Tracer

    depth = 5
    base = _solver().explore(depth)
    tracer = Tracer([RingBufferSink(capacity=200_000)])
    got = _solver(strategy="best-first", dedup=True, compiled=False,
                  tracer=tracer).explore(depth)
    assert got.digest() == base.digest()
    counters = got.profile["counters"]
    assert counters["dedup.states"] < got.nodes_explored
    banner("EXT-SEARCH", "duplicate-state reduction on dfm")
    row("nodes explored", got.nodes_explored)
    row("distinct projection states", counters["dedup.states"])
    row("dedup hits", counters["dedup.hits"])
    row("solutions dropped", 0)
