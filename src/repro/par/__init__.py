"""Process-parallel conformance grids.

Every cell of a ``plans × seeds`` conformance grid is an independent
computation: the harness builds a *fresh* fault-plan instance and a
fresh ``RandomOracle(seed)`` per cell, and no state flows between
cells.  That is exactly the network-of-independent-computations view
of Abramsky's generalized Kahn principle (see PAPERS.md): the grid is
an abstract asynchronous network whose nodes may run anywhere, in any
order, with the same result.  This module cashes that in — cells farm
out over ``multiprocessing`` workers and the serial/parallel results
are *bit-for-bit equal*, an equality the flight-recorder digests
(:meth:`~repro.kahn.runtime.RunResult.digest`) assert mechanically.

The one obstacle is that grid inputs are closures: agent factories,
plan factories and specs cannot (and should not) cross a process
boundary.  The solution is a **scenario registry**: a scenario is a
named builder that reconstructs the whole grid input set from nothing,
so the only thing shipped to a worker is a :class:`CellTask` — a
scenario *name*, a plan *name*, a seed and budgets, all picklable
scalars.  Results come back as ordinary
:class:`~repro.faults.harness.ConformanceCase` values with their
schedules, metrics and digests intact (the channel/event/sequence
types carry explicit pickle support for exactly this trip).

Workers are forked, so scenarios registered by the calling process —
including test-local ones — are visible in the workers without any
import gymnastics; on platforms without ``fork`` the grid falls back
to the serial executor.

Execution is supervised: the cells run on the :mod:`repro.par.fleet`
coordinator (per-cell deadlines, bounded retries with seeded-jitter
backoff, worker respawn on crash, poison-cell quarantine), so a single
wedged or dying worker degrades the report instead of aborting the
grid — see :class:`~repro.par.fleet.FleetPolicy`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.core.description import DEFAULT_DEPTH
from repro.faults.harness import (
    INFRA_OUTCOMES,
    ConformanceCase,
    ConformanceReport,
)
from repro.faults.supervision import RestartPolicy
from repro.par.fleet import (  # noqa: F401  (re-exported API)
    ChaosSpec,
    FleetPolicy,
    replay_quarantined_cell,
    run_fleet,
)

#: Rebuilds one scenario's full grid inputs from nothing (no captured
#: process state — workers call it after a fork or a fresh import).
ScenarioBuilder = Callable[[], "Scenario"]

_SCENARIOS: Dict[str, ScenarioBuilder] = {}


@dataclass
class Scenario:
    """Everything a worker needs to run one grid cell.

    ``agents``/``plans`` are factory mappings exactly as
    :func:`~repro.faults.harness.run_conformance` takes them; the
    remaining fields are that function's keyword arguments with the
    scenario's canonical values.
    """

    name: str
    agents: Mapping[str, Callable]
    channels: list
    spec: Any
    plans: Mapping[str, Callable]
    observe: Optional[Iterable] = None
    max_steps: int = 10_000
    policy: Optional[RestartPolicy] = field(
        default_factory=RestartPolicy)
    watchdog_limit: Optional[int] = 500
    depth: int = DEFAULT_DEPTH


def register_scenario(name: str,
                      builder: Optional[ScenarioBuilder] = None):
    """Register a scenario builder under ``name`` (decorator-friendly).

    Builders must be self-contained: a worker process calls them after
    a fork (or after importing this module), so they may import
    example modules and close over nothing from the caller.
    """
    if builder is None:
        def deco(fn: ScenarioBuilder) -> ScenarioBuilder:
            _SCENARIOS[name] = fn
            return fn
        return deco
    _SCENARIOS[name] = builder
    return builder


def get_scenario(name: str) -> Scenario:
    """Build a fresh :class:`Scenario` for ``name``."""
    try:
        builder = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r} "
            f"(registered: {', '.join(sorted(_SCENARIOS)) or 'none'})"
        ) from None
    return builder()


def scenario_names() -> list[str]:
    return sorted(_SCENARIOS)


def has_scenario(name: Optional[str]) -> bool:
    return name is not None and name in _SCENARIOS


def parallelizable(scenario: Optional[str],
                   plans: Optional[Mapping[str, Any]] = None) -> bool:
    """Can this grid take the process-parallel path?

    Requires a registry-addressable scenario (so nothing unpicklable
    must cross the process boundary), ``fork`` (so caller-registered
    scenarios are inherited by the workers), and — when the caller
    supplies a plan mapping — that every plan name is one the scenario
    can rebuild.
    """
    if not has_scenario(scenario):
        return False
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    if plans is not None:
        known = set(get_scenario(scenario).plans)
        if not set(plans) <= known:
            return False
    return True


# -- the cell task ----------------------------------------------------------


@dataclass(frozen=True)
class CellTask:
    """One grid cell, by name: everything here pickles as scalars."""

    scenario: str
    plan: str
    seed: int
    max_steps: int
    record: bool = True
    traced: bool = False


def run_cell(task: CellTask) -> ConformanceCase:
    """Run one cell through the serial harness (fresh scenario, fresh
    plan, fresh oracle) — the parallel executor's unit of work, and by
    construction the same computation the serial grid performs."""
    case, _records, _epoch = _cell_worker(task)
    return case


def _cell_worker(task: CellTask, ship=None):
    """Worker-side cell execution.

    Returns ``(case, trace_records, trace_epoch_ns)``: the classified
    case plus, when ``task.traced``, the cell's raw tracer records and
    the worker tracer's epoch (``time.perf_counter_ns`` is machine-wide
    monotonic on the platforms that offer ``fork``, so the parent can
    rebase worker timestamps onto its own timeline).

    With a ``ship`` callback the records are *streamed* instead of
    buffered: a :class:`~repro.obs.telemetry.StreamingSink` sends
    bounded, sequence-numbered batches through ``ship`` while the cell
    runs (in the fleet: over the worker's result pipe), the final
    partial batch is flushed before the case is returned, and the
    records slot of the return value is ``None`` — the coordinator's
    :class:`~repro.obs.telemetry.TelemetryMerger` already has them.
    """
    from repro.faults.harness import run_conformance

    scenario = get_scenario(task.scenario)
    tracer = None
    ring = None
    epoch_ns = 0
    if task.traced:
        from repro.obs.tracer import Tracer

        if ship is not None:
            from repro.obs.telemetry import StreamingSink

            sink = StreamingSink(ship)
            tracer = Tracer([sink])
            sink.epoch_ns = tracer._epoch_ns
        else:
            from repro.obs.sinks import RingBufferSink

            ring = RingBufferSink()
            tracer = Tracer([ring])
        epoch_ns = tracer._epoch_ns
    report = run_conformance(
        scenario.name, scenario.agents, scenario.channels,
        scenario.spec, {task.plan: scenario.plans[task.plan]},
        seeds=[task.seed], observe=scenario.observe,
        max_steps=task.max_steps, policy=scenario.policy,
        watchdog_limit=scenario.watchdog_limit, depth=scenario.depth,
        tracer=tracer, record=task.record,
    )
    [case] = report.cases
    if tracer is not None:
        tracer.close()      # streaming: flush the final partial batch
    return case, (list(ring) if ring is not None else None), epoch_ns


# -- the parallel grid ------------------------------------------------------


def run_conformance_parallel(scenario: str,
                             seeds: Iterable[int],
                             plans: Optional[Iterable[str]] = None,
                             max_steps: Optional[int] = None,
                             workers: Optional[int] = None,
                             record: bool = True,
                             tracer=None,
                             cache=None,
                             fleet: Optional[FleetPolicy] = None,
                             status=None
                             ) -> ConformanceReport:
    """Run a registered scenario's ``plans × seeds`` grid over
    ``workers`` processes.

    ``plans`` selects plan *names* (default: all the scenario's
    plans); workers rebuild the actual factories from the registry, so
    nothing unpicklable crosses the process boundary in either
    direction except the results themselves.  Cells stream back in
    grid order and the report is indistinguishable from the serial
    one — same outcomes, same ``Schedule`` digests — except that
    ``wall_clock_s`` is what an observer actually waited, not the
    summed per-cell compute (see
    :meth:`~repro.faults.harness.ConformanceReport.total_elapsed_s`).

    ``workers=None`` uses ``os.process_cpu_count()`` — the CPUs this
    process may actually use (affinity masks, container quotas) — not
    the machine-wide count, falling back to ``os.cpu_count()`` on
    interpreters without it.  ``workers=1``, a single-cell grid, or a
    platform without ``fork`` all take the serial path, which is also
    the semantics-defining reference.  An empty grid (no seeds, or no
    selected plans) returns an empty — and therefore conforming —
    report without spinning up a pool.

    ``cache`` (a :class:`repro.cache.CacheStore`) is consulted in the
    parent *before* dispatch: cached cells never reach the pool, and
    fresh results are stored back as they stream in.  All cache I/O
    and counters stay in the calling process.

    With a ``tracer`` attached, each cell runs under its own in-worker
    tracer and the records are merged back onto the caller's timeline
    (per-cell track suffixes keep the Perfetto rows apart).

    ``fleet`` (a :class:`~repro.par.fleet.FleetPolicy`) configures the
    supervised executor: per-cell deadlines, retry/backoff, chaos
    injection and quarantine.  A policy that *requires* its own worker
    processes (deadline, chaos or quarantine set) overrides the serial
    fallback even for one-worker or one-cell grids — those features
    need a separate, killable process.  Without ``fork`` the grid is
    always serial and such policies cannot be honoured.

    ``status`` (a :class:`~repro.obs.telemetry.FleetStatus`) receives
    live scoreboard updates — grid size, cache hits, per-cell
    completions, retries, streamed-record counts — for the
    ``python -m repro top`` view.  It is written in place; a display
    thread may snapshot it concurrently.
    """
    started = time.monotonic()
    built = get_scenario(scenario)
    plan_names = list(plans) if plans is not None else list(built.plans)
    unknown = [p for p in plan_names if p not in built.plans]
    if unknown:
        raise KeyError(
            f"scenario {scenario!r} has no plan(s) {unknown!r} "
            f"(available: {sorted(built.plans)})")
    seed_list = list(seeds)
    steps = built.max_steps if max_steps is None else max_steps
    if workers is None:
        workers = getattr(os, "process_cpu_count",
                          os.cpu_count)() or 1
    traced = tracer is not None and getattr(tracer, "enabled", False)
    tasks = [
        CellTask(scenario=scenario, plan=plan, seed=seed,
                 max_steps=steps, record=record, traced=traced)
        for plan in plan_names for seed in seed_list
    ]
    if status is not None:
        status.scenario = built.name
        status.total = len(tasks)
    if not tasks:
        report = ConformanceReport(network=built.name)
        report.wall_clock_s = time.monotonic() - started
        if status is not None:
            status.finished = True
        return report
    workers = max(1, min(int(workers), len(tasks)))
    fork_ok = "fork" in multiprocessing.get_all_start_methods()
    force_fleet = fleet is not None and fleet.needs_fleet and fork_ok
    if (workers == 1 or len(tasks) < 2 or not fork_ok) \
            and not force_fleet:
        from repro.faults.harness import run_conformance

        # serial reference path; the harness does its own cache
        # consult/store with the same keys, so hand it the store and
        # the full grid
        report = run_conformance(
            built.name, built.agents, built.channels, built.spec,
            {p: built.plans[p] for p in plan_names}, seed_list,
            observe=built.observe, max_steps=steps,
            policy=built.policy, watchdog_limit=built.watchdog_limit,
            depth=built.depth, tracer=tracer, record=record,
            cache=cache,
        )
        report.wall_clock_s = time.monotonic() - started
        if status is not None:
            # serial reference path: fold the finished grid into the
            # scoreboard in one go
            status.workers = 1
            for case in report.cases:
                status.on_complete(case.outcome, case.elapsed_s)
            status.finished = True
        return report

    # fleet path: consult the cache in the parent, dispatch only the
    # misses, store fresh results back as they stream in
    cell_keys: Dict[int, Any] = {}
    cases: Dict[int, ConformanceCase] = {}
    if cache is not None:
        from repro.cache.keys import cell_cache_key, grid_facets
        from repro.faults.harness import _case_from_cache

        observed = (set(built.observe)
                    if built.observe is not None else None)
        facets = grid_facets(
            built.name, list(built.channels), observed, steps,
            built.policy, built.watchdog_limit, built.depth)
        for i, task in enumerate(tasks):
            key = cell_cache_key(facets, task.plan, task.seed,
                                 task.record)
            hit = cache.get("cell", key)
            case = (_case_from_cache(hit, task.plan, task.seed)
                    if hit is not None else None)
            if case is not None:
                cases[i] = case
                if status is not None:
                    status.on_complete(case.outcome, 0.0, cached=True)
            else:
                cell_keys[i] = key
    pending = [(i, t) for i, t in enumerate(tasks) if i not in cases]
    if status is not None:
        status.cache_misses = len(cell_keys)
        status.workers = min(workers, max(1, len(pending)))

    def finish():
        report = ConformanceReport(network=built.name)
        report.cases = [cases[i] for i in range(len(tasks))]
        report.wall_clock_s = time.monotonic() - started
        if status is not None:
            status.finished = True
        return report

    if not pending:
        return finish()
    policy = fleet if fleet is not None else FleetPolicy()

    def on_case(i: int, task: CellTask, case: ConformanceCase,
                records, epoch_ns: int) -> None:
        # fires per cell in completion order — completed results are
        # retained here even if later workers die mid-grid
        cases[i] = case
        if i in cell_keys and case.outcome not in INFRA_OUTCOMES:
            cache.put("cell", cell_keys[i], case.to_cache_payload())
        if traced and records:
            _merge_cell_trace(tracer, task, records, epoch_ns)

    fleet_cases, fleet_stats = run_fleet(
        pending, workers=workers, policy=policy, tracer=tracer,
        on_case=on_case, status=status)
    for i, case in fleet_cases.items():
        cases.setdefault(i, case)
    report = finish()
    report.fleet_stats = fleet_stats
    return report


def _merge_cell_trace(tracer, task: CellTask, records: List[Any],
                      epoch_ns: int) -> None:
    """Fold one worker cell's trace records into the parent tracer.

    Timestamps are rebased from the worker tracer's epoch onto the
    parent's (both count from ``perf_counter_ns``, which is a single
    machine-wide monotonic clock under ``fork``), and every track gets
    a per-cell suffix so the merged timeline shows one row group per
    cell instead of interleaving unrelated cells on one row.
    """
    from repro.obs.perfetto import rebase_records

    offset = epoch_ns - getattr(tracer, "_epoch_ns", epoch_ns)
    tracer.ingest(rebase_records(
        records, offset_ns=offset,
        track_suffix=f"@{task.plan}×{task.seed}"))


# -- built-in scenarios ------------------------------------------------------


def _examples_dir():
    import pathlib

    return pathlib.Path(__file__).resolve().parents[3] / "examples"


def _import_example(name: str):
    import importlib
    import sys

    examples = _examples_dir()
    if not examples.is_dir():
        raise FileNotFoundError(
            f"examples directory not found at {examples}")
    if str(examples) not in sys.path:
        sys.path.insert(0, str(examples))
    return importlib.import_module(name)


@register_scenario("dfm")
def _build_dfm() -> Scenario:
    """The §2.2 discriminated fair merge under drop faults.

    Sized so one cell is real work (a long source stream checked
    against the combined description to the default depth): the grid
    is what the parallel executor should visibly accelerate.
    """
    from repro.channels.channel import Channel
    from repro.core.description import Description, combine
    from repro.faults.models import DropFault
    from repro.faults.plan import FaultPlan
    from repro.functions import chan, even_of, odd_of
    from repro.kahn.agents import dfm_agent, source_agent

    b = Channel("b", alphabet={0, 2})
    c = Channel("c", alphabet={1, 3})
    d = Channel("d", alphabet={0, 1, 2, 3})
    spec = combine([
        Description(even_of(chan(d)), chan(b)),
        Description(odd_of(chan(d)), chan(c)),
    ], name="dfm")
    feed = [0, 2] * 40

    def drop(seed: int = 1, p: float = 0.4):
        return FaultPlan(
            {b: DropFault(seed=seed, p=p, max_consecutive_drops=2)},
            name="drop")

    return Scenario(
        name="dfm",
        agents={"eb": lambda: source_agent(b, feed),
                "dfm": lambda: dfm_agent(b, c, d)},
        channels=[b, c, d],
        spec=spec,
        plans={"none": lambda: None,
               "drop": drop,
               "heavy-drop": lambda: drop(seed=3, p=0.7)},
        max_steps=2000,
        depth=192,
    )


@register_scenario("alternating_bit")
def _build_alternating_bit() -> Scenario:
    """The fault-injected ABP grid from ``examples/alternating_bit.py``
    (fair plans only — every cell should conform)."""
    abp = _import_example("alternating_bit")

    return Scenario(
        name="abp-direct",
        agents=abp.direct_agents(abp.MESSAGES),
        channels=abp.FAULTY_CHANNELS,
        spec=abp.service_spec(abp.MESSAGES).combined(),
        plans={
            "no-faults": abp.no_faults,
            "fair-loss": lambda: abp.fair_loss_plan(seed=11),
            "heavy-loss": lambda: abp.fair_loss_plan(seed=23, p=0.5),
            "loss+dup": lambda: abp.loss_and_duplication_plan(seed=5),
        },
        observe={abp.OUT},
        max_steps=4000,
        watchdog_limit=600,
    )
