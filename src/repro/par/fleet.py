"""Fault-tolerant grid fleet: supervised workers for the parallel grid.

The plain ``multiprocessing.Pool.imap`` executor that first parallelized
the conformance grid had a single failure domain: one segfaulting,
OOM-killed or wedged worker stalled or aborted the whole grid and lost
every completed cell.  This module replaces it with a *supervising
coordinator* in the spirit of PR 1's :class:`SupervisedRuntime` — the
same restart discipline, one level up: the network of workers is itself
an asynchronous process network (Abramsky's generalized Kahn principle,
see PAPERS.md), and the coordinator plays supervisor to it.

Per cell the coordinator provides:

* **deadlines** — a cell that exceeds ``cell_timeout_s`` has its worker
  SIGKILLed and reaped, and the attempt is recorded as a timeout;
* **bounded retries** — failed attempts (timeout, worker crash, or an
  in-worker exception) are re-queued up to ``retries`` times with an
  exponential, capped, seeded-jitter backoff reusing the generalized
  :class:`~repro.faults.supervision.RestartPolicy`;
* **respawn** — a worker that dies (exit code, signal, or pipe loss) is
  replaced immediately; the rest of the grid never waits on a corpse;
* **poison-cell quarantine** — a cell that fails every attempt is
  isolated into a ``quarantine/`` bundle (task spec, fleet policy,
  attempt log, per-attempt worker stderr) that replays standalone via
  ``python -m repro replay <bundle>``, while the surviving cells
  complete and keep their bit-for-bit serial digests.

Chaos self-test: a :class:`ChaosSpec` (``kill-worker:p``) makes each
worker SIGKILL *itself* at task receipt with a per-``(cell, attempt)``
deterministic coin — same chaos seed, same kill pattern, in the
original run and in a bundle replay alike.

Everything is instrumented through :mod:`repro.obs`: ``fleet.spawn`` /
``fleet.dispatch`` / ``fleet.retry`` / ``fleet.timeout`` /
``fleet.crash`` / ``fleet.quarantine`` events (per-worker Perfetto
tracks ``fleet.w<N>``), and retry/backoff/attempt histograms folded
into the report's ``fleet_stats``.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import json
import multiprocessing
import os
import pathlib
import random
import re
import shutil
import signal
import sys
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults.harness import ConformanceCase
from repro.faults.supervision import RestartPolicy
from repro.obs.metrics import MetricsRegistry

#: Format version stamped into quarantine bundles' ``cell.json``.
QUARANTINE_VERSION = 1

#: Attempt-failure kind -> the report outcome used when quarantine is
#: disabled (with a quarantine dir the final outcome is "quarantined").
_FAILURE_OUTCOME = {"timeout": "timeout", "crashed": "crashed",
                    "error": "crashed"}


@dataclass(frozen=True)
class ChaosSpec:
    """Self-test fault injection for the fleet itself.

    ``kill_worker_p`` is the probability that a worker SIGKILLs itself
    at task receipt.  The coin is flipped with a dedicated
    ``random.Random`` seeded from ``(seed, cell coordinate, attempt)``,
    so the kill pattern is a pure function of the spec and the grid —
    independent of timing, worker identity and platform.  Retried
    attempts flip fresh coins, so with ``p < 1`` a killed cell
    eventually completes (and with ``p = 1`` it deterministically
    exhausts its attempts — the quarantine smoke test).
    """

    kill_worker_p: float = 0.0
    seed: int = 0

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosSpec":
        """Parse a CLI chaos spec like ``kill-worker:0.3``."""
        kind, sep, arg = spec.partition(":")
        if kind != "kill-worker":
            raise ValueError(
                f"unknown chaos spec {spec!r} "
                "(supported: kill-worker:P)")
        try:
            p = float(arg) if sep else 0.2
        except ValueError:
            raise ValueError(
                f"chaos probability {arg!r} is not a number") from None
        if not 0.0 <= p <= 1.0:
            raise ValueError(
                f"chaos probability {p} outside [0, 1]")
        return cls(kill_worker_p=p, seed=seed)

    def kills(self, task: Any, attempt: int) -> bool:
        """The deterministic per-``(cell, attempt)`` kill decision."""
        if self.kill_worker_p <= 0.0:
            return False
        key = (f"{self.seed}|{task.scenario}|{task.plan}"
               f"|{task.seed}|{attempt}")
        return random.Random(key).random() < self.kill_worker_p

    def describe(self) -> str:
        return f"kill-worker:{self.kill_worker_p}"


@dataclass(frozen=True)
class FleetPolicy:
    """How the fleet supervises its workers.

    ``retries`` counts *re*-attempts: a cell gets ``retries + 1``
    attempts before it is declared poison.  The backoff before the
    ``n``-th retry is ``backoff.jittered_delay(n, jitter_seed, cell) *
    backoff_unit_s`` — the generalized
    :class:`~repro.faults.supervision.RestartPolicy` provides the
    exponential shape, the cap and the seeded jitter (its
    ``max_restarts`` field is not consulted here; ``retries`` governs).
    ``cell_timeout_s=None`` disables deadlines; ``quarantine_dir=None``
    disables bundles (poison cells are then reported with the last
    failure kind — ``timeout`` / ``crashed`` — instead of
    ``quarantined``).
    """

    cell_timeout_s: Optional[float] = None
    retries: int = 2
    backoff: RestartPolicy = RestartPolicy(
        backoff_initial=1, backoff_factor=2, backoff_cap=8,
        jitter=0.5)
    backoff_unit_s: float = 0.05
    jitter_seed: int = 0
    quarantine_dir: Optional[str] = None
    chaos: Optional[ChaosSpec] = None
    #: coordinator poll granularity (deadline/retry resolution)
    poll_s: float = 0.02

    @property
    def needs_fleet(self) -> bool:
        """Does this policy demand the supervised executor even for
        grids the old gate would run serially (one cell, one worker)?
        Deadlines, chaos and quarantine all require a separate,
        killable worker process."""
        return (self.cell_timeout_s is not None
                or self.chaos is not None
                or self.quarantine_dir is not None)

    def max_attempts(self) -> int:
        return max(1, self.retries + 1)

    def backoff_s(self, failures: int, salt: str) -> float:
        """Seconds to wait before re-dispatching after ``failures``
        failed attempts (1-based, deterministic per cell)."""
        return self.backoff.jittered_delay(
            failures, seed=self.jitter_seed, salt=salt
        ) * self.backoff_unit_s

    def to_dict(self) -> dict:
        """JSON-ready form stored in quarantine bundles."""
        return {
            "cell_timeout_s": self.cell_timeout_s,
            "retries": self.retries,
            "backoff": dataclasses.asdict(self.backoff),
            "backoff_unit_s": self.backoff_unit_s,
            "jitter_seed": self.jitter_seed,
            "chaos": (dataclasses.asdict(self.chaos)
                      if self.chaos is not None else None),
        }

    @classmethod
    def from_dict(cls, data: dict,
                  quarantine_dir: Optional[str] = None
                  ) -> "FleetPolicy":
        """Rebuild a policy from a bundle's ``cell.json`` slice."""
        if not isinstance(data, dict):
            raise ValueError(
                f"fleet policy is not an object: "
                f"{type(data).__name__}")
        chaos = data.get("chaos")
        return cls(
            cell_timeout_s=data.get("cell_timeout_s"),
            retries=int(data.get("retries", 2)),
            backoff=RestartPolicy(**data.get("backoff", {})),
            backoff_unit_s=float(data.get("backoff_unit_s", 0.05)),
            jitter_seed=int(data.get("jitter_seed", 0)),
            quarantine_dir=quarantine_dir,
            chaos=ChaosSpec(**chaos) if chaos else None,
        )


# -- the worker process ------------------------------------------------------


def _worker_main(conn, chaos: Optional[ChaosSpec],
                 stderr_path: Optional[str]) -> None:
    """Worker loop: receive a cell, run it, send the result back.

    Runs in a forked child.  ``None`` (or pipe EOF) is the shutdown
    signal.  An exception inside the cell is reported as an ``err``
    message and the worker keeps serving — only the coordinator
    decides whether that attempt is retried.  With ``stderr_path`` the
    worker's fd 2 is redirected there (append mode), so a crashing
    cell's last words survive the process for the quarantine bundle.
    """
    if stderr_path is not None:
        fd = os.open(stderr_path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        os.dup2(fd, 2)
        if fd != 2:
            os.close(fd)
        sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)
    from repro.par import _cell_worker

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg is None:
            return
        task, attempt = msg
        if chaos is not None and chaos.kills(task, attempt):
            print(f"chaos: SIGKILL on {task.scenario}/{task.plan}"
                  f"×{task.seed} attempt {attempt}",
                  file=sys.stderr, flush=True)
            os.kill(os.getpid(), signal.SIGKILL)
        # traced cells stream their records over the result pipe in
        # bounded batches ("tel" messages) instead of buffering them
        # for the final "ok" — the pipe's own blocking send is the
        # backpressure, and FIFO ordering guarantees every batch lands
        # before the result message that commits them
        ship = None
        if task.traced:
            def ship(batch, _conn=conn):
                try:
                    _conn.send(("tel", batch))
                except (BrokenPipeError, OSError):
                    pass        # coordinator gone; the run is over
        try:
            case, records, epoch_ns = _cell_worker(task, ship=ship)
        except Exception:
            conn.send(("err", traceback.format_exc(limit=30)))
            continue
        try:
            conn.send(("ok", case, records, epoch_ns))
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """Coordinator-side handle for one monitored worker process."""

    __slots__ = ("wid", "proc", "conn", "assigned", "dispatched_at",
                 "deadline", "stderr_path", "stderr_offset")

    def __init__(self, wid: int):
        self.wid = wid
        self.proc = None
        self.conn = None
        #: the in-flight item ``(index, task, attempt, log)`` or None
        self.assigned: Optional[tuple] = None
        self.dispatched_at = 0.0
        self.deadline: Optional[float] = None
        self.stderr_path: Optional[str] = None
        self.stderr_offset = 0


# -- the coordinator ---------------------------------------------------------


def run_fleet(pending: List[Tuple[int, Any]],
              workers: int,
              policy: Optional[FleetPolicy] = None,
              tracer: Any = None,
              on_case: Optional[Callable[..., None]] = None,
              status: Any = None
              ) -> Tuple[Dict[int, ConformanceCase], Dict[str, Any]]:
    """Run ``pending`` cells (``(index, CellTask)`` pairs) over a
    supervised worker fleet.

    Returns ``(cases, stats)``: ``cases`` maps every input index to a
    classified :class:`ConformanceCase` — completed cells carry their
    live results and schedules exactly as the serial harness produces
    them; poison cells carry an infrastructure outcome (``quarantined``
    / ``timeout`` / ``crashed``) with ``result=None``.  ``stats`` is
    the fleet telemetry dict that rides on
    ``ConformanceReport.fleet_stats``.

    ``on_case(index, task, case, records, epoch_ns)`` fires as each
    cell reaches its final state, in completion order — the hook for
    cache stores and trace merging.  Already-completed results are
    retained no matter what later workers do: a dying pool can no
    longer discard the grid.

    With a live ``tracer``, traced cells *stream* their records over
    the worker pipes in bounded batches; a
    :class:`~repro.obs.telemetry.TelemetryMerger` ingests them
    idempotently and commits an attempt's spans and metric deltas onto
    the parent timeline only when that attempt's result is accepted —
    failed attempts are abandoned wholesale, so retries never
    double-count (the ``records`` argument of ``on_case`` is ``None``
    for streamed cells).  ``status`` (a
    :class:`~repro.obs.telemetry.FleetStatus`) receives live
    scoreboard updates for the ``top`` view.
    """
    policy = policy if policy is not None else FleetPolicy()
    traced = tracer is not None and getattr(tracer, "enabled", False)
    total = len(pending)
    metrics = MetricsRegistry()
    merger = None
    if traced:
        from repro.obs.telemetry import TelemetryMerger

        merger = TelemetryMerger(tracer)
    stats: Dict[str, Any] = {
        "workers": 0, "spawns": 0, "respawns": 0, "dispatches": 0,
        "retries": 0, "timeouts": 0, "crashes": 0, "errors": 0,
        "quarantined": 0, "completed": 0,
    }
    cases: Dict[int, ConformanceCase] = {}
    if not pending:
        return cases, stats
    capture = policy.quarantine_dir is not None
    scratch = tempfile.mkdtemp(prefix="repro-fleet-") if capture \
        else None
    ctx = multiprocessing.get_context("fork")
    workers_n = max(1, min(int(workers), total))
    stats["workers"] = workers_n
    queue = deque((i, task, 1, []) for i, task in pending)
    delayed: list = []          # heap of (due, seq, item)
    seq = itertools.count()

    def fleet_event(name: str, track: str = "fleet",
                    **args: Any) -> None:
        if traced:
            tracer.event(name, category="fleet", track=track, **args)

    def spawn(w: _Worker, respawn: bool = False) -> None:
        if capture:
            w.stderr_path = os.path.join(scratch,
                                         f"worker-{w.wid}.stderr")
        parent, child = ctx.Pipe()
        w.proc = ctx.Process(
            target=_worker_main,
            args=(child, policy.chaos, w.stderr_path),
            name=f"repro-fleet-w{w.wid}", daemon=True)
        w.proc.start()
        child.close()
        w.conn = parent
        stats["respawns" if respawn else "spawns"] += 1
        fleet_event("fleet.spawn", track=f"fleet.w{w.wid}",
                    worker=w.wid, pid=w.proc.pid, respawn=respawn)

    def reap(w: _Worker, kill: bool = False) -> Optional[int]:
        """Join (killing first if asked) and return the exit code."""
        if kill:
            w.proc.kill()
        w.proc.join(timeout=2.0)
        if w.proc.exitcode is None:         # pragma: no cover
            w.proc.kill()
            w.proc.join(timeout=2.0)
        try:
            w.conn.close()
        except OSError:                     # pragma: no cover
            pass
        return w.proc.exitcode

    def stderr_slice(w: _Worker) -> str:
        if w.stderr_path is None:
            return ""
        try:
            with open(w.stderr_path, "r", encoding="utf-8",
                      errors="replace") as fh:
                fh.seek(w.stderr_offset)
                return fh.read()
        except OSError:
            return ""

    def cell_salt(task: Any) -> str:
        return f"{task.scenario}|{task.plan}|{task.seed}"

    def dispatch(w: _Worker, item: tuple, now: float) -> None:
        i, task, attempt, log = item
        w.assigned = item
        w.dispatched_at = now
        w.deadline = (now + policy.cell_timeout_s
                      if policy.cell_timeout_s is not None else None)
        if capture:
            try:
                w.stderr_offset = os.path.getsize(w.stderr_path)
            except OSError:
                w.stderr_offset = 0
        stats["dispatches"] += 1
        if status is not None:
            status.on_dispatch()
        fleet_event("fleet.dispatch", track=f"fleet.w{w.wid}",
                    worker=w.wid, plan=task.plan, seed=task.seed,
                    attempt=attempt)
        try:
            w.conn.send((task, attempt))
        except (BrokenPipeError, OSError):
            worker_died(w, "send failed: worker pipe closed")

    def complete(w: _Worker, case: ConformanceCase,
                 records: Any, epoch_ns: int) -> None:
        i, task, attempt, log = w.assigned
        w.assigned = None
        w.deadline = None
        case.attempts = attempt
        cases[i] = case
        stats["completed"] += 1
        metrics.histogram("fleet.attempts").record(attempt)
        if merger is not None:
            merger.commit(
                cell_salt(task), attempt,
                track_suffix=f"@{task.plan}×{task.seed}",
                epoch_ns=epoch_ns)
        if status is not None:
            status.on_settled()
            status.on_complete(case.outcome, case.elapsed_s)
        if on_case is not None:
            on_case(i, task, case, records, epoch_ns)

    def attempt_failed(w: Optional[_Worker], item: tuple, kind: str,
                       detail: str, stderr_text: str = "") -> None:
        i, task, attempt, log = item
        elapsed = (time.monotonic() - w.dispatched_at
                   if w is not None else 0.0)
        log.append({
            "attempt": attempt, "failure": kind, "detail": detail,
            "elapsed_s": round(elapsed, 6), "stderr": stderr_text,
        })
        counter = {"timeout": "timeouts", "crashed": "crashes",
                   "error": "errors"}[kind]
        stats[counter] += 1
        metrics.counter(f"fleet.{counter}").inc()
        if merger is not None:
            # retract the failed attempt's streamed telemetry: its
            # partial spans and metric deltas never reach the parent
            merger.abandon(cell_salt(task), attempt)
        if status is not None:
            status.on_settled()
            status.on_attempt_failed(kind)
        fleet_event(f"fleet.{kind if kind != 'error' else 'crash'}",
                    track=f"fleet.w{w.wid}" if w is not None
                    else "fleet",
                    plan=task.plan, seed=task.seed, attempt=attempt,
                    detail=detail[:200])
        if attempt >= policy.max_attempts():
            quarantine(i, task, log, kind)
            return
        delay = policy.backoff_s(attempt, salt=cell_salt(task))
        stats["retries"] += 1
        if status is not None:
            status.on_retry()
        metrics.counter("fleet.retries").inc()
        metrics.histogram("fleet.backoff_ms").record(delay * 1000.0)
        fleet_event("fleet.retry", plan=task.plan, seed=task.seed,
                    attempt=attempt + 1, backoff_s=round(delay, 6))
        heapq.heappush(delayed, (time.monotonic() + delay, next(seq),
                                 (i, task, attempt + 1, log)))

    def quarantine(i: int, task: Any, log: list, kind: str) -> None:
        bundle = None
        if capture:
            bundle = _write_bundle(
                pathlib.Path(policy.quarantine_dir), task, log,
                policy, kind)
        history = ", ".join(e["failure"] for e in log)
        detail = (f"{len(log)} attempt(s) failed: {history}")
        outcome = "quarantined" if bundle is not None \
            else _FAILURE_OUTCOME[kind]
        if bundle is not None:
            detail += f"; bundle: {bundle}"
        else:
            detail += "; no quarantine dir configured"
        case = ConformanceCase(
            plan=task.plan, seed=task.seed, outcome=outcome,
            result=None, detail=detail,
            elapsed_s=sum(e["elapsed_s"] for e in log),
            attempts=len(log))
        cases[i] = case
        stats["quarantined"] += 1
        if status is not None:
            status.on_complete(outcome, case.elapsed_s)
        metrics.counter("fleet.quarantined").inc()
        fleet_event("fleet.quarantine", plan=task.plan,
                    seed=task.seed, attempts=len(log), failure=kind,
                    bundle=str(bundle) if bundle else None)
        if on_case is not None:
            on_case(i, task, case, None, 0)

    def worker_died(w: _Worker, why: str = "") -> None:
        code = reap(w)
        if code is not None and code < 0:
            died = f"killed by signal {-code}"
            try:
                died += f" ({signal.Signals(-code).name})"
            except ValueError:              # pragma: no cover
                pass
        else:
            died = f"exited with code {code}"
        if why:
            died = f"{why}; {died}"
        item, w.assigned, w.deadline = w.assigned, None, None
        text = stderr_slice(w)
        spawn(w, respawn=True)
        if item is not None:
            attempt_failed(w, item, "crashed",
                           f"worker {died}", text)

    def worker_timed_out(w: _Worker) -> None:
        reap(w, kill=True)
        item, w.assigned, w.deadline = w.assigned, None, None
        text = stderr_slice(w)
        spawn(w, respawn=True)
        attempt_failed(
            w, item, "timeout",
            f"exceeded cell deadline {policy.cell_timeout_s}s "
            f"(worker SIGKILLed)", text)

    fleet = [_Worker(wid) for wid in range(workers_n)]
    try:
        for w in fleet:
            spawn(w)
        while len(cases) < total:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, _, item = heapq.heappop(delayed)
                queue.append(item)
            for w in fleet:
                if w.assigned is None and queue:
                    dispatch(w, queue.popleft(), time.monotonic())
            busy = [w for w in fleet if w.assigned is not None]
            if not busy:
                if delayed:
                    due = delayed[0][0] - time.monotonic()
                    if due > 0:
                        time.sleep(min(due, policy.poll_s))
                    continue
                if queue:                   # pragma: no cover
                    continue
                break                       # pragma: no cover
            timeout = policy.poll_s
            deadlines = [w.deadline for w in busy
                         if w.deadline is not None]
            if deadlines:
                timeout = min(timeout,
                              max(0.0, min(deadlines) - now))
            if delayed:
                timeout = min(timeout, max(0.0, delayed[0][0] - now))
            handles = [w.conn for w in busy] \
                + [w.proc.sentinel for w in busy]
            ready = set(mp_connection.wait(handles, timeout=timeout))
            now = time.monotonic()
            for w in busy:
                if w.assigned is None:
                    continue
                if w.conn in ready:
                    try:
                        msg = w.conn.recv()
                    except (EOFError, OSError):
                        worker_died(w, "result pipe broke")
                        continue
                    if msg[0] == "tel":
                        i, task, attempt, _log = w.assigned
                        batch = msg[1]
                        n = len(batch.get("records") or [])
                        stats["stream_batches"] = \
                            stats.get("stream_batches", 0) + 1
                        stats["stream_records"] = \
                            stats.get("stream_records", 0) + n
                        if merger is not None:
                            merger.ingest(cell_salt(task), attempt,
                                          batch)
                        if status is not None:
                            status.on_stream(n)
                        # a streaming worker keeps its pipe ready, so
                        # the elif deadline check below would starve —
                        # enforce it here as well
                        if w.deadline is not None \
                                and now >= w.deadline:
                            worker_timed_out(w)
                    elif msg[0] == "ok":
                        complete(w, msg[1], msg[2], msg[3])
                    else:
                        item = w.assigned
                        w.assigned = None
                        w.deadline = None
                        attempt_failed(w, item, "error",
                                       f"cell raised:\n{msg[1]}")
                elif w.proc.sentinel in ready:
                    worker_died(w)
                elif w.deadline is not None and now >= w.deadline:
                    worker_timed_out(w)
    finally:
        for w in fleet:
            if w.proc is None:
                continue
            try:
                w.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            reap(w)
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
    summary = metrics.summary()
    if summary:
        stats["metrics"] = summary
    if policy.chaos is not None:
        stats["chaos"] = policy.chaos.describe()
    if merger is not None:
        stats["telemetry"] = merger.stats()
    return cases, stats


# -- quarantine bundles ------------------------------------------------------


def _bundle_name(task: Any) -> str:
    raw = f"{task.scenario}-{task.plan}-seed{task.seed}"
    return re.sub(r"[^A-Za-z0-9._-]", "_", raw)


def _write_bundle(qdir: pathlib.Path, task: Any, log: list,
                  policy: FleetPolicy, kind: str) -> pathlib.Path:
    """Write one poison cell's re-executable quarantine bundle.

    Layout: ``<qdir>/<scenario>-<plan>-seed<N>/`` with ``cell.json``
    (task spec, fleet policy, attempt log, final verdict),
    ``attempt-<i>.stderr.txt`` per attempt that captured worker
    stderr, and a ``README.md`` with the replay command.
    """
    bundle = qdir / _bundle_name(task)
    bundle.mkdir(parents=True, exist_ok=True)
    attempts = []
    for entry in log:
        slim = {k: entry[k] for k in ("attempt", "failure", "detail",
                                      "elapsed_s")}
        text = entry.get("stderr", "")
        if text:
            name = f"attempt-{entry['attempt']}.stderr.txt"
            (bundle / name).write_text(text, encoding="utf-8")
            slim["stderr_file"] = name
        attempts.append(slim)
    cell = {
        "version": QUARANTINE_VERSION,
        "kind": "quarantined-cell",
        "task": {
            "scenario": task.scenario, "plan": task.plan,
            "seed": task.seed, "max_steps": task.max_steps,
            "record": task.record,
        },
        "policy": policy.to_dict(),
        "attempts": attempts,
        "final": {"outcome": "quarantined", "failure": kind},
    }
    (bundle / "cell.json").write_text(
        json.dumps(cell, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    (bundle / "README.md").write_text(
        f"# Quarantined cell {_bundle_name(task)}\n\n"
        f"This cell failed {len(log)} attempt(s) "
        f"(last failure: {kind}) and was isolated so the rest of the "
        "grid could complete.\n\n"
        "Replay it standalone (re-applies the recorded deadline, "
        "retry and chaos policy, so a genuine failure reproduces):\n\n"
        f"    python -m repro replay {bundle}\n",
        encoding="utf-8")
    return bundle


def replay_quarantined_cell(bundle: str | os.PathLike,
                            tracer: Any = None
                            ) -> Tuple[ConformanceCase, dict, bool]:
    """Re-execute a quarantined cell from its bundle, standalone.

    Rebuilds the :class:`~repro.par.CellTask` and
    :class:`FleetPolicy` recorded in ``cell.json`` (quarantine
    disabled, so the replay does not re-bundle) and runs the single
    cell on a one-worker fleet under the same deadline, retry and
    chaos policy.  Returns ``(case, recorded_final, reproduced)`` —
    ``reproduced`` is true when the replay reaches the same terminal
    failure kind the bundle recorded (or, for a cell that only failed
    through since-fixed infrastructure, false with the now-clean
    outcome in ``case``).
    """
    from repro.par import CellTask

    path = pathlib.Path(bundle)
    if path.is_dir():
        path = path / "cell.json"
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("kind") != "quarantined-cell":
        raise ValueError(
            f"{path} is not a quarantine bundle "
            f"(kind={data.get('kind')!r})")
    spec = data["task"]
    task = CellTask(
        scenario=str(spec["scenario"]), plan=str(spec["plan"]),
        seed=int(spec["seed"]), max_steps=int(spec["max_steps"]),
        record=bool(spec.get("record", True)), traced=False)
    policy = FleetPolicy.from_dict(data["policy"])
    cases, _stats = run_fleet([(0, task)], workers=1, policy=policy,
                              tracer=tracer)
    case = cases[0]
    recorded = dict(data.get("final", {}))
    expected = _FAILURE_OUTCOME.get(recorded.get("failure"),
                                    recorded.get("outcome"))
    reproduced = case.outcome == expected
    return case, recorded, reproduced
