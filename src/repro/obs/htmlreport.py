"""Self-contained static HTML flight-deck report for a grid run.

One grid run → one ``.html`` file: the conformance verdict, the fleet
supervision story (retries, timeouts, quarantines, streamed
telemetry), the cache hit-rate and the merged metrics — including the
p50/p90/p99 histogram quantiles and tiny inline bucket bar charts —
all rendered with inline CSS and zero external assets, so the file can
be archived as a CI artifact and opened years later, offline.

The machine-readable twin of the page rides inside it: the JSON
exposition (:func:`repro.obs.exposition.to_json_exposition`) is
embedded in a ``<script type="application/json" id="metrics">`` block,
so the artifact serves dashboards and humans from one file.

Pure string construction — no templating dependency, deterministic
output for a given input (timestamps appear only if the caller passes
one in ``meta``).
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional

from repro.obs.metrics import QUANTILES
from repro.obs.exposition import to_json_exposition
from repro.obs.profile import hotspots_from_metrics

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a202c; background: #fafafa; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { text-align: left; padding: .3rem .6rem;
         border-bottom: 1px solid #e2e8f0; }
th { background: #edf2f7; font-weight: 600; }
tr.outcome-conforms td.outcome { color: #276749; }
tr.infra td.outcome { color: #975a16; }
tr.fail td.outcome { color: #9b2c2c; font-weight: 700; }
.cards { display: flex; flex-wrap: wrap; gap: .8rem; margin: 1rem 0; }
.card { background: #fff; border: 1px solid #e2e8f0;
        border-radius: .4rem; padding: .6rem 1rem; min-width: 7rem; }
.card .v { font-size: 1.3rem; font-weight: 700; display: block; }
.card .k { font-size: .7rem; color: #718096;
           text-transform: uppercase; letter-spacing: .05em; }
.bar { display: inline-block; background: #4299e1; height: .7rem;
       vertical-align: middle; min-width: 1px; }
.bucketrow { font-size: .75rem; color: #4a5568;
             font-variant-numeric: tabular-nums; }
.mono { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
        font-size: .8rem; }
.degraded { background: #fffaf0; border: 1px solid #ed8936;
            border-radius: .4rem; padding: .6rem 1rem; }
footer { margin-top: 3rem; font-size: .75rem; color: #a0aec0; }
"""


def _esc(v: Any) -> str:
    return html.escape(str(v), quote=True)


def _card(value: Any, label: str) -> str:
    return (f'<div class="card"><span class="v">{_esc(value)}</span>'
            f'<span class="k">{_esc(label)}</span></div>')


def _fmt_num(v: Any) -> str:
    if v is None:
        return "—"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def _case_row_class(case: Any) -> str:
    if case.outcome == "conforms":
        return "outcome-conforms"
    if getattr(case, "infra_failure", False):
        return "infra"
    return "fail"


def _histogram_block(name: str, value: Dict[str, Any]) -> str:
    """One histogram as a stat line plus an inline bucket bar chart."""
    stats = " · ".join(
        f"{k}={_fmt_num(value.get(k))}"
        for k in ("count", "total", "min", "max", "mean",
                  "p50", "p90", "p99")
        if value.get(k) is not None)
    rows: List[str] = []
    buckets = {int(k): int(v)
               for k, v in (value.get("buckets") or {}).items()}
    peak = max(buckets.values(), default=1)
    for k in sorted(buckets):
        upper = "1" if k <= 0 else str(2 ** k)
        width = max(1, round(120 * buckets[k] / peak))
        rows.append(
            f'<div class="bucketrow">&le; {upper:>}: '
            f'<span class="bar" style="width:{width}px"></span> '
            f"{buckets[k]}</div>")
    return (f"<tr><td class=\"mono\">{_esc(name)}</td>"
            f"<td>{_esc(stats)}{''.join(rows)}</td></tr>")


def render_html_report(report: Any,
                       metrics_summary: Optional[Dict[str, Any]]
                       = None,
                       status: Optional[Dict[str, Any]] = None,
                       meta: Optional[Dict[str, Any]] = None) -> str:
    """Render a :class:`~repro.faults.harness.ConformanceReport` (plus
    an optional grid-level metrics summary and a final
    :meth:`~repro.obs.telemetry.FleetStatus.snapshot`) as one
    self-contained HTML page."""
    cases = list(getattr(report, "cases", []))
    conforming = sum(1 for c in cases if c.outcome == "conforms")
    infra = [c for c in cases if getattr(c, "infra_failure", False)]
    genuine = list(getattr(report, "genuine_failures", []))
    cached = list(getattr(report, "cached_cases", []))
    stats = getattr(report, "fleet_stats", None) or {}
    wall = getattr(report, "wall_clock_s", 0.0)
    compute = (report.total_elapsed_s()
               if hasattr(report, "total_elapsed_s") else 0.0)

    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>repro grid — {_esc(report.network)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Grid flight deck — <span class=\"mono\">"
        f"{_esc(report.network)}</span></h1>",
    ]
    if meta:
        bits = " · ".join(f"{_esc(k)}: {_esc(v)}"
                          for k, v in sorted(meta.items()))
        parts.append(f"<p class=\"mono\">{bits}</p>")

    parts.append('<div class="cards">')
    parts.append(_card(len(cases), "cells"))
    parts.append(_card(conforming, "conforming"))
    parts.append(_card(len(genuine), "genuine failures"))
    parts.append(_card(len(infra), "infra lost"))
    if cached:
        parts.append(_card(len(cached), "cache hits"))
    parts.append(_card(f"{wall:.3f}s", "wall clock"))
    if wall > 0 and compute > wall:
        parts.append(_card(f"×{compute / wall:.1f}", "overlap"))
    if stats.get("stream_records"):
        parts.append(_card(stats["stream_records"],
                           "records streamed"))
    parts.append("</div>")

    if infra:
        parts.append(
            f'<div class="degraded"><strong>DEGRADED:</strong> '
            f"{len(infra)}/{len(cases)} cells lost to infrastructure "
            "(timeout / crash / quarantine); verdicts below cover the "
            "surviving cells.</div>")

    if stats:
        parts.append("<h2>Fleet</h2><table>")
        parts.append("<tr><th>stat</th><th>value</th></tr>")
        for key in ("workers", "spawns", "respawns", "dispatches",
                    "retries", "timeouts", "crashes", "errors",
                    "quarantined", "completed", "stream_batches",
                    "stream_records", "chaos"):
            if stats.get(key):
                parts.append(f"<tr><td>{_esc(key)}</td>"
                             f"<td>{_esc(stats[key])}</td></tr>")
        telemetry = stats.get("telemetry") or {}
        for key in sorted(telemetry):
            parts.append(
                f"<tr><td>telemetry.{_esc(key)}</td>"
                f"<td>{_esc(telemetry[key])}</td></tr>")
        parts.append("</table>")

    if status:
        parts.append("<h2>Final status</h2><table>")
        parts.append("<tr><th>field</th><th>value</th></tr>")
        for key in sorted(status):
            parts.append(f"<tr><td>{_esc(key)}</td>"
                         f"<td>{_esc(_fmt_num(status[key]))}"
                         "</td></tr>")
        parts.append("</table>")

    parts.append("<h2>Cells</h2><table>")
    parts.append("<tr><th>plan</th><th>seed</th><th>outcome</th>"
                 "<th>elapsed</th><th>attempts</th>"
                 "<th>digest</th></tr>")
    for case in cases:
        digest = ""
        schedule = getattr(case, "schedule", None)
        if schedule is not None:
            digest = schedule.digest()[:12]
        parts.append(
            f'<tr class="{_case_row_class(case)}">'
            f"<td>{_esc(case.plan)}</td><td>{_esc(case.seed)}</td>"
            f'<td class="outcome">{_esc(case.outcome)}</td>'
            f"<td>{case.elapsed_s * 1e3:.1f}ms</td>"
            f"<td>{_esc(getattr(case, 'attempts', 1))}</td>"
            f'<td class="mono">{_esc(digest)}</td></tr>')
    parts.append("</table>")

    if metrics_summary:
        hotspot_rows = hotspots_from_metrics(metrics_summary)
        if hotspot_rows:
            parts.append("<h2>Solver hotspots</h2><table>")
            parts.append("<tr><th>site</th><th>calls</th>"
                         "<th>time</th><th>share</th></tr>")
            for row in hotspot_rows:
                parts.append(
                    f'<tr><td class="mono">{_esc(row["site"])}</td>'
                    f"<td>{_esc(row['calls'])}</td>"
                    f"<td>{row['ns'] / 1e6:.3f}ms</td>"
                    f"<td>{row['share'] * 100:.1f}%</td></tr>")
            parts.append("</table>")
        histograms = {n: v for n, v in metrics_summary.items()
                      if isinstance(v, dict) and "buckets" in v}
        scalars = {n: v for n, v in metrics_summary.items()
                   if n not in histograms}
        if scalars:
            parts.append("<h2>Metrics</h2><table>")
            parts.append("<tr><th>metric</th><th>value</th></tr>")
            for name in sorted(scalars):
                value = scalars[name]
                if isinstance(value, dict):
                    value = " · ".join(
                        f"{k}={_fmt_num(v)}"
                        for k, v in sorted(value.items())
                        if v is not None)
                parts.append(
                    f'<tr><td class="mono">{_esc(name)}</td>'
                    f"<td>{_esc(value)}</td></tr>")
            parts.append("</table>")
        if histograms:
            quants = "/".join(q for q, _ in QUANTILES)
            parts.append(f"<h2>Histograms ({quants})</h2><table>")
            parts.append("<tr><th>histogram</th>"
                         "<th>distribution</th></tr>")
            for name in sorted(histograms):
                parts.append(_histogram_block(name, histograms[name]))
            parts.append("</table>")
        exposition = to_json_exposition(metrics_summary, meta=meta)
        blob = json.dumps(exposition, indent=2, sort_keys=True)
        # keep the script block inert: a metric/channel/agent name
        # containing "</script" or "<!--" must not break out of it;
        # < parses back to the same string
        blob = blob.replace("<", "\\u003c")
        parts.append('<script type="application/json" id="metrics">')
        parts.append(blob)
        parts.append("</script>")

    parts.append(
        "<footer>repro grid flight deck — self-contained artifact; "
        "machine-readable metrics live in "
        '<span class="mono">#metrics</span>.</footer>')
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_html_report(report: Any, path: str,
                      metrics_summary: Optional[Dict[str, Any]]
                      = None,
                      status: Optional[Dict[str, Any]] = None,
                      meta: Optional[Dict[str, Any]] = None) -> str:
    """Write :func:`render_html_report` to ``path``; returns the
    rendered text."""
    text = render_html_report(report, metrics_summary=metrics_summary,
                              status=status, meta=meta)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
