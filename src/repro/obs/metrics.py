"""Metrics: counters, gauges and histograms for one run.

A :class:`MetricsRegistry` is created per solver exploration / runtime
run, filled by the instrumentation, and flattened by :meth:`summary`
into the plain dict that rides on ``SolverResult.metrics``,
``RunResult.metrics`` and conformance-grid cells — so a failing cell
ships its own quantitative explanation.

All three instruments are streaming (O(1) state): the histogram keeps
count/total/min/max plus coarse power-of-two buckets rather than the
raw samples; quantiles (:meth:`Histogram.quantile`) are bucket-bound
estimates derived from those buckets, never from retained samples.

Registries also speak a *snapshot / merge / delta* protocol for
cross-process aggregation (the fleet's live telemetry): a
:meth:`MetricsRegistry.snapshot` is a plain-JSON image of every
instrument, :meth:`MetricsRegistry.merge` folds a snapshot (or a
delta) into another registry, and :func:`snapshot_delta` subtracts two
snapshots so workers can ship only what changed since the last batch.
Counters and histogram counts/totals/buckets are additive, so
``merge(delta(b, a))`` on top of ``a``'s image reproduces ``b``'s
totals exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

#: The quantiles exposed on histogram summaries and expositions.
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value instrument that also remembers its extremes."""

    __slots__ = ("name", "value", "max_value", "min_value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.min_value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if self.min_value is None or value < self.min_value:
            self.min_value = value

    def summary(self) -> Dict[str, Any]:
        return {"last": self.value, "min": self.min_value,
                "max": self.max_value}


class Histogram:
    """Streaming distribution: count/total/min/max + 2^k buckets.

    Bucket ``k`` counts samples with ``2^(k-1) < v <= 2^k`` (bucket 0
    counts ``v <= 1``, negatives included) — enough resolution to see
    the shape of branching factors or queue depths without keeping
    samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        k = 0
        bound = 1
        while value > bound:
            bound *= 2
            k += 1
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-bound quantile estimate.

        Walks the power-of-two buckets in order and returns the upper
        bound of the bucket where the cumulative count first reaches
        ``q * count``, clamped to the observed ``[min, max]`` — a
        deterministic over-estimate that never exceeds the true
        maximum.  ``None`` on an empty histogram.
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        rank = q * self.count
        cumulative = 0
        for k in sorted(self.buckets):
            cumulative += self.buckets[k]
            if cumulative >= rank:
                upper = float(2 ** k) if k > 0 else 1.0
                upper = min(upper, self.max)
                return max(upper, self.min)
        return self.max                     # pragma: no cover - guard

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for name, q in QUANTILES:
            out[name] = self.quantile(q)
        out["buckets"] = {str(k): v
                          for k, v in sorted(self.buckets.items())}
        return out

    def merge(self, other: Dict[str, Any]) -> None:
        """Fold another histogram's snapshot/summary slice into this
        one (count/total/buckets add; min/max take the extremes)."""
        self.count += int(other.get("count", 0))
        self.total += float(other.get("total", 0.0))
        for bound in ("min", "max"):
            v = other.get(bound)
            if v is None:
                continue
            mine = getattr(self, bound)
            if mine is None or (v < mine if bound == "min"
                                else v > mine):
                setattr(self, bound, v)
        for k, n in (other.get("buckets") or {}).items():
            k = int(k)
            self.buckets[k] = self.buckets.get(k, 0) + int(n)


class MetricsRegistry:
    """Get-or-create instruments by name; summarize to a plain dict."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name)
            return h

    def summary(self) -> Dict[str, Any]:
        """Flatten every instrument into one JSON-friendly dict.

        Counters map to their integer value; gauges and histograms map
        to small stat dicts.  Names are sorted so summaries diff
        cleanly.
        """
        out: Dict[str, Any] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.summary()
        for name, h in self._histograms.items():
            out[name] = h.summary()
        return dict(sorted(out.items()))

    # -- snapshot / merge / delta ----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-JSON image of every instrument, typed by section.

        Unlike :meth:`summary` (which flattens for reporting), a
        snapshot keeps counters, gauges and histograms apart so it can
        be merged or subtracted without guessing an entry's kind.
        """
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.summary()
                       for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"count": h.count, "total": h.total,
                    "min": h.min, "max": h.max,
                    "buckets": {str(k): v for k, v
                                in sorted(h.buckets.items())}}
                for n, h in sorted(self._histograms.items())},
        }

    def merge(self, snapshot: Dict[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` (or a :func:`snapshot_delta`) into
        this registry: counters and histogram counts/totals/buckets
        add, gauges take the incoming last value while keeping the
        combined extremes.  Returns ``self`` for chaining."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, g in (snapshot.get("gauges") or {}).items():
            gauge = self.gauge(name)
            for v in (g.get("min"), g.get("max"), g.get("last")):
                if v is not None:
                    gauge.set(v)
        for name, h in (snapshot.get("histograms") or {}).items():
            self.histogram(name).merge(h)
        return self

    def merge_summary(self, summary: Dict[str, Any]
                      ) -> "MetricsRegistry":
        """Fold a flat :meth:`summary` dict (the form that rides on
        results and conformance cells) into this registry, classifying
        each entry by shape: histogram slices (``buckets``) merge,
        gauge slices (``last``) fold through :meth:`Gauge.set`, and
        everything else adds as a counter.  The way a grid-level
        registry accumulates per-cell totals — sums stay consistent
        with the cells by construction."""
        for name, value in (summary or {}).items():
            if isinstance(value, dict) and "buckets" in value:
                self.histogram(name).merge(value)
            elif isinstance(value, dict) and "last" in value:
                gauge = self.gauge(name)
                for v in (value.get("min"), value.get("max"),
                          value.get("last")):
                    if v is not None:
                        gauge.set(v)
            elif isinstance(value, (int, float)):
                self.counter(name).inc(int(value))
        return self

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, Any]
                      ) -> "MetricsRegistry":
        return cls().merge(snapshot)


def merge_registries(snapshots: Iterable[Dict[str, Any]]
                     ) -> MetricsRegistry:
    """Fold many snapshots/deltas into one fresh registry."""
    reg = MetricsRegistry()
    for snap in snapshots:
        reg.merge(snap)
    return reg


def snapshot_delta(new: Dict[str, Any],
                   old: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """What changed between two :meth:`MetricsRegistry.snapshot`\\ s.

    The result is itself snapshot-shaped and additive:
    ``merge(old); merge(delta)`` reproduces ``new``'s counter and
    histogram totals exactly.  Gauges carry the new image (last-value
    instruments have no meaningful difference).  Instruments absent
    from the delta were untouched; an empty delta means nothing
    happened between the snapshots.
    """
    old = old or {}
    out: Dict[str, Any] = {"counters": {}, "gauges": {},
                           "histograms": {}}
    old_counters = old.get("counters") or {}
    for name, value in (new.get("counters") or {}).items():
        diff = int(value) - int(old_counters.get(name, 0))
        if diff:
            out["counters"][name] = diff
    old_gauges = old.get("gauges") or {}
    for name, g in (new.get("gauges") or {}).items():
        if g != old_gauges.get(name):
            out["gauges"][name] = dict(g)
    old_hists = old.get("histograms") or {}
    for name, h in (new.get("histograms") or {}).items():
        prev = old_hists.get(name) or {}
        count = int(h.get("count", 0)) - int(prev.get("count", 0))
        if not count:
            continue
        prev_buckets = prev.get("buckets") or {}
        buckets = {
            k: int(v) - int(prev_buckets.get(k, 0))
            for k, v in (h.get("buckets") or {}).items()
            if int(v) - int(prev_buckets.get(k, 0))
        }
        out["histograms"][name] = {
            "count": count,
            "total": float(h.get("total", 0.0))
            - float(prev.get("total", 0.0)),
            "min": h.get("min"), "max": h.get("max"),
            "buckets": buckets,
        }
    return out
