"""Metrics: counters, gauges and histograms for one run.

A :class:`MetricsRegistry` is created per solver exploration / runtime
run, filled by the instrumentation, and flattened by :meth:`summary`
into the plain dict that rides on ``SolverResult.metrics``,
``RunResult.metrics`` and conformance-grid cells — so a failing cell
ships its own quantitative explanation.

All three instruments are streaming (O(1) state): the histogram keeps
count/total/min/max plus coarse power-of-two buckets rather than the
raw samples.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value instrument that also remembers its extremes."""

    __slots__ = ("name", "value", "max_value", "min_value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.min_value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if self.min_value is None or value < self.min_value:
            self.min_value = value

    def summary(self) -> Dict[str, Any]:
        return {"last": self.value, "min": self.min_value,
                "max": self.max_value}


class Histogram:
    """Streaming distribution: count/total/min/max + 2^k buckets.

    Bucket ``k`` counts samples with ``2^(k-1) < v <= 2^k`` (bucket 0
    counts ``v <= 1``, negatives included) — enough resolution to see
    the shape of branching factors or queue depths without keeping
    samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        k = 0
        bound = 1
        while value > bound:
            bound *= 2
            k += 1
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v
                        for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Get-or-create instruments by name; summarize to a plain dict."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name)
            return h

    def summary(self) -> Dict[str, Any]:
        """Flatten every instrument into one JSON-friendly dict.

        Counters map to their integer value; gauges and histograms map
        to small stat dicts.  Names are sorted so summaries diff
        cleanly.
        """
        out: Dict[str, Any] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.summary()
        for name, h in self._histograms.items():
            out[name] = h.summary()
        return dict(sorted(out.items()))
