"""Benchmark trajectory: history appender and regression gate.

``benchmarks/conftest.py`` already writes each bench session's printed
rows to ``BENCH_core.json`` — but a single snapshot cannot say whether
the hot paths the ROADMAP targets (solver memoization, warm-grid cache
serving, fleet supervision overhead, recorder overhead) are getting
better or worse.  This module gives the snapshot a *trajectory*:

* :func:`append_history` extracts the tracked rows from a
  ``BENCH_core.json`` payload and appends one JSONL entry — keyed by
  git SHA — to ``BENCH_history.jsonl``;
* :func:`check` compares a fresh snapshot against the committed
  history and flags any tracked row that regressed beyond its
  per-row tolerance (``python -m repro bench-check`` fails CI on it).

Tracked rows are deliberately machine-portable: dimensionless ratios
(speedups, overhead ratios/percentages) and deterministic counts
(nodes explored), never raw milliseconds.  The baseline is the
**median of the last few history entries** with the same context
(e.g. solver depth), so one noisy CI run neither poisons the baseline
nor slips a regression through.  Rows absent from the current
snapshot warn rather than fail unless ``strict`` — the fleet bench's
overhead row, for example, is only meaningful on multi-core runners.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: How many of the most recent matching history entries form the
#: baseline (their median).
BASELINE_WINDOW = 5


@dataclass(frozen=True)
class TrackedRow:
    """One benchmark row under regression watch.

    ``direction`` is what *better* looks like: ``"higher"`` (speedups),
    ``"lower"`` (overheads), ``"equal"`` (deterministic counts — any
    change is a regression), or ``"context"`` (not compared, but
    baseline entries must match it — e.g. the solver depth that the
    node count is a function of).  A row regresses when it is worse
    than the baseline by more than ``rel_tol`` (fraction of the
    baseline) plus ``abs_tol``.
    """

    experiment: str
    label: str
    direction: str = "context"
    rel_tol: float = 0.0
    abs_tol: float = 0.0

    @property
    def key(self) -> str:
        return f"{self.experiment}|{self.label}"


#: The regression gate: solver depth-6 memoization, warm-grid cache
#: speedup, fleet supervision overhead, recorder overhead, causal
#: observatory costs.
TRACKED_ROWS: Tuple[TrackedRow, ...] = (
    TrackedRow("S33-MEMO", "depth"),
    TrackedRow("S33-MEMO", "nodes explored", "equal"),
    TrackedRow("S33-MEMO", "speedup", "higher", rel_tol=0.35),
    TrackedRow("EXT-CACHE", "speedup", "higher", rel_tol=0.40),
    # abs_tol spans the bench's own <10% happy-path gate: a baseline
    # measured on a starved runner (overhead can go negative there)
    # must not make the trajectory stricter than the bench itself
    TrackedRow("EXT-FLEET", "supervision overhead (%)", "lower",
               rel_tol=0.60, abs_tol=15.0),
    TrackedRow("EXT-OBS", "overhead ratio", "lower",
               rel_tol=0.35, abs_tol=0.25),
    # abs_tol spans bench_causality's own <25% gate: the percentage
    # is jittery on starved runners where the grid's fixed fleet
    # cost inflates the denominator unpredictably
    TrackedRow("EXT-CAUSAL", "graph overhead (%)", "lower",
               rel_tol=0.60, abs_tol=8.0),
    # the disabled path must allocate *nothing* — any nonzero count
    # means NULL_TRACER runs started paying for the observatory
    TrackedRow("EXT-CAUSAL", "disabled-path profile entries",
               "equal"),
    # compiled hot path: node count is a correctness invariant (the
    # engines must visit the same tree), the speedup a wide-tolerance
    # trajectory (its floor is asserted in the bench itself)
    TrackedRow("EXT-COMPILE", "depth"),
    TrackedRow("EXT-COMPILE", "nodes explored", "equal"),
    TrackedRow("EXT-COMPILE", "speedup", "higher", rel_tol=0.45),
    # query layer: the node ratio is nearly deterministic (same tree,
    # same heuristic) but the early-exit speedup is a wall-clock
    # trajectory like the other speedups
    TrackedRow("EXT-SEARCH", "depth"),
    TrackedRow("EXT-SEARCH", "query node ratio", "lower",
               rel_tol=0.50),
    TrackedRow("EXT-SEARCH", "query early-exit speedup", "higher",
               rel_tol=0.50),
)


def _numeric(value: Any) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return float(value)


def extract_tracked(core: Dict[str, Any],
                    tracked: Tuple[TrackedRow, ...] = TRACKED_ROWS
                    ) -> Dict[str, float]:
    """Pull the tracked rows' numeric values out of a
    ``BENCH_core.json`` payload (missing or non-numeric rows are
    simply absent from the result)."""
    out: Dict[str, float] = {}
    want = {t.key: t for t in tracked}
    for row in core.get("rows") or []:
        key = f"{row.get('experiment')}|{row.get('label')}"
        if key not in want or key in out:
            continue
        value = _numeric(row.get("value"))
        if value is not None:
            out[key] = value
    return out


def load_core(path: str | pathlib.Path) -> Dict[str, Any]:
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def load_history(path: str | pathlib.Path) -> List[Dict[str, Any]]:
    """Read a ``BENCH_history.jsonl``; tolerates a missing file (empty
    trajectory) and skips malformed lines rather than dying on them —
    a truncated append must not brick the gate."""
    p = pathlib.Path(path)
    if not p.exists():
        return []
    entries: List[Dict[str, Any]] = []
    for line in p.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict) and isinstance(
                entry.get("rows"), dict):
            entries.append(entry)
    return entries


def append_history(core: Dict[str, Any],
                   history_path: str | pathlib.Path,
                   sha: str = "unknown",
                   tracked: Tuple[TrackedRow, ...] = TRACKED_ROWS
                   ) -> Dict[str, Any]:
    """Append one trajectory entry for this snapshot; returns it.

    The entry carries only the tracked rows plus enough provenance
    (SHA, timestamp, python, platform) to interpret them later.
    """
    entry = {
        "sha": sha,
        "generated_at": core.get("generated_at"),
        "python": core.get("python"),
        "platform": core.get("platform"),
        "rows": extract_tracked(core, tracked),
    }
    p = pathlib.Path(history_path)
    with open(p, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def _context_rows(tracked: Tuple[TrackedRow, ...]
                  ) -> List[TrackedRow]:
    return [t for t in tracked if t.direction == "context"]


def _matches_context(entry_rows: Dict[str, Any],
                     current: Dict[str, float],
                     tracked: Tuple[TrackedRow, ...]) -> bool:
    for ctx in _context_rows(tracked):
        if ctx.key in current and ctx.key in entry_rows \
                and entry_rows[ctx.key] != current[ctx.key]:
            return False
    return True


def baseline_for(history: List[Dict[str, Any]], key: str,
                 current: Dict[str, float],
                 tracked: Tuple[TrackedRow, ...] = TRACKED_ROWS,
                 window: int = BASELINE_WINDOW) -> Optional[float]:
    """Median of the last ``window`` history values for ``key`` whose
    context rows match the current snapshot's; None with no usable
    history (the gate then passes vacuously — a fresh trajectory)."""
    values = [
        v for entry in history
        if _matches_context(entry.get("rows") or {}, current, tracked)
        for k, v in (entry.get("rows") or {}).items()
        if k == key and _numeric(v) is not None
    ]
    if not values:
        return None
    tail = sorted(float(v) for v in values[-window:])
    mid = len(tail) // 2
    if len(tail) % 2:
        return tail[mid]
    return (tail[mid - 1] + tail[mid]) / 2.0


@dataclass
class RowVerdict:
    """The gate's decision about one tracked row."""

    key: str
    direction: str
    status: str           # ok | regressed | missing | no-baseline
    value: Optional[float] = None
    baseline: Optional[float] = None
    threshold: Optional[float] = None

    def describe(self) -> str:
        if self.status == "missing":
            return f"MISSING  {self.key} (not in this snapshot)"
        if self.status == "no-baseline":
            return (f"SEEDING  {self.key} = {self.value:g} "
                    "(no baseline yet)")
        word = "REGRESS " if self.status == "regressed" else "ok      "
        arrow = {"higher": ">=", "lower": "<=",
                 "equal": "=="}[self.direction]
        return (f"{word} {self.key} = {self.value:g} "
                f"(baseline {self.baseline:g}, needs {arrow} "
                f"{self.threshold:g})")


@dataclass
class BenchCheckResult:
    """All row verdicts plus the overall gate decision."""

    verdicts: List[RowVerdict]
    strict: bool = False

    @property
    def regressions(self) -> List[RowVerdict]:
        return [v for v in self.verdicts if v.status == "regressed"]

    @property
    def missing(self) -> List[RowVerdict]:
        return [v for v in self.verdicts if v.status == "missing"]

    @property
    def ok(self) -> bool:
        if self.regressions:
            return False
        if self.strict and self.missing:
            return False
        return True

    def describe(self) -> str:
        lines = [v.describe() for v in self.verdicts]
        if self.ok:
            lines.append("bench-check: PASS")
        else:
            why = []
            if self.regressions:
                why.append(f"{len(self.regressions)} regression(s)")
            if self.strict and self.missing:
                why.append(f"{len(self.missing)} missing row(s)")
            lines.append("bench-check: FAIL — " + ", ".join(why))
        return "\n".join(lines)


def check(core: Dict[str, Any],
          history: List[Dict[str, Any]],
          tracked: Tuple[TrackedRow, ...] = TRACKED_ROWS,
          strict: bool = False,
          window: int = BASELINE_WINDOW) -> BenchCheckResult:
    """Gate a fresh snapshot against the committed trajectory."""
    current = extract_tracked(core, tracked)
    verdicts: List[RowVerdict] = []
    for t in tracked:
        if t.direction == "context":
            continue
        value = current.get(t.key)
        if value is None:
            verdicts.append(RowVerdict(t.key, t.direction, "missing"))
            continue
        base = baseline_for(history, t.key, current, tracked, window)
        if base is None:
            verdicts.append(RowVerdict(
                t.key, t.direction, "no-baseline", value=value))
            continue
        slack = abs(base) * t.rel_tol + t.abs_tol
        if t.direction == "higher":
            threshold = base - slack
            bad = value < threshold
        elif t.direction == "lower":
            threshold = base + slack
            bad = value > threshold
        else:                                   # "equal"
            threshold = base
            bad = value != base
        verdicts.append(RowVerdict(
            t.key, t.direction,
            "regressed" if bad else "ok",
            value=value, baseline=base, threshold=threshold))
    return BenchCheckResult(verdicts=verdicts, strict=strict)
