"""Happens-before graphs and divergence explanation.

The paper's program is *explaining* a nondeterministic network's
output stream: a smooth solution is exactly a causal justification of
each output prefix, and Abramsky's Generalized Kahn Principle
(PAPERS.md) recasts the same networks as dataflow whose behaviour is
fixed by message causality.  This module makes that causality a
first-class artifact: it reconstructs a happens-before DAG from the
tracer's event stream — no new instrumentation, the PR-2 events
already carry everything — and answers the two questions the raw
timeline cannot: *which decision caused this?* and *what bounds this
run's length?*

Node vocabulary (one node per runtime/scheduler/fault instant event):

* agent events — ``send`` / ``recv`` / ``poll`` / ``agent.block`` /
  ``agent.halt`` / ``agent.fail``, chained per agent in program order;
* decision nodes — ``oracle.pick_agent`` / ``oracle.pick_choice``
  (chained along the scheduler's own program order, each with a
  ``sched`` edge to the first event of the step it enabled) and
  ``fault.send`` (what the fault pipeline did to one send);
* fault pipeline nodes — ``fault.release`` / ``fault.flush``, each
  delivering one previously held message.

Message edges thread deliveries through the fault pipeline: a send's
deliveries are produced by its ``fault.send`` verdict (``pass`` and
``corrupt`` produce one, ``duplicate`` several, ``drop`` none,
``hold`` parks provenance until the matching release/flush), so a
``recv``'s ancestry names the exact fault decision its message
survived — and a *dropped* message's provenance survives as a
``fault.send`` node with no out-going delivery.

Everything is a pure function of the recorded schedule: node
identities are per-track sequence numbers, Lamport clocks are
``1 + max(predecessors)``, and :meth:`CausalGraph.digest` hashes the
nodes and edges *without timestamps* — same seed ⇒ same digest, and a
fleet cell's graph (via :func:`split_cells`) is digest-identical to
the same cell run serially.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.obs.recorder import stable_digest
from repro.obs.tracer import _jsonable

#: Event categories that participate in the happens-before graph.
GRAPH_CATEGORIES = frozenset({"runtime", "scheduler", "fault"})

#: Decision-node event names (oracle picks and fault verdicts).
DECISION_NAMES = frozenset(
    {"oracle.pick_agent", "oracle.pick_choice", "fault.send"})

#: Edge labels, in rendering order.
EDGE_LABELS = ("po", "sched", "msg", "fault", "read")


@dataclass
class CausalNode:
    """One instant event as a vertex of the happens-before DAG."""

    node_id: str            # "<track>#<per-track index>" — deterministic
    name: str               # tracer event name ("send", "fault.send", …)
    track: str
    index: int              # per-track sequence number
    step: Optional[int]     # runtime step the event carries, if any
    args: Dict[str, Any]    # JSON-safe copy of the event args
    clock: int = 0          # Lamport clock: 1 + max over predecessors
    ts_ns: int = 0          # timeline position (flows only; NOT hashed)

    @property
    def is_decision(self) -> bool:
        return self.name in DECISION_NAMES

    def payload(self) -> Dict[str, Any]:
        """Digest-stable dict form: everything except the timestamp."""
        return {
            "id": self.node_id,
            "name": self.name,
            "track": self.track,
            "step": self.step,
            "clock": self.clock,
            "args": self.args,
        }

    def label(self) -> str:
        """Short human-readable tag for chains and DOT nodes."""
        a = self.args
        if self.name == "oracle.pick_agent":
            detail = f"chose {a.get('chosen')}"
        elif self.name == "oracle.pick_choice":
            detail = f"{a.get('agent')} chose {a.get('chosen')}"
        elif self.name == "fault.send":
            detail = (f"{a.get('action')} {a.get('message')!r} "
                      f"on {a.get('channel')}")
        elif self.name in ("send", "recv", "poll"):
            detail = f"{a.get('message')!r} on {a.get('channel')}"
        else:
            detail = ""
        step = "" if self.step is None else f" @step {self.step}"
        detail = f" {detail}" if detail else ""
        return f"{self.node_id} {self.name}{detail}{step}"


@dataclass
class CausalGraph:
    """A happens-before DAG reconstructed from one run's tracer events.

    Build with :meth:`from_records`; nodes appear in event-stream
    order (which every edge respects, so the graph is a DAG by
    construction).  ``deliveries`` lists the run's observable output —
    one entry per message put on a wire, in delivery order, naming the
    producing node — which is the same stream
    :func:`repro.obs.diff.diff_runs` compares.
    """

    nodes: List[CausalNode] = field(default_factory=list)
    edges: List[Tuple[str, str, str]] = field(default_factory=list)
    #: (channel, message, producer node_id) in delivery order.
    deliveries: List[Tuple[str, Any, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_id: Dict[str, CausalNode] = {
            n.node_id: n for n in self.nodes}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[Any]) -> "CausalGraph":
        """Reconstruct the happens-before DAG from tracer records.

        Span records and events outside :data:`GRAPH_CATEGORIES` are
        ignored, so harness/cache/fleet chatter in a merged buffer
        does not perturb the graph.
        """
        graph = cls()
        nodes = graph.nodes
        edges = graph.edges
        # node_id -> max predecessor clock seen so far (the Lamport
        # clock is 1 + this; tracked as a running int so the hot loop
        # never materializes predecessor lists)
        max_pred: Dict[str, int] = {}
        clocks: Dict[str, int] = {}

        track_counts: Dict[str, int] = {}
        last_on_track: Dict[str, CausalNode] = {}
        # decisions waiting to attach to an agent's next runtime event
        pending_decisions: Dict[str, List[str]] = {}
        # per-channel FIFOs mirroring the runtime queues
        in_flight: Dict[str, deque] = {}
        held: Dict[str, deque] = {}
        # a send whose fault verdict (if any) has not arrived yet
        pending_send: Optional[Tuple[CausalNode, str]] = None

        def link(src: str, dst: str, label: str) -> None:
            edges.append((src, dst, label))
            c = clocks[src]
            if c > max_pred.get(dst, 0):
                max_pred[dst] = c

        def commit_send() -> None:
            """A send with no fault pipeline delivers itself."""
            nonlocal pending_send
            if pending_send is None:
                return
            send_node, channel = pending_send
            pending_send = None
            in_flight.setdefault(channel, deque()).append(
                send_node.node_id)
            graph.deliveries.append(
                (channel, send_node.args.get("message"),
                 send_node.node_id))

        plain = (str, int, float, bool, type(None))
        for rec in records:
            if getattr(rec, "kind", "") != "event":
                continue
            if rec.category not in GRAPH_CATEGORIES:
                continue
            name = rec.name
            track = rec.track
            args = {k: (v if type(v) in plain else _jsonable(v))
                    for k, v in rec.args.items()}
            channel = args.get("channel")
            if pending_send is not None and not (
                    name == "fault.send"
                    and channel == pending_send[1]):
                commit_send()

            index = track_counts.get(track, 0)
            track_counts[track] = index + 1
            node = CausalNode(
                node_id=f"{track}#{index}", name=name, track=track,
                index=index, step=args.get("step"), args=args,
                ts_ns=rec.ts_ns)
            nodes.append(node)
            graph._by_id[node.node_id] = node

            # program order: agents and the scheduler are sequential
            # processes; the fault pipeline is not (its events are
            # caused by the sends/steps that trigger them)
            if track != "faults":
                prev = last_on_track.get(track)
                if prev is not None:
                    link(prev.node_id, node.node_id, "po")
                last_on_track[track] = node

            if name == "oracle.pick_agent":
                pending_decisions.setdefault(
                    args.get("chosen"), []).append(node.node_id)
            elif name == "oracle.pick_choice":
                pending_decisions.setdefault(
                    args.get("agent"), []).append(node.node_id)
            elif name == "fault.send":
                if pending_send is not None:
                    link(pending_send[0].node_id, node.node_id,
                         "fault")
                    pending_send = None
                for _ in range(int(args.get("delivered") or 0)):
                    in_flight.setdefault(channel, deque()).append(
                        node.node_id)
                    graph.deliveries.append(
                        (channel, args.get("message"), node.node_id))
                for _ in range(int(args.get("held") or 0)):
                    held.setdefault(channel, deque()).append(
                        node.node_id)
            elif name in ("fault.release", "fault.flush"):
                queue = held.get(channel)
                if queue:
                    link(queue.popleft(), node.node_id, "fault")
                in_flight.setdefault(channel, deque()).append(
                    node.node_id)
                graph.deliveries.append(
                    (channel, args.get("message"), node.node_id))
            elif rec.category == "runtime":
                waiting = pending_decisions.pop(track, None)
                if waiting:
                    for decision_id in waiting:
                        link(decision_id, node.node_id, "sched")
                if name == "send":
                    pending_send = (node, channel)
                elif name == "recv":
                    queue = in_flight.get(channel)
                    if queue:
                        link(queue.popleft(), node.node_id, "msg")
                elif name == "poll":
                    queue = in_flight.get(channel)
                    if args.get("available") and queue:
                        link(queue[0], node.node_id, "read")

            node.clock = clocks[node.node_id] = \
                1 + max_pred.get(node.node_id, 0)
        commit_send()
        return graph

    # -- queries -----------------------------------------------------------

    def node(self, node_id: str) -> CausalNode:
        return self._by_id[node_id]

    def decisions(self) -> List[CausalNode]:
        """Oracle picks and fault verdicts, in stream order."""
        return [n for n in self.nodes if n.is_decision]

    def predecessors(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for src, dst, _ in self.edges:
            out.setdefault(dst, []).append(src)
        return out

    def successors(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for src, dst, _ in self.edges:
            out.setdefault(src, []).append(dst)
        return out

    def ancestors(self, node_id: str) -> Set[str]:
        """Causal past of a node (excluding the node itself)."""
        preds = self.predecessors()
        seen: Set[str] = set()
        stack = list(preds.get(node_id, ()))
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(preds.get(nid, ()))
        return seen

    def descendants(self, node_id: str) -> Set[str]:
        """Causal future of a node (excluding the node itself)."""
        succs = self.successors()
        seen: Set[str] = set()
        stack = list(succs.get(node_id, ()))
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(succs.get(nid, ()))
        return seen

    def path(self, src: str, dst: str) -> Optional[List[str]]:
        """A shortest causal path ``src → … → dst`` (deterministic:
        BFS in edge order), or ``None`` when dst is not a descendant."""
        if src == dst:
            return [src]
        succs = self.successors()
        parent: Dict[str, str] = {}
        frontier = deque([src])
        while frontier:
            nid = frontier.popleft()
            for nxt in succs.get(nid, ()):
                if nxt in parent or nxt == src:
                    continue
                parent[nxt] = nid
                if nxt == dst:
                    out = [dst]
                    while out[-1] != src:
                        out.append(parent[out[-1]])
                    return list(reversed(out))
                frontier.append(nxt)
        return None

    def critical_path(self) -> List[CausalNode]:
        """The longest causal chain — the dependency sequence bounding
        the run's step count.  Deterministic: Lamport clocks are, and
        ties break toward the earliest node in stream order."""
        if not self.nodes:
            return []
        end = max(self.nodes, key=lambda n: n.clock)
        preds = self.predecessors()
        chain = [end]
        while True:
            tail = chain[-1]
            best = None
            for pid in preds.get(tail.node_id, ()):
                cand = self._by_id[pid]
                if cand.clock == tail.clock - 1 and (
                        best is None or cand.clock > best.clock):
                    best = cand
                    break
            if best is None:
                break
            chain.append(best)
        return list(reversed(chain))

    # -- digest / export ---------------------------------------------------

    def digest(self) -> str:
        """Stable content hash of the graph *shape* — nodes (without
        timestamps) plus sorted edges.  A pure function of the
        recorded schedule: serial and parallel runs of the same cell
        hash identically."""
        return stable_digest({
            "nodes": [n.payload() for n in self.nodes],
            "edges": sorted(self.edges),
        })

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready dict: nodes in stream order, edges, deliveries,
        the digest and the critical path (as node ids)."""
        return {
            "digest": self.digest(),
            "nodes": [n.payload() for n in self.nodes],
            "edges": [list(e) for e in self.edges],
            "deliveries": [
                {"channel": c, "message": m, "producer": p}
                for c, m, p in self.deliveries],
            "critical_path": [n.node_id
                              for n in self.critical_path()],
        }

    def to_dot(self, title: str = "causal") -> str:
        """Graphviz DOT rendering: one cluster per track, decision
        nodes as diamonds, message edges bold."""
        styles = {"po": 'color="#a0aec0"',
                  "sched": 'color="#805ad5" style=dashed',
                  "msg": 'color="#2b6cb0" penwidth=2',
                  "fault": 'color="#c05621" penwidth=2',
                  "read": 'color="#718096" style=dotted'}
        lines = [f'digraph "{title}" {{',
                 "  rankdir=LR;",
                 "  node [fontsize=9 shape=box "
                 'style="rounded,filled" fillcolor="#f7fafc"];']
        tracks: Dict[str, List[CausalNode]] = {}
        for n in self.nodes:
            tracks.setdefault(n.track, []).append(n)
        for i, track in enumerate(sorted(tracks)):
            lines.append(f'  subgraph "cluster_{i}" {{')
            lines.append(f'    label="{track}";')
            for n in tracks[track]:
                shape = (" shape=diamond fillcolor=\"#fefcbf\""
                         if n.is_decision else "")
                text = n.label().replace("\\", "\\\\").replace(
                    '"', '\\"')
                lines.append(
                    f'    "{n.node_id}" [label="{text}"{shape}];')
            lines.append("  }")
        for src, dst, label in self.edges:
            lines.append(f'  "{src}" -> "{dst}" '
                         f"[{styles.get(label, '')}];")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def flow_arrows(self) -> List[Dict[str, Any]]:
        """Message/fault edges as Perfetto flow descriptors, consumed
        by :func:`repro.obs.perfetto.to_chrome_trace`'s ``flows=``."""
        out: List[Dict[str, Any]] = []
        for src, dst, label in self.edges:
            if label not in ("msg", "fault"):
                continue
            a, b = self._by_id[src], self._by_id[dst]
            out.append({
                "name": f"{a.name}→{b.name}",
                "category": "causal",
                "src_track": a.track, "src_ts_ns": a.ts_ns,
                "dst_track": b.track, "dst_ts_ns": b.ts_ns,
            })
        return out


def split_cells(records: Iterable[Any]) -> Dict[str, List[Any]]:
    """Split a merged fleet buffer into per-cell record lists.

    The fleet's :class:`~repro.obs.telemetry.TelemetryMerger` commits
    each cell's records with an ``@plan×seed`` track suffix; this
    groups by that suffix and *strips it*, so a per-cell graph built
    from the result is digest-identical to the graph of the same cell
    run serially.  Records without a suffix (the coordinator's own
    harness/fleet rows) land under the ``""`` key.
    """
    import copy

    cells: Dict[str, List[Any]] = {}
    for rec in records:
        track = getattr(rec, "track", "")
        at = track.rfind("@")
        if at < 0:
            cells.setdefault("", []).append(rec)
            continue
        cell, bare = track[at + 1:], track[:at]
        # records are plain mutable dataclasses; a shallow copy with
        # the track rewritten beats dataclasses.replace (which
        # re-runs __init__) on this hot path
        bare_rec = copy.copy(rec)
        bare_rec.track = bare
        cells.setdefault(cell, []).append(bare_rec)
    return cells


# -- divergence explanation --------------------------------------------------

#: Category rank for root tie-breaks *within* one runtime step: the
#: scheduler's pick enables the step, so it precedes any fault verdict
#: fired inside it.
_DECISION_RANK = {"oracle.pick_agent": 0, "oracle.pick_choice": 1,
                  "fault.send": 2}


def _decision_key(node: CausalNode) -> Tuple[str, ...]:
    """What must match for two runs' decisions to count as 'the
    same choice'."""
    a = node.args
    if node.name == "oracle.pick_agent":
        return ("pick_agent", str(a.get("chosen")),
                str(a.get("ready")))
    if node.name == "oracle.pick_choice":
        return ("pick_choice", str(a.get("agent")),
                str(a.get("chosen")),
                str(a.get("options", a.get("arity"))))
    return ("fault", str(a.get("channel")), str(a.get("action")),
            str(a.get("message")))


def _aligned_decisions(graph: CausalGraph
                       ) -> Dict[str, List[CausalNode]]:
    """Decision streams split for positional alignment: the scheduler's
    picks in one stream, each channel's *effectful* fault verdicts
    (everything but ``pass``) in their own."""
    out: Dict[str, List[CausalNode]] = {"sched": []}
    for node in graph.decisions():
        if node.name == "fault.send":
            if node.args.get("action") == "pass":
                continue
            out.setdefault(
                f"fault:{node.args.get('channel')}", []).append(node)
        else:
            out["sched"].append(node)
    return out


@dataclass
class DivergenceExplanation:
    """Why two recorded runs diverge, causally.

    ``root`` / ``counterpart`` are the first decision pair that
    differs between the runs (one side may be ``None`` when the
    decision simply does not exist in that run — a fault that only
    one plan fires).  ``chain`` is a minimal causal chain in the root
    run: the path root → first divergent delivery when one exists,
    otherwise the root's own causal past.
    """

    identical: bool = False
    index: Optional[int] = None        # first divergent delivery
    delivery_a: Optional[Tuple[str, Any]] = None
    delivery_b: Optional[Tuple[str, Any]] = None
    root_run: str = ""                 # "A" | "B"
    root: Optional[CausalNode] = None
    counterpart: Optional[CausalNode] = None
    chain: List[CausalNode] = field(default_factory=list)
    descendant_deliveries: int = 0
    total_deliveries: int = 0

    def describe(self) -> str:
        from repro.report import render_explanation

        return render_explanation(self)


def _first_divergent_decision(
        graph_a: CausalGraph, graph_b: CausalGraph
        ) -> Tuple[Optional[CausalNode], Optional[CausalNode], str]:
    """First decision pair on which the two runs disagree, compared
    stream-by-stream and ranked by runtime step (earliest wins; the
    scheduler outranks fault verdicts within a step)."""
    streams_a = _aligned_decisions(graph_a)
    streams_b = _aligned_decisions(graph_b)
    best: Optional[Tuple] = None
    for stream in sorted(set(streams_a) | set(streams_b)):
        seq_a = streams_a.get(stream, [])
        seq_b = streams_b.get(stream, [])
        for i in range(max(len(seq_a), len(seq_b))):
            na = seq_a[i] if i < len(seq_a) else None
            nb = seq_b[i] if i < len(seq_b) else None
            if na is not None and nb is not None and \
                    _decision_key(na) == _decision_key(nb):
                continue
            anchor = nb if nb is not None else na
            rank = (anchor.step if anchor.step is not None else 1 << 60,
                    _DECISION_RANK.get(anchor.name, 3),
                    anchor.node_id)
            if best is None or rank < best[0]:
                best = (rank, na, nb)
            break
    if best is None:
        return None, None, ""
    _, na, nb = best
    return na, nb, "B" if nb is not None else "A"


def explain_divergence(graph_a: CausalGraph,
                       graph_b: CausalGraph) -> DivergenceExplanation:
    """Walk two runs' graphs back from their first divergent
    observable event to the earliest decision that explains it."""
    expl = DivergenceExplanation()
    seq_a = [(c, m) for c, m, _ in graph_a.deliveries]
    seq_b = [(c, m) for c, m, _ in graph_b.deliveries]
    index: Optional[int] = None
    for i in range(max(len(seq_a), len(seq_b))):
        da = seq_a[i] if i < len(seq_a) else None
        db = seq_b[i] if i < len(seq_b) else None
        if da != db:
            index = i
            break
    na, nb, root_run = _first_divergent_decision(graph_a, graph_b)
    if index is None and na is None:
        expl.identical = True
        return expl
    expl.index = index
    if index is not None:
        expl.delivery_a = seq_a[index] if index < len(seq_a) else None
        expl.delivery_b = seq_b[index] if index < len(seq_b) else None
    expl.root_run = root_run
    expl.root = nb if root_run == "B" else na
    expl.counterpart = na if root_run == "B" else nb
    if expl.root is None:
        return expl
    graph = graph_b if root_run == "B" else graph_a
    deliveries = graph.deliveries
    expl.total_deliveries = len(deliveries)
    root_id = expl.root.node_id
    future = graph.descendants(root_id) | {root_id}
    expl.descendant_deliveries = sum(
        1 for _, _, producer in deliveries if producer in future)
    # minimal chain: root → the divergent delivery when it descends
    # from the root; otherwise the root's own causal past (e.g. the
    # send a drop verdict consumed)
    chain_ids: Optional[List[str]] = None
    if index is not None and index < len(deliveries):
        chain_ids = graph.path(root_id, deliveries[index][2])
    if chain_ids is None:
        past = graph.ancestors(root_id)
        chain_ids = [n.node_id for n in graph.nodes
                     if n.node_id in past] + [root_id]
        chain_ids = chain_ids[-6:]
    expl.chain = [graph.node(nid) for nid in chain_ids]
    return expl


def explain_records(records_a: Iterable[Any],
                    records_b: Iterable[Any]) -> DivergenceExplanation:
    """Convenience wrapper: build both graphs, then explain."""
    return explain_divergence(CausalGraph.from_records(records_a),
                              CausalGraph.from_records(records_b))
