"""Deterministic solver cost attribution + collapsed-stack export.

The ROADMAP's "compile the hot path" item needs evidence before anyone
touches ``f(v) ⊑ g(u)``: *where does ⊑-evaluation time actually go?*
This module is that evidence, in two halves:

* :class:`SolverProfile` — per-site evaluation counters and wall-time
  for the solver's hot sites (``rhs.apply``, ``limit_report``, the
  ``lhs.apply`` expand/probe scans, cache consults) plus a per-level
  time series (frontier width, expansions, prunes, dead ends).  The
  *counters* are deterministic — they must agree with the evaluation
  counts pinned by ``tests/core/test_solver_memo.py`` (one ``g`` and
  one limit check per node, ``f`` once per candidate) — while the
  nanosecond columns are wall-clock and never enter any digest.
  Filled by :meth:`SmoothSolutionSolver.explore` only when a tracer
  is attached; ``NULL_TRACER`` runs never allocate one.

* :func:`collapsed_stacks` / :func:`write_collapsed` — fold a tracer's
  span records into Brendan-Gregg collapsed-stack lines
  (``track;span;span <self-ns>``), the format speedscope and
  ``flamegraph.pl`` import directly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

#: Hot-site display order for reports (unknown sites sort after).
SITE_ORDER = ("compile.build", "rhs.apply", "lhs.apply.expand",
              "lhs.apply.probe", "lhs.apply.root", "limit_report",
              "cache.get", "cache.put")


class SolverProfile:
    """Per-site counters/timers and a per-level series for one
    exploration.  Mutated on the solver's traced path only."""

    __slots__ = ("sites", "levels", "counters", "_pending")

    def __init__(self) -> None:
        #: site -> [calls, ns]
        self.sites: Dict[str, List[int]] = {}
        self.levels: List[Dict[str, int]] = []
        #: untimed event counters (strategy pushes/pops, dedup hits,
        #: deepening rework) — deterministic, like the site call counts
        self.counters: Dict[str, int] = {}
        self._pending: Dict[str, int] = {}

    def add(self, site: str, ns: int, calls: int = 1) -> None:
        entry = self.sites.get(site)
        if entry is None:
            self.sites[site] = [calls, ns]
        else:
            entry[0] += calls
            entry[1] += ns

    def bump(self, name: str, n: int = 1) -> None:
        """Count an untimed strategy event (heap push/pop, dedup hit,
        deepening rework, …)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def note(self, key: str, n: int = 1) -> None:
        """Accumulate a per-level counter (folded by :meth:`end_level`)."""
        self._pending[key] = self._pending.get(key, 0) + n

    def end_level(self, depth: int, width: int, ns: int) -> None:
        entry = {"depth": depth, "width": width, "ns": ns}
        entry.update(self._pending)
        self._pending = {}
        self.levels.append(entry)

    # -- derived -----------------------------------------------------------

    def calls(self, site: str) -> int:
        entry = self.sites.get(site)
        return entry[0] if entry else 0

    def f_evaluations(self) -> int:
        """Total left-side evaluations across every site."""
        return (self.calls("lhs.apply.expand")
                + self.calls("lhs.apply.probe")
                + self.calls("lhs.apply.root"))

    def g_evaluations(self) -> int:
        """Total right-side evaluations (exactly one per node)."""
        return self.calls("rhs.apply")

    def summary(self) -> Dict[str, Any]:
        total_ns = sum(ns for _, ns in self.sites.values())
        return {
            "sites": {name: {"calls": calls, "ns": ns}
                      for name, (calls, ns) in self.sites.items()},
            "levels": list(self.levels),
            "counters": dict(self.counters),
            "total_ns": total_ns,
            "f_evaluations": self.f_evaluations(),
            "g_evaluations": self.g_evaluations(),
        }

    def to_metrics(self, registry: Any) -> None:
        """Mirror the counters into a metrics registry so the
        Prometheus/JSON expositions carry them for free."""
        for name, (calls, ns) in self.sites.items():
            registry.counter(f"solver.site.{name}.calls").inc(calls)
            registry.counter(f"solver.site.{name}.ns").inc(ns)
        for name, n in self.counters.items():
            registry.counter(f"solver.{name}").inc(n)


def hotspots(profile_summary: Optional[Dict[str, Any]]
             ) -> List[Dict[str, Any]]:
    """Rank a profile summary's sites by time share (descending ns,
    then the canonical site order so zero-time runs stay stable)."""
    if not profile_summary:
        return []
    sites = profile_summary.get("sites") or {}
    total = max(1, profile_summary.get("total_ns")
                or sum(v.get("ns", 0) for v in sites.values()) or 1)
    rank = {name: i for i, name in enumerate(SITE_ORDER)}
    rows = [{
        "site": name,
        "calls": int(v.get("calls", 0)),
        "ns": int(v.get("ns", 0)),
        "share": v.get("ns", 0) / total,
    } for name, v in sites.items()]
    rows.sort(key=lambda r: (-r["ns"],
                             rank.get(r["site"], len(SITE_ORDER)),
                             r["site"]))
    return rows


def hotspots_from_metrics(summary: Optional[Dict[str, Any]]
                          ) -> List[Dict[str, Any]]:
    """Recover the hotspot ranking from an exported metrics summary
    (the ``solver.site.*`` counters), e.g. inside the HTML report."""
    if not summary:
        return []
    sites: Dict[str, Dict[str, int]] = {}
    prefix = "solver.site."
    for name, value in summary.items():
        if not name.startswith(prefix) or not isinstance(
                value, (int, float)):
            continue
        stem, _, col = name[len(prefix):].rpartition(".")
        if col not in ("calls", "ns") or not stem:
            continue
        sites.setdefault(stem, {})[col] = int(value)
    if not sites:
        return []
    return hotspots({"sites": sites,
                     "total_ns": sum(v.get("ns", 0)
                                     for v in sites.values())})


# -- collapsed stacks ---------------------------------------------------------

def collapsed_stacks(records: Iterable[Any]) -> Dict[str, int]:
    """Fold span records into ``track;outer;inner -> self-time (ns)``.

    Span nesting is reconstructed per track from the recorded
    intervals (records arrive in span-*exit* order, so children
    precede their parents in the stream; sorting by start time and
    depth restores the call order).  Self time is a span's duration
    minus its direct children's — clamped at zero against clock
    jitter — so the folded weights sum to the roots' total time.
    """
    per_track: Dict[str, List[Any]] = {}
    for rec in records:
        if getattr(rec, "kind", "") == "span":
            per_track.setdefault(rec.track, []).append(rec)
    folded: Dict[str, int] = {}

    def charge(track: str, names: List[str], self_ns: int) -> None:
        key = ";".join([track] + names)
        folded[key] = folded.get(key, 0) + max(0, self_ns)

    for track in sorted(per_track):
        spans = sorted(per_track[track],
                       key=lambda r: (r.start_ns, r.depth,
                                      -r.dur_ns))
        # stack entries: [name, end_ns, dur_ns, children_ns]
        stack: List[List[Any]] = []

        def pop_one() -> None:
            name, _, dur, children = stack.pop()
            charge(track, [s[0] for s in stack] + [name],
                   dur - children)
            if stack:
                stack[-1][3] += dur

        for span in spans:
            while stack and stack[-1][1] <= span.start_ns:
                pop_one()
            stack.append([span.name, span.start_ns + span.dur_ns,
                          span.dur_ns, 0])
        while stack:
            pop_one()
    return folded


def write_collapsed(records: Iterable[Any], path: str) -> int:
    """Write the collapsed-stack lines (speedscope-importable);
    returns the number of distinct stacks."""
    folded = collapsed_stacks(records)
    with open(path, "w", encoding="utf-8") as fh:
        for key in sorted(folded):
            fh.write(f"{key} {folded[key]}\n")
    return len(folded)
