"""Trace record sinks: ring buffer, JSONL file, console.

A sink receives completed :class:`~repro.obs.tracer.SpanRecord` /
:class:`~repro.obs.tracer.EventRecord` values via :meth:`Sink.record`.
Sinks are deliberately dumb — ordering, export formats and analysis
live elsewhere (see :mod:`repro.obs.perfetto`).
"""

from __future__ import annotations

import json
import sys
from collections import deque
from typing import Any, Iterator, Optional, TextIO


class Sink:
    """Base sink: swallow records, release resources on close."""

    def record(self, rec: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        return None


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` records in memory.

    The default sink for post-mortems: cheap enough to leave on, and
    the tail of the buffer is exactly the lead-up to the failure.
    """

    def __init__(self, capacity: int = 65_536):
        self._buffer: deque = deque(maxlen=capacity)

    def record(self, rec: Any) -> None:
        self._buffer.append(rec)

    @property
    def records(self) -> list:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class JsonlSink(Sink):
    """Append one JSON object per record to a file.

    The stream is valid JSONL at every instant, so a crashed run still
    leaves a readable trace prefix.  ``flush_every`` controls how many
    records may sit in the userspace buffer: with the default of 1
    every record is flushed as written (a killed writer loses nothing
    that was recorded); larger values batch flushes for throughput at
    the cost of up to ``flush_every - 1`` records on a crash.
    """

    def __init__(self, path: str, flush_every: int = 1):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = path
        self.flush_every = flush_every
        self._fh: Optional[TextIO] = open(path, "w", encoding="utf-8")
        self.count = 0
        self._unflushed = 0

    def record(self, rec: Any) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlSink({self.path!r}) is closed")
        self._fh.write(json.dumps(rec.to_dict(), sort_keys=True))
        self._fh.write("\n")
        self.count += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self._fh.flush()
            self._unflushed = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ConsoleSink(Sink):
    """Human-oriented pretty-printer, indented by span depth."""

    def __init__(self, stream: Optional[TextIO] = None,
                 categories: Optional[set] = None):
        self.stream = stream if stream is not None else sys.stdout
        #: when given, only records of these categories are printed
        self.categories = categories

    def record(self, rec: Any) -> None:
        if self.categories is not None and \
                rec.category not in self.categories:
            return
        args = " ".join(f"{k}={v!r}" for k, v in rec.args.items())
        indent = "  " * getattr(rec, "depth", 0)
        if rec.kind == "span":
            ms = rec.dur_ns / 1e6
            line = (f"{rec.start_ns / 1e6:10.3f}ms {indent}"
                    f"[{rec.track}] {rec.name} ({ms:.3f}ms)")
        else:
            line = (f"{rec.ts_ns / 1e6:10.3f}ms {indent}"
                    f"[{rec.track}] · {rec.name}")
        if args:
            line += f"  {args}"
        print(line, file=self.stream)
