"""Replay a recorded :class:`~repro.obs.recorder.Schedule` bit-for-bit.

A :class:`ReplayOracle` feeds a schedule's decisions back into the
runtime; :func:`replay_fault_rng` feeds its recorded RNG draws back
into a fresh fault plan.  Replay is *checked*: every recorded decision
is validated against the live run (is the chosen agent still ready?
does the choice arity match? is this the fault we recorded drawing?),
and the first mismatch raises :class:`ReplayDivergence` with the
precise decision index and reason — the recorded run and the live one
are different computations from that point on.

Two modes:

* **strict** (the default) — divergence and exhaustion raise
  (:class:`ReplayDivergence` / :class:`ScheduleExhausted`).  This is
  the reproduction mode: "replay equals original" is then the one-line
  assertion ``replayed.digest() == original.digest()``.
* **lenient** (``fallback=`` an oracle) — on the first inapplicable or
  exhausted decision the replayer notes the divergence and delegates
  everything thereafter to the fallback oracle (and, for RNG draws,
  to the fault's own seeded RNG).  This is the shrinking mode: a
  delta-debugged sub-schedule steers the run as far as it can and the
  fallback finishes it deterministically.

Like :mod:`repro.obs.recorder`, this module imports nothing from
:mod:`repro.kahn`/:mod:`repro.faults` at module level; the convenience
runners import lazily inside the functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.obs.recorder import (
    Schedule,
    ScheduleExhausted,
    iter_fault_rngs,
)


class ReplayDivergence(RuntimeError):
    """A recorded decision is no longer applicable to the live run.

    Attributes:
        kind: which stream diverged — ``"agent"``, ``"choice"``,
            ``"rng"`` or ``"path"``.
        index: the 0-based decision index within that stream.
        reason: human-readable explanation.
        recorded: the schedule entry that failed to apply.
        actual: the live state it was checked against.
    """

    def __init__(self, kind: str, index: int, reason: str,
                 recorded: Any = None, actual: Any = None):
        self.kind = kind
        self.index = index
        self.reason = reason
        self.recorded = recorded
        self.actual = actual
        super().__init__(
            f"replay diverged at {kind} decision {index}: {reason} "
            f"(recorded {recorded!r}, live {actual!r})"
        )


class ReplayOracle:
    """Re-run the oracle decisions of a :class:`Schedule`.

    This generalizes :class:`repro.kahn.scheduler.ScriptedOracle`:
    agent picks are replayed *by name* (robust to ready-list index
    shifts) and every decision is checked against its recorded
    context.  ``fallback`` switches to lenient mode (see module
    docstring); the first divergence is kept in ``self.divergence``
    either way.
    """

    def __init__(self, schedule: Schedule,
                 fallback: Optional[Any] = None):
        self.schedule = schedule
        self.fallback = fallback
        self.divergence: Optional[ReplayDivergence] = None
        self._ai = 0
        self._ci = 0

    @property
    def diverged(self) -> bool:
        return self.divergence is not None

    def _fail(self, error: ReplayDivergence) -> None:
        if self.divergence is None:
            self.divergence = error
        if self.fallback is None:
            raise error

    def pick_agent(self, ready: list) -> int:
        if self.diverged:
            return self.fallback.pick_agent(ready)
        names = [a.name for a in ready]
        if self._ai >= len(self.schedule.agent_picks):
            if self.fallback is None:
                raise ScheduleExhausted(
                    "agent", self._ai,
                    detail=f"live ready set {names}")
            self._fail(ReplayDivergence(
                "agent", self._ai, "schedule exhausted",
                recorded=None, actual=names))
            return self.fallback.pick_agent(ready)
        chosen, recorded_ready = self.schedule.agent_picks[self._ai]
        if chosen not in names:
            self._fail(ReplayDivergence(
                "agent", self._ai,
                f"recorded agent {chosen!r} is not ready",
                recorded=[chosen, recorded_ready], actual=names))
            return self.fallback.pick_agent(ready)
        self._ai += 1
        return names.index(chosen)

    def pick_choice(self, agent: Any, arity: int) -> int:
        if self.diverged:
            return self.fallback.pick_choice(agent, arity)
        agent_name = getattr(agent, "name", "?")
        if self._ci >= len(self.schedule.choice_picks):
            if self.fallback is None:
                raise ScheduleExhausted(
                    "choice", self._ci,
                    detail=f"live choice by {agent_name!r} "
                           f"(arity {arity})")
            self._fail(ReplayDivergence(
                "choice", self._ci, "schedule exhausted",
                recorded=None, actual=[agent_name, arity]))
            return self.fallback.pick_choice(agent, arity)
        value, recorded_arity, recorded_agent = \
            self.schedule.choice_picks[self._ci]
        if recorded_arity != arity or recorded_agent != agent_name:
            self._fail(ReplayDivergence(
                "choice", self._ci,
                "recorded choice context does not match",
                recorded=[value, recorded_arity, recorded_agent],
                actual=[agent_name, arity]))
            return self.fallback.pick_choice(agent, arity)
        self._ci += 1
        return value


class _RngCursor:
    """Shared position over a schedule's global RNG draw stream."""

    __slots__ = ("draws", "pos", "diverged")

    def __init__(self, draws: List[list]):
        self.draws = draws
        self.pos = 0
        self.diverged = False


class ReplayRandom:
    """Replay one fault model's recorded draws from the shared cursor.

    Draw order is global across the plan: the next recorded draw must
    belong to *this* fault and be the same kind of draw, otherwise the
    fault interleaving changed — a divergence.  In lenient mode the
    fault falls back to its own (still pristine, identically seeded)
    base RNG once the stream diverges or runs out.
    """

    _MISS = object()

    def __init__(self, cursor: _RngCursor, label: str, base: Any,
                 strict: bool = True):
        self._cursor = cursor
        self._label = label
        self._base = base
        self._strict = strict

    def _next(self, method: str) -> Any:
        cursor = self._cursor
        if cursor.diverged:
            return self._MISS
        if cursor.pos >= len(cursor.draws):
            if self._strict:
                raise ScheduleExhausted(
                    "rng", cursor.pos,
                    detail=f"live draw {method} by {self._label}")
            cursor.diverged = True
            return self._MISS
        label, recorded_method, value = cursor.draws[cursor.pos]
        if label != self._label or recorded_method != method:
            error = ReplayDivergence(
                "rng", cursor.pos,
                "recorded draw does not match the live one",
                recorded=[label, recorded_method],
                actual=[self._label, method])
            if self._strict:
                raise error
            cursor.diverged = True
            return self._MISS
        cursor.pos += 1
        return value

    def random(self) -> float:
        value = self._next("random")
        return self._base.random() if value is self._MISS else value

    def randint(self, a: int, b: int) -> int:
        value = self._next(f"randint({a},{b})")
        return self._base.randint(a, b) if value is self._MISS \
            else value

    def randrange(self, *args: int) -> int:
        method = "randrange(" + ",".join(map(str, args)) + ")"
        value = self._next(method)
        return self._base.randrange(*args) if value is self._MISS \
            else value

    def choice(self, seq: Any) -> Any:
        index = self._next(f"choice[{len(seq)}]")
        if index is self._MISS:
            return seq[self._base.randrange(len(seq))]
        return seq[index]

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)


def replay_fault_rng(plan: Any, schedule: Schedule,
                     strict: bool = True) -> _RngCursor:
    """Swap a fresh plan's fault RNGs for replaying proxies.

    Returns the shared cursor (its ``pos``/``diverged`` fields are the
    post-run diagnosis of how much of the draw stream was consumed).
    """
    cursor = _RngCursor(schedule.rng_draws)
    for label, fault in iter_fault_rngs(plan):
        fault.rng = ReplayRandom(cursor, label, fault.rng,
                                 strict=strict)
    return cursor


@dataclass
class ReplayReport:
    """Outcome of a checked replay: the result plus verdict fields."""

    result: Any                      # RunResult / SupervisedRunResult
    digest: str
    expected_digest: Optional[str]
    divergence: Optional[ReplayDivergence] = None

    @property
    def matches(self) -> bool:
        """True iff the replay reproduced the recorded run exactly."""
        return (self.divergence is None
                and (self.expected_digest is None
                     or self.digest == self.expected_digest))


def replay_network(schedule: Schedule, agents: dict, channels: Any,
                   max_steps: Optional[int] = None,
                   fault_plan: Any = None,
                   tracer: Any = None,
                   fallback: Optional[Any] = None) -> ReplayReport:
    """Re-execute a run recorded by ``run_network(..., record=True)``.

    ``agents`` must be *fresh* bodies of the same network (generators
    are single-use) and ``fault_plan`` a fresh plan built exactly as
    the recorded one (same factory, same seeds) — its RNG draws are
    then replayed from the schedule, so even a drifted factory seed
    is caught as a divergence.  Strict unless ``fallback`` is given.
    """
    from repro.kahn.scheduler import run_network

    if fault_plan is not None:
        replay_fault_rng(fault_plan, schedule,
                         strict=fallback is None)
    oracle = ReplayOracle(schedule, fallback=fallback)
    if max_steps is None:
        max_steps = int(schedule.meta.get("max_steps", 10_000))
    result = run_network(agents, channels, oracle,
                         max_steps=max_steps,
                         fault_plan=fault_plan, tracer=tracer)
    return ReplayReport(
        result=result,
        digest=result.digest(),
        expected_digest=schedule.meta.get("digest"),
        divergence=oracle.divergence,
    )


def replay_supervised(schedule: Schedule, factories: dict,
                      channels: Any,
                      max_steps: Optional[int] = None,
                      fault_plan: Any = None,
                      policy: Any = "default",
                      watchdog_limit: Optional[int] = "from-schedule",
                      tracer: Any = None,
                      fallback: Optional[Any] = None) -> ReplayReport:
    """Re-execute a run recorded by ``run_supervised(..., record=True)``.

    ``policy`` defaults to the stock :class:`RestartPolicy` (pass
    ``None`` to disable restarts, matching whatever the recording
    used); ``watchdog_limit`` defaults to the recorded one.
    """
    from repro.faults.supervision import RestartPolicy, run_supervised

    if policy == "default":
        policy = RestartPolicy()
    if watchdog_limit == "from-schedule":
        watchdog_limit = schedule.meta.get("watchdog_limit", 500)
    if fault_plan is not None:
        replay_fault_rng(fault_plan, schedule,
                         strict=fallback is None)
    oracle = ReplayOracle(schedule, fallback=fallback)
    if max_steps is None:
        max_steps = int(schedule.meta.get("max_steps", 10_000))
    result = run_supervised(factories, channels, oracle,
                            max_steps=max_steps,
                            fault_plan=fault_plan, policy=policy,
                            watchdog_limit=watchdog_limit,
                            tracer=tracer)
    return ReplayReport(
        result=result,
        digest=result.digest(),
        expected_digest=schedule.meta.get("digest"),
        divergence=oracle.divergence,
    )
