"""Structured tracer: nested spans + typed instant events.

A :class:`Tracer` timestamps everything with a monotonic
nanosecond clock (``time.perf_counter_ns`` relative to the tracer's
construction) and fans completed records out to its sinks.  Records
come in two kinds:

* :class:`SpanRecord` — a named interval with a duration, produced by
  the ``with tracer.span(...)`` context manager.  Spans nest; the
  nesting depth per *track* is recorded so sinks can indent and the
  Perfetto exporter can lay spans out on per-track timelines.
* :class:`EventRecord` — a named instant (a scheduler pick, a pruned
  candidate, a fault firing).

A *track* is a logical timeline — one per agent, one for the solver,
one for the fault layer — and becomes a Perfetto thread row.

When tracing is off the instrumented code paths use
:data:`NULL_TRACER`: its ``enabled`` flag is ``False`` (hot loops
check this one attribute and skip instrumentation entirely) and its
``span()``/``event()`` are allocation-free no-ops, so the layer costs
one attribute read when disabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional

from repro.obs.sinks import Sink

_JSON_SCALARS = (str, int, float, bool, type(None))


def _jsonable(value: Any) -> Any:
    """Coerce an arg value to something every sink can serialize."""
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass
class SpanRecord:
    """A completed named interval on one track."""

    name: str
    category: str
    track: str
    start_ns: int
    dur_ns: int
    depth: int
    args: Dict[str, Any] = field(default_factory=dict)
    kind: str = "span"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "span",
            "name": self.name,
            "cat": self.category,
            "track": self.track,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "depth": self.depth,
            "args": {k: _jsonable(v) for k, v in self.args.items()},
        }


@dataclass
class EventRecord:
    """A named instant on one track."""

    name: str
    category: str
    track: str
    ts_ns: int
    args: Dict[str, Any] = field(default_factory=dict)
    kind: str = "event"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "event",
            "name": self.name,
            "cat": self.category,
            "track": self.track,
            "ts_ns": self.ts_ns,
            "args": {k: _jsonable(v) for k, v in self.args.items()},
        }


class _Span:
    """Context manager for one span; emitted to sinks on exit."""

    __slots__ = ("_tracer", "name", "category", "track", "args",
                 "_start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 track: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.track = track
        self.args = args
        self._start_ns = 0
        self._depth = 0

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._push(self.track)
        self._start_ns = self._tracer.now_ns()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end_ns = self._tracer.now_ns()
        self._tracer._pop(self.track)
        self._tracer._emit(SpanRecord(
            name=self.name, category=self.category, track=self.track,
            start_ns=self._start_ns, dur_ns=end_ns - self._start_ns,
            depth=self._depth, args=self.args,
        ))

    def annotate(self, **args: Any) -> None:
        """Attach results discovered while the span is open."""
        self.args.update(args)


class Tracer:
    """Fan spans and events out to sinks with monotonic timestamps."""

    enabled: bool = True

    def __init__(self, sinks: Iterable[Sink] = (),
                 clock: Callable[[], int] = time.perf_counter_ns):
        self.sinks: list[Sink] = list(sinks)
        self._clock = clock
        self._epoch_ns = clock()
        self._depths: Dict[str, int] = {}

    # -- time ------------------------------------------------------------

    def now_ns(self) -> int:
        """Nanoseconds since this tracer was created (monotonic)."""
        return self._clock() - self._epoch_ns

    # -- recording --------------------------------------------------------

    def span(self, name: str, category: str = "",
             track: str = "main", **args: Any) -> _Span:
        return _Span(self, name, category, track, args)

    def event(self, name: str, category: str = "",
              track: str = "main", **args: Any) -> None:
        self._emit(EventRecord(
            name=name, category=category, track=track,
            ts_ns=self.now_ns(), args=args,
        ))

    def ingest(self, records: Iterable[Any]) -> None:
        """Forward already-built records to this tracer's sinks.

        The merge half of per-worker tracing: a parallel grid's worker
        cells each record into their own buffer, and the parent folds
        the (rebased — see
        :func:`repro.obs.perfetto.rebase_records`) records into its
        own sinks here.
        """
        for record in records:
            self._emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    # -- internals --------------------------------------------------------

    def _push(self, track: str) -> int:
        depth = self._depths.get(track, 0)
        self._depths[track] = depth + 1
        return depth

    def _pop(self, track: str) -> None:
        self._depths[track] = max(0, self._depths.get(track, 1) - 1)

    def _emit(self, record: Any) -> None:
        for sink in self.sinks:
            sink.record(record)


class _NullSpan:
    """Shared no-op span; one instance serves every disabled site."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def annotate(self, **args: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: every operation is an allocation-free no-op.

    Instrumented hot loops gate on ``tracer.enabled`` and never pay
    more than that one attribute read.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(())

    def span(self, name: str, category: str = "",
             track: str = "main", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, category: str = "",
              track: str = "main", **args: Any) -> None:
        return None

    def _emit(self, record: Any) -> None:  # pragma: no cover - defensive
        return None


#: The process-wide disabled tracer (safe to share: it holds no state).
NULL_TRACER = NullTracer()


def coalesce(tracer: Optional[Tracer]) -> Tracer:
    """``tracer or NULL_TRACER`` with the intent spelled out."""
    return tracer if tracer is not None else NULL_TRACER
