"""Observability: structured tracing, metrics, and timeline export.

The §3.3 tree search and the operational Kahn runtime are
nondeterministic machines; a verdict alone (``violation``,
``livelock``, ``truncated``) does not say *which* scheduler choices
were taken, which candidates were pruned, or which faults fired.  This
package makes the execution structure itself observable:

* :mod:`~repro.obs.tracer` — nested spans and typed instant events
  with monotonic timestamps; :data:`NULL_TRACER` compiles the whole
  layer to a no-op when tracing is off;
* :mod:`~repro.obs.metrics` — counters, gauges and histograms in a
  :class:`MetricsRegistry`, summarized into plain dicts that ride on
  ``SolverResult`` / ``RunResult`` / conformance cells;
* :mod:`~repro.obs.sinks` — pluggable record sinks: in-memory ring
  buffer, JSONL file, console pretty-printer;
* :mod:`~repro.obs.perfetto` — a Chrome-trace-event exporter whose
  output loads directly in Perfetto (https://ui.perfetto.dev) as a
  per-agent timeline of the run;
* :mod:`~repro.obs.recorder` — the flight recorder: a
  :class:`Schedule` capturing every oracle decision and fault RNG
  draw of a run, JSON-serializable and content-addressed;
* :mod:`~repro.obs.replay` — bit-for-bit re-execution of a recorded
  :class:`Schedule` with precise divergence detection;
* :mod:`~repro.obs.diff` — first-divergence diffing of two runs or
  two schedules, and delta-debugging shrinking of a failing schedule;
* :mod:`~repro.obs.telemetry` — live fleet telemetry: streaming
  trace-batch shipping (:class:`StreamingSink`), idempotent
  coordinator-side ingest (:class:`TelemetryMerger`) and the
  :class:`FleetStatus` scoreboard behind ``python -m repro top``;
* :mod:`~repro.obs.exposition` — Prometheus-text and JSON exporters
  for metrics summaries;
* :mod:`~repro.obs.htmlreport` — the self-contained static HTML
  flight-deck report written per grid run;
* :mod:`~repro.obs.bench` — the benchmark trajectory
  (``BENCH_history.jsonl``) appender and regression gate;
* :mod:`~repro.obs.causality` — happens-before DAG reconstruction
  from the event stream (Lamport clocks, fault-pipeline provenance,
  deterministic digest, DOT/JSON/flow-arrow export) and the
  divergence explainer behind ``diff --explain`` / ``why``;
* :mod:`~repro.obs.profile` — solver hot-path cost attribution
  (:class:`SolverProfile`) and collapsed-stack (speedscope) export.

Instrumented layers: :mod:`repro.core.solver` (category ``solver``),
:mod:`repro.kahn.runtime` + :mod:`repro.kahn.scheduler` (categories
``runtime``/``scheduler``), and :mod:`repro.faults` (categories
``fault``/``supervision``/``harness``).
"""

from repro.obs.causality import (
    CausalGraph,
    CausalNode,
    DivergenceExplanation,
    explain_divergence,
    explain_records,
    split_cells,
)
from repro.obs.diff import (
    RunDiff,
    ScheduleDiff,
    StreamDivergence,
    diff_runs,
    diff_schedules,
    shrink_schedule,
)
from repro.obs.exposition import (
    to_json_exposition,
    to_prometheus_text,
    write_json_exposition,
    write_prometheus_text,
)
from repro.obs.metrics import (
    QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
    snapshot_delta,
)
from repro.obs.telemetry import (
    FleetStatus,
    StreamingSink,
    TelemetryMerger,
)
from repro.obs.recorder import (
    RecordingOracle,
    RecordingRandom,
    Schedule,
    ScheduleExhausted,
    iter_fault_rngs,
    record_fault_rng,
    stable_digest,
)
from repro.obs.replay import (
    ReplayDivergence,
    ReplayOracle,
    ReplayRandom,
    ReplayReport,
    replay_fault_rng,
    replay_network,
    replay_supervised,
)
from repro.obs.sinks import (
    ConsoleSink,
    JsonlSink,
    RingBufferSink,
    Sink,
)
from repro.obs.tracer import (
    NULL_TRACER,
    EventRecord,
    NullTracer,
    SpanRecord,
    Tracer,
)
from repro.obs.perfetto import to_chrome_trace, write_chrome_trace
from repro.obs.profile import (
    SolverProfile,
    collapsed_stacks,
    hotspots,
    hotspots_from_metrics,
    write_collapsed,
)

__all__ = [
    "CausalGraph",
    "CausalNode",
    "ConsoleSink",
    "Counter",
    "DivergenceExplanation",
    "EventRecord",
    "FleetStatus",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QUANTILES",
    "RecordingOracle",
    "RecordingRandom",
    "ReplayDivergence",
    "ReplayOracle",
    "ReplayRandom",
    "ReplayReport",
    "RingBufferSink",
    "RunDiff",
    "Schedule",
    "ScheduleDiff",
    "ScheduleExhausted",
    "Sink",
    "SolverProfile",
    "SpanRecord",
    "StreamDivergence",
    "StreamingSink",
    "TelemetryMerger",
    "Tracer",
    "collapsed_stacks",
    "diff_runs",
    "diff_schedules",
    "explain_divergence",
    "explain_records",
    "hotspots",
    "hotspots_from_metrics",
    "iter_fault_rngs",
    "merge_registries",
    "record_fault_rng",
    "replay_fault_rng",
    "replay_network",
    "replay_supervised",
    "shrink_schedule",
    "snapshot_delta",
    "split_cells",
    "stable_digest",
    "to_chrome_trace",
    "to_json_exposition",
    "to_prometheus_text",
    "write_chrome_trace",
    "write_json_exposition",
    "write_prometheus_text",
]
