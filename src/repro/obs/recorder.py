"""Flight recorder: capture a run's nondeterminism as a ``Schedule``.

A network computation is determined by its oracle (which ready agent
steps, which branch each choice takes) plus the fault models' RNG
draws.  This module captures exactly that decision stream — nothing
else — into a compact, JSON-serializable :class:`Schedule`, so any run
(a conformance verdict, a watchdog firing, a flaky grid cell) ships
its own reproduction recipe.  The operational reading of the paper's
§4.6 oracles: a schedule *is* the oracle of one computation, reified,
and — via the §3.3 correspondence — a witness path in the tree of
smooth approximations.

The counterpart modules are :mod:`repro.obs.replay` (re-execute a
schedule bit-for-bit, detect divergence) and :mod:`repro.obs.diff`
(align two runs, delta-debug a failing schedule down to a minimal
one).

This module deliberately imports nothing from :mod:`repro.kahn` or
:mod:`repro.faults` — it is loaded from ``repro.obs.__init__``, which
the runtime itself imports, so everything here duck-types against
agents, oracles and fault plans.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Format version stamped into serialized schedules.
SCHEDULE_VERSION = 1


def stable_digest(payload: Any) -> str:
    """A content hash stable across processes and Python hash seeds.

    ``payload`` must be JSON-serializable (the callers build it from
    channel names, ``repr``'d messages and sorted field lists).  Two
    runs with equal digests made the same externally visible
    computation.
    """
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ScheduleExhausted(LookupError):
    """A scripted or replayed decision stream ran out.

    Carries the decision ``kind`` (``"agent"``, ``"choice"``,
    ``"rng"`` or ``"path"``) and the ``index`` of the first missing
    decision, so replay divergence reporting can say precisely where
    the recorded run ended relative to the live one.
    """

    def __init__(self, kind: str, index: int, detail: str = ""):
        self.kind = kind
        self.index = index
        self.detail = detail
        message = (f"schedule exhausted: no {kind} decision at "
                   f"index {index}")
        if detail:
            message += f" ({detail})"
        super().__init__(message)


@dataclass
class Schedule:
    """The recorded nondeterminism of one run.

    Four decision streams, each a list of compact JSON-ready entries:

    * ``agent_picks`` — ``[chosen_name, [ready_names...]]`` per
      scheduler step; the ready set is kept so replay can detect that
      a recorded decision is no longer applicable.
    * ``choice_picks`` — ``[chosen_index, arity, agent_name]`` per
      ``Choose``/``RecvAny`` resolution.
    * ``rng_draws`` — ``[fault_label, method, value]`` per fault-model
      RNG draw, in global draw order.
    * ``path`` — ``[channel_name, message_repr]`` per event of a
      solver witness path (§3.3: a schedule of the search tree).

    ``meta`` carries reproduction context (scenario/plan names, seeds,
    step budgets, the original run's outcome and digest).
    """

    agent_picks: List[list] = field(default_factory=list)
    choice_picks: List[list] = field(default_factory=list)
    rng_draws: List[list] = field(default_factory=list)
    path: List[list] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    # -- size ----------------------------------------------------------------

    def __len__(self) -> int:
        return (len(self.agent_picks) + len(self.choice_picks)
                + len(self.rng_draws) + len(self.path))

    def counts(self) -> Dict[str, int]:
        return {
            "agent_picks": len(self.agent_picks),
            "choice_picks": len(self.choice_picks),
            "rng_draws": len(self.rng_draws),
            "path": len(self.path),
        }

    # -- copying -------------------------------------------------------------

    def copy(self, **overrides: Any) -> "Schedule":
        """A deep-enough copy; ``overrides`` replace whole streams
        (used by :func:`repro.obs.diff.shrink_schedule`)."""
        out = Schedule(
            agent_picks=[list(p) for p in self.agent_picks],
            choice_picks=[list(p) for p in self.choice_picks],
            rng_draws=[list(p) for p in self.rng_draws],
            path=[list(p) for p in self.path],
            meta=dict(self.meta),
        )
        for name, value in overrides.items():
            if not hasattr(out, name):
                raise AttributeError(f"Schedule has no field {name!r}")
            setattr(out, name, value)
        return out

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SCHEDULE_VERSION,
            "meta": dict(self.meta),
            "agent_picks": [list(p) for p in self.agent_picks],
            "choice_picks": [list(p) for p in self.choice_picks],
            "rng_draws": [list(p) for p in self.rng_draws],
            "path": [list(p) for p in self.path],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Schedule":
        """Strict loader: requires the ``version`` stamp.

        ``to_dict``/``save`` always write ``version``, so a dict
        without it is a truncated or hand-edited file — refuse it with
        a ``ValueError`` naming the keys that *are* present instead of
        defaulting to the current version and diverging confusingly
        mid-replay.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"schedule is not an object: {type(data).__name__}")
        if "version" not in data:
            raise ValueError(
                "schedule missing required 'version' field "
                f"(found keys: {sorted(data)}); the file may be "
                "truncated or hand-edited")
        version = data["version"]
        if version != SCHEDULE_VERSION:
            raise ValueError(
                f"unsupported schedule version {version!r} "
                f"(this build reads version {SCHEDULE_VERSION})"
            )
        return cls(
            agent_picks=[list(p) for p in data.get("agent_picks", [])],
            choice_picks=[list(p) for p in data.get("choice_picks", [])],
            rng_draws=[list(p) for p in data.get("rng_draws", [])],
            path=[list(p) for p in data.get("path", [])],
            meta=dict(data.get("meta", {})),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=2))
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Schedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def digest(self) -> str:
        """Content hash of the decision streams (meta excluded, so a
        re-recorded identical run hashes identically)."""
        return stable_digest({
            "agent_picks": self.agent_picks,
            "choice_picks": self.choice_picks,
            "rng_draws": self.rng_draws,
            "path": self.path,
        })

    def __repr__(self) -> str:
        c = self.counts()
        parts = [f"{k}={v}" for k, v in c.items() if v]
        return f"Schedule({', '.join(parts) or 'empty'})"


class RecordingOracle:
    """Wrap any oracle; forward its decisions, logging each one.

    Decisions are normalized (``% len(ready)`` / ``% arity``, matching
    what the runtime does with the returned index) before recording,
    so the schedule stores what actually happened.
    """

    def __init__(self, base: Any,
                 schedule: Optional[Schedule] = None):
        self.base = base
        self.schedule = schedule if schedule is not None else Schedule()
        self.schedule.meta.setdefault("oracle", type(base).__name__)
        seed = getattr(base, "seed", None)
        if seed is not None:
            self.schedule.meta.setdefault("oracle_seed", seed)

    def pick_agent(self, ready: list) -> int:
        index = self.base.pick_agent(ready) % len(ready)
        self.schedule.agent_picks.append(
            [ready[index].name, [a.name for a in ready]]
        )
        return index

    def pick_choice(self, agent: Any, arity: int) -> int:
        value = self.base.pick_choice(agent, arity) % arity
        self.schedule.choice_picks.append(
            [value, arity, getattr(agent, "name", "?")]
        )
        return value


class RecordingRandom:
    """Proxy a ``random.Random``, logging every draw a fault makes.

    Only the methods the fault models use (``random``, ``randint``,
    ``randrange``, ``choice``) are recorded; ``choice`` records the
    *index* drawn (via ``randrange``, which consumes the same
    underlying state), so recorded values are always JSON scalars.
    Anything else falls through to the base RNG unrecorded.
    """

    def __init__(self, base: Any, label: str, draws: List[list]):
        self._base = base
        self._label = label
        self._draws = draws

    def _log(self, method: str, value: Any) -> Any:
        self._draws.append([self._label, method, value])
        return value

    def random(self) -> float:
        return self._log("random", self._base.random())

    def randint(self, a: int, b: int) -> int:
        return self._log(f"randint({a},{b})", self._base.randint(a, b))

    def randrange(self, *args: int) -> int:
        method = "randrange(" + ",".join(map(str, args)) + ")"
        return self._log(method, self._base.randrange(*args))

    def choice(self, seq: Any) -> Any:
        index = self._base.randrange(len(seq))
        self._log(f"choice[{len(seq)}]", index)
        return seq[index]

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)


def iter_fault_rngs(plan: Any) -> Iterator[Tuple[str, Any]]:
    """Deterministically enumerate a plan's RNG-bearing fault models.

    Yields ``(label, fault)`` pairs sorted by channel name, descending
    into pipelines by stage index.  The label keys the fault's draws
    in ``Schedule.rng_draws`` so replay can bind each recorded draw
    back to the same model.  ``plan`` is duck-typed
    (:class:`repro.faults.plan.FaultPlan`).
    """
    for channel, fault in sorted(plan.channel_faults.items()):
        yield from _labeled_rngs(channel.name, fault)


def _labeled_rngs(prefix: str, fault: Any) -> Iterator[Tuple[str, Any]]:
    stages = getattr(fault, "faults", None)
    if stages is not None:  # a FaultPipeline: label each stage
        for i, stage in enumerate(stages):
            yield from _labeled_rngs(f"{prefix}/{i}", stage)
        return
    if hasattr(fault, "rng"):
        yield f"{prefix}:{type(fault).__name__}", fault


def record_fault_rng(plan: Any, schedule: Schedule) -> None:
    """Swap every fault model's RNG for a recording proxy.

    After this, each draw the plan makes lands in
    ``schedule.rng_draws`` in global draw order.  The plan must be a
    fresh instance (plans are stateful); call before the run starts.
    """
    for label, fault in iter_fault_rngs(plan):
        fault.rng = RecordingRandom(fault.rng, label,
                                    schedule.rng_draws)
