"""Metrics exposition: Prometheus text format and JSON.

Turns a :meth:`~repro.obs.metrics.MetricsRegistry.summary` (the flat
dict that rides on results and conformance cells) into the two wire
formats a flight deck needs:

* :func:`to_prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``_bucket{le="..."}`` rows derived
  from the power-of-two histograms, ``_sum``/``_count``, and
  ``quantile``-labelled estimate rows).  Every number is copied, not
  recomputed, so the exposition always sums consistently with the
  registry it was taken from: the ``+Inf`` bucket equals ``_count``
  equals the summary's ``count``.
* :func:`to_json_exposition` — the same content as one JSON object,
  for dashboards that would rather not parse the text format.

Both are pure functions of the summary dict — they can run on a live
registry mid-grid or on a summary that rode in from a worker.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional

from repro.obs.metrics import QUANTILES

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING = re.compile(r"^[^a-zA-Z_:]")


def prometheus_name(name: str, namespace: str = "repro") -> str:
    """Sanitize an instrument name into a legal Prometheus metric
    name: dots and other punctuation collapse to underscores, and the
    ``namespace`` prefix keeps the flat names collision-free."""
    flat = _NAME_OK.sub("_", name)
    if _LEADING.match(flat):
        flat = "_" + flat
    return f"{namespace}_{flat}" if namespace else flat


def _is_gauge(value: Dict[str, Any]) -> bool:
    return "last" in value and "buckets" not in value


def _is_histogram(value: Dict[str, Any]) -> bool:
    return "buckets" in value


def _fmt(v: Any) -> str:
    if v is None:
        return "NaN"
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, float) and v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v) if isinstance(v, float) else str(v)


def _bucket_upper(k: int) -> float:
    return 1.0 if k <= 0 else float(2 ** k)


def to_prometheus_text(summary: Dict[str, Any],
                       namespace: str = "repro",
                       extra_labels: Optional[Dict[str, str]] = None
                       ) -> str:
    """Render a metrics summary in the Prometheus text format.

    Counters become ``counter`` samples, gauges become ``gauge``
    samples (plus ``_min``/``_max`` companions when observed), and
    histograms become classic ``histogram`` families — cumulative
    ``_bucket`` rows over the power-of-two bounds, ``_sum`` and
    ``_count`` — followed by ``quantile``-labelled gauge rows carrying
    the p50/p90/p99 bucket-bound estimates.  Families are emitted in
    sorted name order; output ends with a newline, as scrapers expect.
    """
    labels = ""
    if extra_labels:
        inner = ",".join(f'{k}="{v}"'
                         for k, v in sorted(extra_labels.items()))
        labels = "{" + inner + "}"

    def labelled(extra: str) -> str:
        if not extra:
            return labels
        if not labels:
            return "{" + extra + "}"
        return labels[:-1] + "," + extra + "}"

    lines: List[str] = []
    for name in sorted(summary):
        value = summary[name]
        pname = prometheus_name(name, namespace)
        if isinstance(value, dict) and _is_histogram(value):
            lines.append(f"# TYPE {pname} histogram")
            buckets = {int(k): int(v)
                       for k, v in (value.get("buckets") or {}).items()}
            cumulative = 0
            for k in sorted(buckets):
                cumulative += buckets[k]
                le = labelled('le="%s"' % _fmt(_bucket_upper(k)))
                lines.append(f"{pname}_bucket{le} {cumulative}")
            inf = labelled('le="+Inf"')
            lines.append(f"{pname}_bucket{inf} "
                         f"{_fmt(value.get('count', 0))}")
            lines.append(f"{pname}_sum{labels} "
                         f"{_fmt(value.get('total', 0.0))}")
            lines.append(f"{pname}_count{labels} "
                         f"{_fmt(value.get('count', 0))}")
            for qname, q in QUANTILES:
                est = value.get(qname)
                if est is None:
                    continue
                qlab = labelled('quantile="%s"' % q)
                lines.append(f"{pname}{qlab} {_fmt(est)}")
        elif isinstance(value, dict) and _is_gauge(value):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname}{labels} {_fmt(value.get('last'))}")
            for bound in ("min", "max"):
                v = value.get(bound)
                if v is not None:
                    lines.append(f"{pname}_{bound}{labels} {_fmt(v)}")
        else:
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname}{labels} {_fmt(value)}")
    return "\n".join(lines) + "\n"


def to_json_exposition(summary: Dict[str, Any],
                       meta: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
    """The exposition as one JSON object: instruments classified by
    kind, every number copied verbatim from the summary."""
    out: Dict[str, Any] = {"counters": {}, "gauges": {},
                           "histograms": {}}
    for name in sorted(summary):
        value = summary[name]
        if isinstance(value, dict) and _is_histogram(value):
            out["histograms"][name] = dict(value)
        elif isinstance(value, dict) and _is_gauge(value):
            out["gauges"][name] = dict(value)
        else:
            out["counters"][name] = value
    if meta:
        out["meta"] = dict(meta)
    return out


def write_prometheus_text(summary: Dict[str, Any], path: str,
                          namespace: str = "repro",
                          extra_labels: Optional[Dict[str, str]] = None
                          ) -> str:
    """Write :func:`to_prometheus_text` to ``path``; returns the text."""
    text = to_prometheus_text(summary, namespace=namespace,
                              extra_labels=extra_labels)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text


def write_json_exposition(summary: Dict[str, Any], path: str,
                          meta: Optional[Dict[str, Any]] = None
                          ) -> Dict[str, Any]:
    """Write :func:`to_json_exposition` to ``path``; returns the doc."""
    doc = to_json_exposition(summary, meta=meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
