"""Live fleet telemetry: streaming trace batches and grid status.

PR 6's fleet already multiplexes worker pipes; until now those pipes
carried exactly one telemetry payload per cell — the full trace buffer
riding on the final ``ok`` message.  This module makes the telemetry
*incremental*: workers ship bounded batches of tracer records and
metric deltas while a cell is still running, and the coordinator folds
them into its own timeline and registry as they arrive.  The fleet is
itself a network of processes (Abramsky's generalized Kahn principle,
PAPERS.md) and this is its observable output stream.

Three pieces:

* :class:`StreamingSink` — a tracer sink that buffers records and
  ships them in bounded, sequence-numbered batches through a caller
  callback (in the fleet worker: a pipe send).  Shipping happens on
  the worker's own emit path; OS pipe buffering provides natural
  backpressure — a slow coordinator slows the worker rather than
  growing an unbounded queue.
* :class:`TelemetryMerger` — the coordinator half: **idempotent**
  ingest keyed by ``(cell, attempt, seq)``.  Duplicate batches are
  dropped, out-of-order batches are reassembled in sequence order, and
  records only reach the parent tracer when an attempt *completes*
  (:meth:`TelemetryMerger.commit`).  A crashed or timed-out attempt is
  :meth:`abandoned <TelemetryMerger.abandon>` — its partial spans and
  metric deltas are retracted wholesale, so a retried cell never
  double-counts (the bug class the old end-of-run-only
  ``rebase_records`` path made impossible to even express).
* :class:`FleetStatus` — the live scoreboard behind ``python -m repro
  top``: cells done / retries / quarantines / cache hit-rate / ETA,
  updated in place by the coordinator and snapshotted lock-free by the
  renderer (single attribute reads are atomic under the GIL; the
  numbers are monotone counters, so a torn read is at worst one tick
  stale).

Invariant preserved from PR 2: everything here activates only when a
tracer is attached.  Untraced grids ship no batches, allocate no
sinks, and pay nothing beyond the existing ``tracer.enabled`` check.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.obs.metrics import (
    MetricsRegistry,
    merge_registries,
    snapshot_delta,
)
from repro.obs.sinks import Sink

#: Default records per shipped batch (bounded payload per pipe send).
DEFAULT_BATCH_RECORDS = 256


class StreamingSink(Sink):
    """Buffer tracer records; ship them in sequence-numbered batches.

    ``ship(batch)`` receives a plain dict::

        {"seq": int, "records": [SpanRecord | EventRecord, ...],
         "metrics": <snapshot delta>, "epoch_ns": int}

    ``metrics`` is the delta of this sink's stream-level registry
    (records/batches by category) since the previous batch — additive,
    so the coordinator can merge deltas in any arrival order and the
    totals still agree.  ``flush()`` ships a final partial batch;
    the sink never re-ships a sequence number.
    """

    def __init__(self, ship: Callable[[Dict[str, Any]], None],
                 batch_records: int = DEFAULT_BATCH_RECORDS,
                 epoch_ns: int = 0):
        if batch_records < 1:
            raise ValueError("batch_records must be >= 1")
        self._ship = ship
        self.batch_records = batch_records
        self.epoch_ns = epoch_ns
        self.seq = 0
        self.shipped_records = 0
        self._buffer: List[Any] = []
        self._registry = MetricsRegistry()
        self._last_snapshot: Optional[Dict[str, Any]] = None

    def record(self, rec: Any) -> None:
        self._buffer.append(rec)
        self._registry.counter("tel.records").inc()
        category = getattr(rec, "category", "") or rec.kind
        self._registry.counter(f"tel.records.{category}").inc()
        if len(self._buffer) >= self.batch_records:
            self.flush()

    def flush(self) -> None:
        """Ship the buffered records (no-op when nothing is pending)."""
        if not self._buffer:
            return
        snap = self._registry.snapshot()
        batch = {
            "seq": self.seq,
            "records": self._buffer,
            "metrics": snapshot_delta(snap, self._last_snapshot),
            "epoch_ns": self.epoch_ns,
        }
        self._buffer = []
        self._last_snapshot = snap
        self.seq += 1
        self.shipped_records += len(batch["records"])
        self._ship(batch)

    def close(self) -> None:
        self.flush()


class TelemetryMerger:
    """Coordinator-side idempotent ingest of worker telemetry batches.

    Batches are keyed by ``(cell, attempt, seq)``: a key seen twice is
    dropped (a worker retrying a send, a coordinator replaying a
    buffer), and batches may arrive in any order — they are reassembled
    by sequence number at commit time.  An attempt's records enter the
    parent tracer **only** via :meth:`commit`, which fires when the
    fleet accepts that attempt's result; :meth:`abandon` retracts a
    failed attempt wholesale.  Retries therefore never double-count
    spans or metrics no matter how the pipe interleaved the batches.

    ``live_registry()`` exposes the merged metrics *including*
    in-flight attempts — the optimistic view the ``top`` display
    wants; ``committed_registry`` holds only accepted attempts — the
    view whose totals must agree with the serial run.
    """

    def __init__(self, tracer: Any = None):
        self.tracer = tracer
        self.committed_registry = MetricsRegistry()
        self.batches_ingested = 0
        self.records_ingested = 0
        self.duplicates_dropped = 0
        self.attempts_abandoned = 0
        self.attempts_committed = 0
        self._seen: Set[Tuple[str, int, int]] = set()
        self._closed: Set[Tuple[str, int]] = set()
        #: (cell, attempt) -> {"batches": {seq: records},
        #:  "metrics": [delta, ...], "epoch_ns": int}
        self._open: Dict[Tuple[str, int], Dict[str, Any]] = {}

    # -- ingest ----------------------------------------------------------

    def ingest(self, cell: str, attempt: int,
               batch: Dict[str, Any]) -> bool:
        """Accept one shipped batch; returns False for duplicates or
        batches of already-settled (committed/abandoned) attempts."""
        seq = int(batch.get("seq", 0))
        key = (cell, attempt, seq)
        if key in self._seen or (cell, attempt) in self._closed:
            self.duplicates_dropped += 1
            return False
        self._seen.add(key)
        slot = self._open.setdefault(
            (cell, attempt),
            {"batches": {}, "metrics": [], "epoch_ns": 0})
        records = batch.get("records") or []
        slot["batches"][seq] = records
        delta = batch.get("metrics")
        if delta:
            slot["metrics"].append(delta)
        if batch.get("epoch_ns"):
            slot["epoch_ns"] = int(batch["epoch_ns"])
        self.batches_ingested += 1
        self.records_ingested += len(records)
        return True

    # -- settle ----------------------------------------------------------

    def commit(self, cell: str, attempt: int,
               track_suffix: str = "",
               epoch_ns: Optional[int] = None) -> int:
        """Fold an accepted attempt's records into the parent tracer
        (in sequence order, rebased onto the parent clock) and its
        metric deltas into the committed registry.  Returns the number
        of records committed.  Idempotent: a second commit of the same
        attempt is a no-op."""
        key = (cell, attempt)
        if key in self._closed:
            return 0
        self._closed.add(key)
        slot = self._open.pop(key, None)
        if slot is None:
            return 0
        records: List[Any] = []
        for seq in sorted(slot["batches"]):
            records.extend(slot["batches"][seq])
        worker_epoch = epoch_ns if epoch_ns is not None \
            else slot["epoch_ns"]
        if records and self.tracer is not None \
                and getattr(self.tracer, "enabled", False):
            from repro.obs.perfetto import rebase_records

            offset = worker_epoch - getattr(
                self.tracer, "_epoch_ns", worker_epoch)
            self.tracer.ingest(rebase_records(
                records, offset_ns=offset, track_suffix=track_suffix))
        for delta in slot["metrics"]:
            self.committed_registry.merge(delta)
        self.attempts_committed += 1
        return len(records)

    def abandon(self, cell: str, attempt: int) -> None:
        """Drop a failed attempt's buffered records and metric deltas
        (late batches for it will be dropped as duplicates)."""
        key = (cell, attempt)
        if key in self._closed:
            return
        self._closed.add(key)
        if self._open.pop(key, None) is not None:
            self.attempts_abandoned += 1

    # -- views -----------------------------------------------------------

    def live_registry(self) -> MetricsRegistry:
        """Committed totals plus in-flight attempts' deltas — the
        optimistic scoreboard for a live display."""
        live = merge_registries([self.committed_registry.snapshot()])
        for slot in self._open.values():
            for delta in slot["metrics"]:
                live.merge(delta)
        return live

    def stats(self) -> Dict[str, int]:
        return {
            "batches": self.batches_ingested,
            "records": self.records_ingested,
            "duplicates_dropped": self.duplicates_dropped,
            "attempts_committed": self.attempts_committed,
            "attempts_abandoned": self.attempts_abandoned,
        }


def grid_metrics_summary(report: Any) -> Dict[str, Any]:
    """Fold one grid run's metrics into a single summary dict.

    Per-cell summaries (present on traced cells), the fleet's own
    supervision metrics and a few ``grid.*`` outcome counters all land
    in one registry, so the exposition's totals agree with the cells
    by construction — the consistency the Prometheus artifact is
    checked against.
    """
    registry = MetricsRegistry()
    cases = list(getattr(report, "cases", []))
    registry.counter("grid.cells").inc(len(cases))
    for case in cases:
        registry.counter(f"grid.outcome.{case.outcome}").inc()
        if getattr(case, "cached", False):
            registry.counter("grid.cache_hits").inc()
        metrics = getattr(case, "metrics", None)
        if metrics:
            registry.merge_summary(metrics)
    stats = getattr(report, "fleet_stats", None) or {}
    if stats.get("metrics"):
        registry.merge_summary(stats["metrics"])
    for key in ("retries", "timeouts", "crashes", "respawns",
                "quarantined", "stream_batches", "stream_records"):
        if stats.get(key):
            registry.counter(f"fleet.stats.{key}").inc(
                int(stats[key]))
    return registry.summary()


class FleetStatus:
    """Mutable live scoreboard for one grid run.

    The coordinator calls the ``on_*`` hooks from its event loop; a
    display thread reads :meth:`snapshot` concurrently.  All updates
    are single attribute writes under the GIL, so readers see a
    consistent-enough view without locks.
    """

    def __init__(self, total: int = 0, workers: int = 0,
                 scenario: str = ""):
        self.scenario = scenario
        self.total = total
        self.workers = workers
        self.busy = 0
        self.done = 0
        self.conforming = 0
        self.genuine_failures = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.quarantined = 0
        self.cached = 0
        self.cache_misses = 0
        self.records_streamed = 0
        self.batches_streamed = 0
        self.started = time.monotonic()
        self.finished = False
        self._recent: deque = deque(maxlen=32)

    # -- coordinator hooks ----------------------------------------------

    def on_dispatch(self) -> None:
        self.busy += 1

    def on_settled(self) -> None:
        self.busy = max(0, self.busy - 1)

    def on_complete(self, outcome: str, elapsed_s: float,
                    cached: bool = False) -> None:
        self.done += 1
        if cached:
            self.cached += 1
        if outcome == "conforms":
            self.conforming += 1
        elif outcome == "quarantined":
            self.quarantined += 1
        elif outcome not in ("timeout", "crashed"):
            self.genuine_failures += 1
        if not cached and elapsed_s > 0:
            self._recent.append(elapsed_s)

    def on_attempt_failed(self, kind: str) -> None:
        if kind == "timeout":
            self.timeouts += 1
        else:
            self.crashes += 1

    def on_retry(self) -> None:
        self.retries += 1

    def on_stream(self, records: int) -> None:
        self.batches_streamed += 1
        self.records_streamed += records

    # -- derived ---------------------------------------------------------

    def elapsed_s(self) -> float:
        return time.monotonic() - self.started

    def cache_hit_rate(self) -> Optional[float]:
        consulted = self.cached + self.cache_misses
        if not consulted:
            return None
        return self.cached / consulted

    def eta_s(self) -> Optional[float]:
        """Remaining wall-clock estimate from observed throughput."""
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        executed = self.done - self.cached
        if executed <= 0 or not self._recent:
            return None
        elapsed = self.elapsed_s()
        if elapsed <= 0:
            return None
        return remaining * (elapsed / executed)

    def snapshot(self) -> Dict[str, Any]:
        eta = self.eta_s()
        hit_rate = self.cache_hit_rate()
        return {
            "scenario": self.scenario,
            "total": self.total,
            "done": self.done,
            "busy": self.busy,
            "workers": self.workers,
            "conforming": self.conforming,
            "genuine_failures": self.genuine_failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "quarantined": self.quarantined,
            "cached": self.cached,
            "cache_hit_rate": hit_rate,
            "records_streamed": self.records_streamed,
            "batches_streamed": self.batches_streamed,
            "elapsed_s": round(self.elapsed_s(), 3),
            "eta_s": None if eta is None else round(eta, 3),
            "finished": self.finished,
        }
