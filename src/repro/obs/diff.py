"""Divergence diffing and delta-debugging shrink for recorded runs.

Two runs of the same network that disagree — a failure that
reproduces on one machine but not another, a verdict that changed
after a refactor — differ at some *first* decision or event.
:func:`diff_runs` aligns two runs' event streams and reports that
first divergence with surrounding context; :func:`diff_schedules`
does the same for the recorded decision streams, which localizes the
divergence even earlier (a scheduling decision diverges before its
consequences reach a channel).

:func:`shrink_schedule` is the post-mortem companion: given a failing
:class:`~repro.obs.recorder.Schedule` and a predicate "does the
failure still happen?", it delta-debugs (Zeller's ddmin) each decision
stream down to a locally minimal schedule that still fails — replayed
leniently, so removed decisions hand control to a deterministic
fallback oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs.recorder import Schedule


@dataclass
class StreamDivergence:
    """First point where one aligned stream differs between two runs."""

    stream: str               # "events" | "agent_picks" | ...
    index: int                # first differing position
    a: Any                    # entry in run/schedule A (None: missing)
    b: Any                    # entry in run/schedule B (None: missing)
    context_a: list = field(default_factory=list)
    context_b: list = field(default_factory=list)

    def describe(self) -> str:
        if self.a is None:
            return (f"{self.stream}[{self.index}]: A ended, "
                    f"B continues with {self.b!r}")
        if self.b is None:
            return (f"{self.stream}[{self.index}]: B ended, "
                    f"A continues with {self.a!r}")
        return (f"{self.stream}[{self.index}]: "
                f"A has {self.a!r}, B has {self.b!r}")


@dataclass
class RunDiff:
    """Alignment of two runs: event-stream and outcome differences."""

    divergence: Optional[StreamDivergence] = None
    #: outcome fields that differ: name → (value_a, value_b)
    outcome: dict = field(default_factory=dict)
    digest_a: str = ""
    digest_b: str = ""

    @property
    def identical(self) -> bool:
        return self.divergence is None and not self.outcome

    def summary(self) -> str:
        if self.identical:
            return f"runs identical (digest {self.digest_a[:16]})"
        parts = []
        if self.divergence is not None:
            parts.append(self.divergence.describe())
        for name, (a, b) in sorted(self.outcome.items()):
            parts.append(f"{name}: {a!r} vs {b!r}")
        return "; ".join(parts)


@dataclass
class ScheduleDiff:
    """First divergent decision between two schedules, per stream."""

    divergences: List[StreamDivergence] = field(default_factory=list)
    digest_a: str = ""
    digest_b: str = ""

    @property
    def identical(self) -> bool:
        return not self.divergences

    @property
    def first(self) -> Optional[StreamDivergence]:
        return self.divergences[0] if self.divergences else None


def _first_mismatch(a: Sequence, b: Sequence) -> Optional[int]:
    for i in range(min(len(a), len(b))):
        if a[i] != b[i]:
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def _window(items: Sequence, index: int, context: int) -> list:
    lo = max(0, index - context)
    return list(items[lo:index + context + 1])


def _stream_divergence(stream: str, a: Sequence, b: Sequence,
                       context: int) -> Optional[StreamDivergence]:
    index = _first_mismatch(a, b)
    if index is None:
        return None
    return StreamDivergence(
        stream=stream, index=index,
        a=a[index] if index < len(a) else None,
        b=b[index] if index < len(b) else None,
        context_a=_window(a, index, context),
        context_b=_window(b, index, context),
    )


#: RunResult fields compared (beyond the event stream) by diff_runs.
_OUTCOME_FIELDS = ("quiescent", "steps", "halted_agents",
                   "blocked_agents", "failed_agents", "undelivered",
                   "watchdog_fired", "restarts")


def diff_runs(a: Any, b: Any, context: int = 3) -> RunDiff:
    """Align two ``RunResult``s; report the first divergent event.

    Events are compared as ``(channel_name, message)`` pairs; the
    divergence carries ``context`` events either side so the report
    shows the lead-up.  Outcome fields (quiescence, steps, agent
    states, undelivered, supervision telemetry when present) that
    differ are reported as well — two runs can share a history yet end
    differently (e.g. one watchdogged, one exhausted its budget).
    """
    events_a = [(e.channel.name, e.message) for e in a.trace]
    events_b = [(e.channel.name, e.message) for e in b.trace]
    diff = RunDiff(
        divergence=_stream_divergence("events", events_a, events_b,
                                      context),
        digest_a=a.digest(),
        digest_b=b.digest(),
    )
    for name in _OUTCOME_FIELDS:
        if not hasattr(a, name) or not hasattr(b, name):
            continue
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            diff.outcome[name] = (va, vb)
    return diff


def diff_schedules(a: Schedule, b: Schedule,
                   context: int = 3) -> ScheduleDiff:
    """First divergent decision of each stream between two schedules.

    The earliest divergent *decision* usually precedes the earliest
    divergent *event* — a different ``pick_agent`` is the cause, the
    channel history the symptom — so this is the sharper localizer
    when both runs were recorded.
    """
    out = ScheduleDiff(digest_a=a.digest(), digest_b=b.digest())
    for stream in ("agent_picks", "choice_picks", "rng_draws",
                   "path"):
        div = _stream_divergence(stream, getattr(a, stream),
                                 getattr(b, stream), context)
        if div is not None:
            out.divergences.append(div)
    return out


# -- delta debugging ---------------------------------------------------------

def _ddmin(items: List[Any],
           test: Callable[[List[Any]], bool]) -> List[Any]:
    """Zeller's ddmin: a locally minimal sublist still failing ``test``.

    ``test(sub)`` returns True iff the failure reproduces with ``sub``.
    Assumes ``test(items)`` is True (the caller checks).
    """
    granularity = 2
    while len(items) >= 2:
        size = len(items) // granularity
        reduced = False
        for start in range(0, len(items), max(size, 1)):
            complement = items[:start] + items[start + max(size, 1):]
            if len(complement) < len(items) and test(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    if len(items) == 1 and test([]):
        return []
    return items


def shrink_schedule(schedule: Schedule,
                    predicate: Callable[[Schedule], bool],
                    streams: Tuple[str, ...] = (
                        "agent_picks", "choice_picks", "rng_draws"),
                    ) -> Schedule:
    """Delta-debug a failing schedule to a locally minimal one.

    ``predicate(candidate)`` must re-run the network under the
    candidate schedule — **leniently** (pass a ``fallback`` oracle to
    :class:`~repro.obs.replay.ReplayOracle` / ``strict=False`` to
    :func:`~repro.obs.replay.replay_fault_rng`), since shrunken
    schedules intentionally run out — and report whether the original
    verdict still holds.  Each stream is ddmin-reduced in turn, and
    the whole cycle repeats until no stream shrinks further.

    Raises ``ValueError`` if the unshrunk schedule does not satisfy
    the predicate (nothing to preserve).
    """
    if not predicate(schedule.copy()):
        raise ValueError(
            "shrink_schedule: the original schedule does not "
            "reproduce the failure under the given predicate"
        )
    current = schedule.copy()
    changed = True
    while changed:
        changed = False
        for stream in streams:
            items = list(getattr(current, stream))
            if not items:
                continue

            def test(sub: List[Any], _stream: str = stream) -> bool:
                return predicate(current.copy(**{_stream: list(sub)}))

            reduced = _ddmin(items, test)
            if len(reduced) < len(items):
                current = current.copy(**{stream: reduced})
                changed = True
    current.meta["shrunk_from"] = len(schedule)
    return current
