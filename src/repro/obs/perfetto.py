"""Chrome-trace-event export: run timelines that load in Perfetto.

Converts a stream of :class:`~repro.obs.tracer.SpanRecord` /
:class:`~repro.obs.tracer.EventRecord` values into the JSON object
format understood by ``chrome://tracing`` and https://ui.perfetto.dev:
spans become complete (``"ph": "X"``) events, instants become
``"ph": "i"`` events, and each tracer *track* (agent, solver, fault
layer, …) becomes a named thread row via ``"M"`` metadata events.

Timestamps convert from the tracer's nanoseconds to the format's
microseconds (floats are allowed, so sub-µs resolution survives).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.obs.tracer import _jsonable

_PID = 1


def to_chrome_trace(records: Iterable[Any],
                    process_name: str = "repro",
                    flows: Iterable[Dict[str, Any]] = ()
                    ) -> Dict[str, Any]:
    """Build the Chrome-trace-event JSON object for ``records``.

    ``flows`` layers Perfetto *flow arrows* (causal send→recv /
    fault-pipeline edges) onto the timeline: each descriptor — as
    produced by :meth:`repro.obs.causality.CausalGraph.flow_arrows` —
    carries ``name``/``category`` plus source and destination
    ``track``/``ts_ns``, and becomes a matched ``"ph": "s"`` /
    ``"ph": "f"`` pair sharing one flow id.
    """
    tids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []

    def tid_for(track: str) -> int:
        try:
            return tids[track]
        except KeyError:
            tid = tids[track] = len(tids) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": _PID,
                "tid": tid, "args": {"name": track},
            })
            return tid

    trace_events.append({
        "name": "process_name", "ph": "M", "pid": _PID,
        "args": {"name": process_name},
    })
    for rec in records:
        tid = tid_for(rec.track)
        args = {k: _jsonable(v) for k, v in rec.args.items()}
        if rec.kind == "span":
            trace_events.append({
                "name": rec.name,
                "cat": rec.category or "span",
                "ph": "X",
                "ts": rec.start_ns / 1000.0,
                "dur": rec.dur_ns / 1000.0,
                "pid": _PID,
                "tid": tid,
                "args": args,
            })
        else:
            trace_events.append({
                "name": rec.name,
                "cat": rec.category or "event",
                "ph": "i",
                "ts": rec.ts_ns / 1000.0,
                "s": "t",  # thread-scoped instant
                "pid": _PID,
                "tid": tid,
                "args": args,
            })
    for flow_id, flow in enumerate(flows, start=1):
        common = {
            "name": flow.get("name", "flow"),
            "cat": flow.get("category", "causal"),
            "id": flow_id,
            "pid": _PID,
        }
        trace_events.append({
            **common, "ph": "s",
            "ts": flow["src_ts_ns"] / 1000.0,
            "tid": tid_for(flow["src_track"]),
        })
        trace_events.append({
            **common, "ph": "f", "bp": "e",
            "ts": flow["dst_ts_ns"] / 1000.0,
            "tid": tid_for(flow["dst_track"]),
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def rebase_records(records: Iterable[Any], offset_ns: int = 0,
                   track_suffix: str = "") -> List[Any]:
    """Shift records onto another tracer's timeline.

    Used to merge per-worker trace buffers from a parallel conformance
    grid back into the parent tracer: ``offset_ns`` is the worker
    tracer's epoch minus the parent's (both epochs come from the same
    machine-wide monotonic clock under ``fork``), and ``track_suffix``
    keeps each cell's rows apart in the merged timeline.  Records are
    copied, never mutated — the worker buffers stay valid.
    """
    from dataclasses import replace

    out: List[Any] = []
    for rec in records:
        changes: Dict[str, Any] = {}
        if track_suffix:
            changes["track"] = rec.track + track_suffix
        if rec.kind == "span":
            changes["start_ns"] = rec.start_ns + offset_ns
        else:
            changes["ts_ns"] = rec.ts_ns + offset_ns
        out.append(replace(rec, **changes) if changes else rec)
    return out


def write_chrome_trace(records: Iterable[Any], path: str,
                       process_name: str = "repro",
                       flows: Iterable[Dict[str, Any]] = ()) -> int:
    """Write the Perfetto-loadable JSON file; returns the event count."""
    doc = to_chrome_trace(records, process_name=process_name,
                          flows=flows)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
