"""The Brock–Ackermann anomaly and its resolution by smoothness (§2.4)."""

from repro.anomaly.brock_ackermann import (
    SOLUTION_ANOMALOUS,
    SOLUTION_REAL,
    AnomalyAnalysis,
    analyse,
    candidate_sequences,
    channels,
    combined_description,
    eliminated_system,
    full_system,
    make_agents,
    operational_outputs,
    solves_equations,
    trace_of_output,
)

__all__ = [
    "AnomalyAnalysis",
    "SOLUTION_ANOMALOUS",
    "SOLUTION_REAL",
    "analyse",
    "candidate_sequences",
    "channels",
    "combined_description",
    "eliminated_system",
    "full_system",
    "make_agents",
    "operational_outputs",
    "solves_equations",
    "trace_of_output",
]
