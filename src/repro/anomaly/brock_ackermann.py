"""The Brock–Ackermann anomaly (§2.4, Figure 4) end to end.

Network: process A fair-merges its odd-only input ``b`` with the stored
sequence ``⟨0 2⟩`` onto ``c``; process B outputs ``n + 1`` after seeing
two inputs, where ``n`` was the first.  Descriptions:

    even(c) ⟵ ⟨0 2⟩ ,  odd(c) ⟵ b      {A}
    b ⟵ f(c)                            {B}

Eliminating ``b`` (§7):

    even(c) ⟵ ⟨0 2⟩ ,  odd(c) ⟵ f(c)

The anomaly: over sequences, the equations have exactly two solutions —
``c = ⟨0 1 2⟩`` and ``c = ⟨0 2 1⟩`` — but only ``⟨0 2 1⟩`` arises from a
computation (A must output both 0 and 2 before B can reply 1).  History-
insensitive semantics admit both; smoothness rejects ``⟨0 1 2⟩``
because ``odd(⟨0 1⟩) = ⟨1⟩ ⋢ f(⟨0⟩) = ε``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.core.elimination import eliminate_channel
from repro.kahn.agents import brock_a_agent, brock_b_agent
from repro.kahn.quiescence import quiescent_traces
from repro.processes.deterministic import (
    brock_a_descriptions,
    brock_b_description,
)
from repro.seq.finite import FiniteSeq, fseq
from repro.traces.trace import Trace


def channels() -> tuple[Channel, Channel]:
    """The network's channels ``b`` (odd integers) and ``c``."""
    b = Channel("b", alphabet={1, 3})
    c = Channel("c", alphabet={0, 1, 2, 3})
    return b, c


def full_system(b: Channel, c: Channel) -> DescriptionSystem:
    """The three descriptions before elimination."""
    return DescriptionSystem(
        brock_a_descriptions(b, c) + [brock_b_description(c, b)],
        channels=[b, c], name="brock-ackermann",
    )


def eliminated_system(b: Channel, c: Channel) -> DescriptionSystem:
    """``even(c) ⟵ ⟨0 2⟩ , odd(c) ⟵ f(c)`` after eliminating ``b``."""
    return eliminate_channel(full_system(b, c), b)


def combined_description(b: Channel, c: Channel) -> Description:
    return eliminated_system(b, c).combined()


#: The two solutions of the equations over integer sequences (§2.4).
SOLUTION_ANOMALOUS: FiniteSeq = fseq(0, 1, 2)
SOLUTION_REAL: FiniteSeq = fseq(0, 2, 1)


def trace_of_output(c: Channel, seq: FiniteSeq) -> Trace:
    """A trace carrying the given output sequence on ``c``."""
    return Trace.from_pairs([(c, m) for m in seq])


@dataclass(frozen=True)
class AnomalyAnalysis:
    """Everything §2.4 claims, computed."""

    equation_solutions: list[FiniteSeq]
    smooth_solutions: list[FiniteSeq]
    anomalous_rejected: bool
    operational_outputs: set[FiniteSeq]

    @property
    def resolved(self) -> bool:
        """Smooth solutions coincide with operational outcomes."""
        return (
            set(map(tuple, self.smooth_solutions))
            == set(map(tuple, self.operational_outputs))
        )


def candidate_sequences() -> Iterable[FiniteSeq]:
    """All permutations of ``{0, 1, 2}`` plus the empty/partial ones —
    a small universe for exhibiting 'exactly two solutions'."""
    import itertools

    pool = [0, 1, 2]
    for r in range(len(pool) + 1):
        for combo in itertools.permutations(pool, r):
            yield FiniteSeq(combo)


def solves_equations(c: Channel, seq: FiniteSeq,
                     system: DescriptionSystem) -> bool:
    """Does the output sequence satisfy the equations (limit only)?"""
    return system.combined().limit_holds(trace_of_output(c, seq))


def analyse(max_steps: int = 200, n_seeds: int = 60) -> AnomalyAnalysis:
    """Run the whole §2.4 argument and return the evidence."""
    b, c = channels()
    system = eliminated_system(b, c)
    description = system.combined()

    equation_solutions = [
        s for s in candidate_sequences()
        if solves_equations(c, s, system)
    ]
    smooth = [
        s for s in equation_solutions
        if description.is_smooth_solution(trace_of_output(c, s))
    ]
    anomalous_rejected = not description.is_smooth_solution(
        trace_of_output(c, SOLUTION_ANOMALOUS)
    )

    operational = operational_outputs(max_steps, n_seeds)
    return AnomalyAnalysis(
        equation_solutions=equation_solutions,
        smooth_solutions=smooth,
        anomalous_rejected=anomalous_rejected,
        operational_outputs=operational,
    )


def make_agents(b: Channel, c: Channel) -> dict:
    """Fresh operational network: A and B wired as in Figure 4.

    B's output channel is ``b``, which loops back as A's input; a copy
    of every ``c`` message also reaches the observer (the trace).
    """
    return {
        "A": brock_a_agent(b, c),
        "B": brock_b_agent(c, b),
    }


def operational_outputs(max_steps: int = 200,
                        n_seeds: int = 60) -> set[FiniteSeq]:
    """The distinct ``c``-sequences of sampled quiescent computations."""
    b, c = channels()
    traces = quiescent_traces(
        lambda: make_agents(b, c), [b, c],
        seeds=range(n_seeds), max_steps=max_steps,
    )
    return {t.messages_on(c) for t in traces}
