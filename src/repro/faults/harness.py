"""Conformance harness: a network under a grid of fault plans.

The paper's descriptions are *specifications*; the harness is the
operational test bench that checks an implementation against one under
adversity.  For every cell of ``plans × seeds`` it runs the network in
a :class:`~repro.faults.supervision.SupervisedRuntime` and classifies
the outcome:

* ``conforms`` — the run quiesced and its (projected) trace is a
  smooth solution of the specification;
* ``violation`` — the run quiesced but the checker rejects the trace
  (the fault broke the implementation in a spec-visible way);
* ``livelock`` — the watchdog fired (the fault starved the network);
* ``exhausted`` — the step budget ran out before quiescence.

Whether a ``livelock`` is a pass or a fail depends on the scenario
(an unfair-loss grid *should* livelock); callers assert on the
report's outcome counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.channels.channel import Channel
from repro.core.description import DEFAULT_DEPTH
from repro.faults.plan import FaultPlan, PlanFactory
from repro.faults.supervision import (
    RestartPolicy,
    SupervisedRunResult,
    run_supervised,
)
from repro.kahn.runtime import AgentFactory
from repro.kahn.scheduler import RandomOracle
from repro.obs.recorder import (
    RecordingOracle,
    Schedule,
    record_fault_rng,
)
from repro.obs.replay import ReplayOracle, replay_fault_rng
from repro.obs.tracer import NULL_TRACER

#: A no-fault grid cell (the control column of every grid).
def no_faults() -> Optional[FaultPlan]:
    return None


@dataclass
class ConformanceCase:
    """One grid cell: a plan, a seed, and the classified outcome."""

    plan: str
    seed: int
    outcome: str            # conforms | violation | livelock | exhausted
    result: SupervisedRunResult
    detail: str = ""
    #: wall-clock seconds for this cell (``time.monotonic`` based,
    #: matching the solver's monotonic deadlines)
    elapsed_s: float = 0.0
    #: the run's metrics summary (populated when the grid is traced),
    #: so a failing cell ships its own explanation
    metrics: dict = field(default_factory=dict)
    #: the cell's recorded :class:`~repro.obs.recorder.Schedule`
    #: (populated when the grid runs with ``record=True``, the
    #: default) — a failing cell ships its own repro; feed it to
    #: :func:`replay_conformance_case`
    schedule: Optional[Schedule] = None

    @property
    def failed(self) -> bool:
        """Anything but ``conforms`` is a failure to diagnose."""
        return self.outcome != "conforms"

    def __str__(self) -> str:
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{self.plan} × seed {self.seed}] {self.outcome}{tail}"


@dataclass
class ConformanceReport:
    """All cells of one ``plans × seeds`` conformance grid."""

    network: str
    cases: list[ConformanceCase] = field(default_factory=list)
    #: wall-clock seconds for the whole grid, measured around the run
    #: (under a parallel executor this is what an observer waits, and
    #: is strictly less than the summed per-cell compute)
    wall_clock_s: float = 0.0

    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for case in self.cases:
            counts[case.outcome] = counts.get(case.outcome, 0) + 1
        return counts

    def select(self, outcome: str,
               plan: Optional[str] = None) -> list[ConformanceCase]:
        return [c for c in self.cases
                if c.outcome == outcome
                and (plan is None or c.plan == plan)]

    @property
    def violations(self) -> list[ConformanceCase]:
        return self.select("violation")

    @property
    def livelocks(self) -> list[ConformanceCase]:
        return self.select("livelock")

    @property
    def all_conform(self) -> bool:
        return all(c.outcome == "conforms" for c in self.cases)

    def total_elapsed_s(self) -> float:
        """Total per-cell *compute*: the sum of per-cell monotonic
        timings.  This is CPU-side work, not grid wall-clock — under a
        parallel executor the cells overlap, so this sum exceeds
        :attr:`wall_clock_s`; for the true elapsed time of the grid use
        ``wall_clock_s``."""
        return sum(c.elapsed_s for c in self.cases)

    def summary(self) -> str:
        counts = ", ".join(f"{k}: {v}"
                           for k, v in sorted(self.outcomes().items()))
        return (f"conformance[{self.network}] "
                f"{len(self.cases)} runs — {counts}")


def run_conformance(network: str,
                    agents: Mapping[str, AgentFactory],
                    channels: Iterable[Channel],
                    spec,
                    plans: Mapping[str, PlanFactory],
                    seeds: Iterable[int],
                    observe: Optional[Iterable[Channel]] = None,
                    max_steps: int = 10_000,
                    policy: Optional[RestartPolicy] = RestartPolicy(),
                    watchdog_limit: Optional[int] = 500,
                    depth: int = DEFAULT_DEPTH,
                    tracer=None,
                    record: bool = True,
                    workers: int = 1,
                    scenario: Optional[str] = None
                    ) -> ConformanceReport:
    """Run ``agents`` under every ``plan × seed`` cell and check every
    quiescent trace against ``spec``.

    ``spec`` is anything with ``is_smooth_solution(trace, depth)`` — a
    :class:`~repro.core.description.Description` or a
    ``DescriptionSystem``.  ``observe`` projects traces onto the
    spec-visible channels first (e.g. just the delivery channel of a
    protocol); plans are *factories* because fault models are stateful
    and each run needs a fresh, identically-seeded instance.

    With ``record=True`` (the default — recording is list appends, so
    leave it on) every cell's oracle decisions and fault RNG draws
    are captured and attached as ``case.schedule``: a grid failure
    ships its own repro, re-executable bit-for-bit with
    :func:`replay_conformance_case`.

    ``workers > 1`` farms the independent cells out over processes —
    but only when ``scenario`` names a registered
    :mod:`repro.par` scenario whose plan names cover ``plans`` (agent
    factories are closures and never cross the process boundary; the
    workers rebuild everything from the registry).  When those
    conditions do not hold, or ``workers == 1``, the grid runs on the
    serial path below; per-cell outcomes and schedule digests are
    identical either way (each cell is a fresh plan instance plus a
    fresh ``RandomOracle(seed)`` in both executors).
    """
    if workers > 1:
        from repro import par

        if par.parallelizable(scenario, plans):
            return par.run_conformance_parallel(
                scenario, plans=plans, seeds=seeds,
                max_steps=max_steps, workers=workers,
                record=record, tracer=tracer)
    grid_started = time.monotonic()
    channel_list = list(channels)
    observed = set(observe) if observe is not None else None
    report = ConformanceReport(network=network)
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("harness.grid", category="harness",
                     track="harness", network=network,
                     plans=sorted(plans)):
        for plan_name, make_plan in plans.items():
            for seed in seeds:
                started = time.monotonic()
                with tracer.span("harness.cell", category="harness",
                                 track="harness", plan=plan_name,
                                 seed=seed) as cell_span:
                    plan = make_plan()
                    oracle: object = RandomOracle(seed)
                    schedule = None
                    if record:
                        recording = RecordingOracle(oracle)
                        schedule = recording.schedule
                        schedule.meta.update(
                            network=network, plan=plan_name,
                            seed=seed, max_steps=max_steps,
                            watchdog_limit=watchdog_limit,
                        )
                        if plan is not None:
                            record_fault_rng(plan, schedule)
                        oracle = recording
                    result = run_supervised(
                        dict(agents), channel_list, oracle,
                        max_steps=max_steps, fault_plan=plan,
                        policy=policy,
                        watchdog_limit=watchdog_limit,
                        tracer=tracer,
                    )
                    case = _classify(
                        plan_name, seed, result, spec, observed,
                        depth)
                    if schedule is not None:
                        schedule.meta["outcome"] = case.outcome
                        schedule.meta["digest"] = result.digest()
                        case.schedule = schedule
                    cell_span.annotate(outcome=case.outcome)
                case.elapsed_s = time.monotonic() - started
                case.metrics = result.metrics
                report.cases.append(case)
    report.wall_clock_s = time.monotonic() - grid_started
    return report


def replay_conformance_case(schedule: Schedule,
                            agents: Mapping[str, AgentFactory],
                            channels: Iterable[Channel],
                            spec,
                            plans: Mapping[str, PlanFactory],
                            observe: Optional[Iterable[Channel]] = None,
                            policy: Optional[RestartPolicy] = RestartPolicy(),
                            depth: int = DEFAULT_DEPTH,
                            tracer=None,
                            fallback=None) -> ConformanceCase:
    """Re-execute one recorded grid cell and re-classify its outcome.

    ``schedule`` is a ``case.schedule`` from a recorded grid (or the
    same JSON reloaded); ``plans`` must contain the recorded plan name
    so a fresh, identically-seeded plan can be rebuilt — its RNG draws
    are then replayed from the schedule, so even a drifted plan
    factory is caught as a divergence.  Strict unless ``fallback`` is
    given.  The round-trip guarantee: the returned case has the same
    ``outcome`` and its ``result.digest()`` equals the recorded
    ``schedule.meta["digest"]``.
    """
    plan_name = schedule.meta["plan"]
    if plan_name not in plans:
        raise KeyError(
            f"recorded plan {plan_name!r} is not in the given plan "
            f"factories ({sorted(plans)})"
        )
    plan = plans[plan_name]()
    if plan is not None:
        replay_fault_rng(plan, schedule, strict=fallback is None)
    oracle = ReplayOracle(schedule, fallback=fallback)
    observed = set(observe) if observe is not None else None
    result = run_supervised(
        dict(agents), list(channels), oracle,
        max_steps=int(schedule.meta.get("max_steps", 10_000)),
        fault_plan=plan, policy=policy,
        watchdog_limit=schedule.meta.get("watchdog_limit", 500),
        tracer=tracer,
    )
    case = _classify(plan_name, schedule.meta.get("seed", -1),
                     result, spec, observed, depth)
    case.schedule = schedule
    return case


def _classify(plan_name: str, seed: int,
              result: SupervisedRunResult, spec,
              observed: Optional[set], depth: int) -> ConformanceCase:
    if result.watchdog_fired:
        return ConformanceCase(
            plan_name, seed, "livelock", result,
            detail=f"watchdog after {result.steps} steps")
    if not result.quiescent:
        return ConformanceCase(
            plan_name, seed, "exhausted", result,
            detail=f"no quiescence within {result.steps} steps")
    trace = result.trace
    if observed is not None:
        trace = trace.project(observed)
    if spec.is_smooth_solution(trace, depth):
        detail = ""
        if result.failed_agents:
            detail = "failed agents: " + ", ".join(result.failed_agents)
        return ConformanceCase(plan_name, seed, "conforms", result,
                               detail=detail)
    return ConformanceCase(
        plan_name, seed, "violation", result,
        detail=f"trace rejected by spec: {trace!r}")
