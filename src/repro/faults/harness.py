"""Conformance harness: a network under a grid of fault plans.

The paper's descriptions are *specifications*; the harness is the
operational test bench that checks an implementation against one under
adversity.  For every cell of ``plans × seeds`` it runs the network in
a :class:`~repro.faults.supervision.SupervisedRuntime` and classifies
the outcome:

* ``conforms`` — the run quiesced and its (projected) trace is a
  smooth solution of the specification;
* ``violation`` — the run quiesced but the checker rejects the trace
  (the fault broke the implementation in a spec-visible way);
* ``livelock`` — the watchdog fired (the fault starved the network);
* ``exhausted`` — the step budget ran out before quiescence.

Whether a ``livelock`` is a pass or a fail depends on the scenario
(an unfair-loss grid *should* livelock); callers assert on the
report's outcome counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.channels.channel import Channel
from repro.core.description import DEFAULT_DEPTH
from repro.faults.plan import FaultPlan, PlanFactory
from repro.faults.supervision import (
    RestartPolicy,
    SupervisedRunResult,
    run_supervised,
)
from repro.kahn.runtime import AgentFactory
from repro.kahn.scheduler import RandomOracle
from repro.obs.tracer import NULL_TRACER

#: A no-fault grid cell (the control column of every grid).
def no_faults() -> Optional[FaultPlan]:
    return None


@dataclass
class ConformanceCase:
    """One grid cell: a plan, a seed, and the classified outcome."""

    plan: str
    seed: int
    outcome: str            # conforms | violation | livelock | exhausted
    result: SupervisedRunResult
    detail: str = ""
    #: wall-clock seconds for this cell (``time.monotonic`` based,
    #: matching the solver's monotonic deadlines)
    elapsed_s: float = 0.0
    #: the run's metrics summary (populated when the grid is traced),
    #: so a failing cell ships its own explanation
    metrics: dict = field(default_factory=dict)

    def __str__(self) -> str:
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{self.plan} × seed {self.seed}] {self.outcome}{tail}"


@dataclass
class ConformanceReport:
    """All cells of one ``plans × seeds`` conformance grid."""

    network: str
    cases: list[ConformanceCase] = field(default_factory=list)

    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for case in self.cases:
            counts[case.outcome] = counts.get(case.outcome, 0) + 1
        return counts

    def select(self, outcome: str,
               plan: Optional[str] = None) -> list[ConformanceCase]:
        return [c for c in self.cases
                if c.outcome == outcome
                and (plan is None or c.plan == plan)]

    @property
    def violations(self) -> list[ConformanceCase]:
        return self.select("violation")

    @property
    def livelocks(self) -> list[ConformanceCase]:
        return self.select("livelock")

    @property
    def all_conform(self) -> bool:
        return all(c.outcome == "conforms" for c in self.cases)

    def total_elapsed_s(self) -> float:
        """Grid wall-clock: the sum of per-cell monotonic timings."""
        return sum(c.elapsed_s for c in self.cases)

    def summary(self) -> str:
        counts = ", ".join(f"{k}: {v}"
                           for k, v in sorted(self.outcomes().items()))
        return (f"conformance[{self.network}] "
                f"{len(self.cases)} runs — {counts}")


def run_conformance(network: str,
                    agents: Mapping[str, AgentFactory],
                    channels: Iterable[Channel],
                    spec,
                    plans: Mapping[str, PlanFactory],
                    seeds: Iterable[int],
                    observe: Optional[Iterable[Channel]] = None,
                    max_steps: int = 10_000,
                    policy: Optional[RestartPolicy] = RestartPolicy(),
                    watchdog_limit: Optional[int] = 500,
                    depth: int = DEFAULT_DEPTH,
                    tracer=None) -> ConformanceReport:
    """Run ``agents`` under every ``plan × seed`` cell and check every
    quiescent trace against ``spec``.

    ``spec`` is anything with ``is_smooth_solution(trace, depth)`` — a
    :class:`~repro.core.description.Description` or a
    ``DescriptionSystem``.  ``observe`` projects traces onto the
    spec-visible channels first (e.g. just the delivery channel of a
    protocol); plans are *factories* because fault models are stateful
    and each run needs a fresh, identically-seeded instance.
    """
    channel_list = list(channels)
    observed = set(observe) if observe is not None else None
    report = ConformanceReport(network=network)
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("harness.grid", category="harness",
                     track="harness", network=network,
                     plans=sorted(plans)):
        for plan_name, make_plan in plans.items():
            for seed in seeds:
                started = time.monotonic()
                with tracer.span("harness.cell", category="harness",
                                 track="harness", plan=plan_name,
                                 seed=seed) as cell_span:
                    result = run_supervised(
                        dict(agents), channel_list,
                        RandomOracle(seed),
                        max_steps=max_steps, fault_plan=make_plan(),
                        policy=policy,
                        watchdog_limit=watchdog_limit,
                        tracer=tracer,
                    )
                    case = _classify(
                        plan_name, seed, result, spec, observed,
                        depth)
                    cell_span.annotate(outcome=case.outcome)
                case.elapsed_s = time.monotonic() - started
                case.metrics = result.metrics
                report.cases.append(case)
    return report


def _classify(plan_name: str, seed: int,
              result: SupervisedRunResult, spec,
              observed: Optional[set], depth: int) -> ConformanceCase:
    if result.watchdog_fired:
        return ConformanceCase(
            plan_name, seed, "livelock", result,
            detail=f"watchdog after {result.steps} steps")
    if not result.quiescent:
        return ConformanceCase(
            plan_name, seed, "exhausted", result,
            detail=f"no quiescence within {result.steps} steps")
    trace = result.trace
    if observed is not None:
        trace = trace.project(observed)
    if spec.is_smooth_solution(trace, depth):
        detail = ""
        if result.failed_agents:
            detail = "failed agents: " + ", ".join(result.failed_agents)
        return ConformanceCase(plan_name, seed, "conforms", result,
                               detail=detail)
    return ConformanceCase(
        plan_name, seed, "violation", result,
        detail=f"trace rejected by spec: {trace!r}")
