"""Conformance harness: a network under a grid of fault plans.

The paper's descriptions are *specifications*; the harness is the
operational test bench that checks an implementation against one under
adversity.  For every cell of ``plans × seeds`` it runs the network in
a :class:`~repro.faults.supervision.SupervisedRuntime` and classifies
the outcome:

* ``conforms`` — the run quiesced and its (projected) trace is a
  smooth solution of the specification;
* ``violation`` — the run quiesced but the checker rejects the trace
  (the fault broke the implementation in a spec-visible way);
* ``livelock`` — the watchdog fired (the fault starved the network);
* ``exhausted`` — the step budget ran out before quiescence.

Whether a ``livelock`` is a pass or a fail depends on the scenario
(an unfair-loss grid *should* livelock); callers assert on the
report's outcome counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.channels.channel import Channel
from repro.core.description import DEFAULT_DEPTH
from repro.faults.plan import FaultPlan, PlanFactory
from repro.faults.supervision import (
    RestartPolicy,
    SupervisedRunResult,
    run_supervised,
)
from repro.kahn.runtime import AgentFactory
from repro.kahn.scheduler import RandomOracle
from repro.obs.recorder import (
    RecordingOracle,
    Schedule,
    record_fault_rng,
)
from repro.obs.replay import ReplayOracle, replay_fault_rng
from repro.obs.tracer import NULL_TRACER

#: A no-fault grid cell (the control column of every grid).
def no_faults() -> Optional[FaultPlan]:
    return None


#: Outcomes produced by the *execution substrate*, not the semantics:
#: the cell never ran to classification (worker killed, deadline hit,
#: attempts exhausted).  They mark the report ``degraded`` but are not
#: conformance verdicts — exit-status logic and serial≡parallel digest
#: claims apply to the surviving (non-infra) cells.
INFRA_OUTCOMES = frozenset({"timeout", "crashed", "quarantined"})


@dataclass
class ConformanceCase:
    """One grid cell: a plan, a seed, and the classified outcome."""

    plan: str
    seed: int
    #: conforms | violation | livelock | exhausted — or, from the
    #: supervised fleet, an infrastructure outcome (INFRA_OUTCOMES):
    #: timeout | crashed | quarantined
    outcome: str
    #: the live run result — ``None`` for a cache-served cell, whose
    #: run was skipped entirely (its digest survives in
    #: ``schedule.meta['digest']`` / :meth:`run_digest`)
    result: Optional[SupervisedRunResult]
    detail: str = ""
    #: wall-clock seconds for this cell (``time.monotonic`` based,
    #: matching the solver's monotonic deadlines)
    elapsed_s: float = 0.0
    #: the run's metrics summary (populated when the grid is traced),
    #: so a failing cell ships its own explanation
    metrics: dict = field(default_factory=dict)
    #: the cell's recorded :class:`~repro.obs.recorder.Schedule`
    #: (populated when the grid runs with ``record=True``, the
    #: default) — a failing cell ships its own repro; feed it to
    #: :func:`replay_conformance_case`
    schedule: Optional[Schedule] = None
    #: this cell was served from a persistent cache store instead of
    #: being executed (outcome/detail/schedule are the original run's)
    cached: bool = False
    #: execution attempts the fleet spent on this cell (1 on the
    #: serial path and for first-try parallel successes)
    attempts: int = 1

    @property
    def failed(self) -> bool:
        """Anything but ``conforms`` is a failure to diagnose."""
        return self.outcome != "conforms"

    @property
    def infra_failure(self) -> bool:
        """The execution substrate failed this cell (timeout, worker
        crash, quarantine) — the semantics never classified it."""
        return self.outcome in INFRA_OUTCOMES

    def run_digest(self) -> Optional[str]:
        """The underlying run's content digest — live or cached."""
        if self.result is not None:
            return self.result.digest()
        if self.schedule is not None:
            return self.schedule.meta.get("digest")
        return None

    def __str__(self) -> str:
        tail = f" ({self.detail})" if self.detail else ""
        mark = " [cached]" if self.cached else ""
        if self.attempts > 1:
            mark += f" [{self.attempts} attempts]"
        return (f"[{self.plan} × seed {self.seed}] "
                f"{self.outcome}{tail}{mark}")

    # -- cache round-trip ----------------------------------------------------

    def to_cache_payload(self) -> dict:
        """The JSON-ready slice of this case a warm grid run needs to
        be bit-for-bit equal to the cold one: outcome, detail and the
        recorded schedule (whose digest *is* the per-cell digest), plus
        the original compute time for reporting."""
        return {
            "plan": self.plan,
            "seed": self.seed,
            "outcome": self.outcome,
            "detail": self.detail,
            "elapsed_s": self.elapsed_s,
            "run_digest": self.run_digest(),
            "schedule": (self.schedule.to_dict()
                         if self.schedule is not None else None),
        }

    @classmethod
    def from_cache_payload(cls, payload: dict) -> "ConformanceCase":
        """Rebuild a cache-served case (``cached=True``, no live
        result).  ``elapsed_s`` is zeroed — the warm cell cost nothing;
        the original compute time rides in the payload for reporting.
        Raises ``ValueError``/``KeyError`` on malformed payloads (the
        store's caller maps that to a miss)."""
        schedule = payload.get("schedule")
        return cls(
            plan=str(payload["plan"]),
            seed=int(payload["seed"]),
            outcome=str(payload["outcome"]),
            result=None,
            detail=str(payload.get("detail", "")),
            elapsed_s=0.0,
            schedule=(Schedule.from_dict(schedule)
                      if schedule is not None else None),
            cached=True,
        )


@dataclass
class ConformanceReport:
    """All cells of one ``plans × seeds`` conformance grid."""

    network: str
    cases: list[ConformanceCase] = field(default_factory=list)
    #: wall-clock seconds for the whole grid, measured around the run
    #: (under a parallel executor this is what an observer waits, and
    #: is strictly less than the summed per-cell compute)
    wall_clock_s: float = 0.0
    #: fleet telemetry from the supervised parallel executor
    #: (spawns/retries/timeouts/quarantines — see
    #: :func:`repro.par.fleet.run_fleet`); ``None`` on the serial path
    fleet_stats: Optional[dict] = None

    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for case in self.cases:
            counts[case.outcome] = counts.get(case.outcome, 0) + 1
        return counts

    def select(self, outcome: str,
               plan: Optional[str] = None) -> list[ConformanceCase]:
        return [c for c in self.cases
                if c.outcome == outcome
                and (plan is None or c.plan == plan)]

    @property
    def violations(self) -> list[ConformanceCase]:
        return self.select("violation")

    @property
    def livelocks(self) -> list[ConformanceCase]:
        return self.select("livelock")

    @property
    def all_conform(self) -> bool:
        """Every cell conforms — vacuously true for an empty grid
        (zero cells: nothing ran, nothing failed, exit 0)."""
        return all(c.outcome == "conforms" for c in self.cases)

    @property
    def cached_cases(self) -> list[ConformanceCase]:
        return [c for c in self.cases if c.cached]

    @property
    def degraded(self) -> bool:
        """The execution substrate lost cells (timeouts, crashes,
        quarantines): the grid's verdicts are incomplete — trust the
        surviving cells, rerun or replay the rest."""
        return any(c.infra_failure for c in self.cases)

    @property
    def surviving_cases(self) -> list[ConformanceCase]:
        """Cells the semantics actually classified (everything except
        infrastructure failures) — the domain of the serial ≡ parallel
        digest-equality claim on a degraded grid."""
        return [c for c in self.cases if not c.infra_failure]

    @property
    def genuine_failures(self) -> list[ConformanceCase]:
        """Failures of the *system under test* (violation / livelock /
        exhausted) as opposed to failures of the machinery running the
        grid — the set that should drive exit status."""
        return [c for c in self.cases
                if c.failed and not c.infra_failure]

    def digest(self) -> str:
        """Stable content hash of the grid's outcome: per cell (in
        grid order) the coordinate, the classified outcome and the
        schedule digest.  A warm, cache-served rerun of the same grid
        digests identically to the cold run — the bit-for-bit claim
        the cache smoke tests assert."""
        from repro.obs.recorder import stable_digest

        return stable_digest([
            [c.plan, c.seed, c.outcome,
             c.schedule.digest() if c.schedule is not None else None]
            for c in self.cases
        ])

    def surviving_digest(self) -> str:
        """:meth:`digest` restricted to the surviving cells — on a
        degraded grid this is the digest that must equal a serial
        run's digest over the same cells."""
        from repro.obs.recorder import stable_digest

        return stable_digest([
            [c.plan, c.seed, c.outcome,
             c.schedule.digest() if c.schedule is not None else None]
            for c in self.surviving_cases
        ])

    def total_elapsed_s(self) -> float:
        """Total per-cell *compute*: the sum of per-cell monotonic
        timings.  This is CPU-side work, not grid wall-clock — under a
        parallel executor the cells overlap, so this sum exceeds
        :attr:`wall_clock_s`; for the true elapsed time of the grid use
        ``wall_clock_s``."""
        return sum(c.elapsed_s for c in self.cases)

    def summary(self) -> str:
        counts = ", ".join(f"{k}: {v}"
                           for k, v in sorted(self.outcomes().items()))
        text = (f"conformance[{self.network}] "
                f"{len(self.cases)} runs — {counts}")
        if self.degraded:
            text += "  [DEGRADED]"
        return text


def run_conformance(network: str,
                    agents: Mapping[str, AgentFactory],
                    channels: Iterable[Channel],
                    spec,
                    plans: Mapping[str, PlanFactory],
                    seeds: Iterable[int],
                    observe: Optional[Iterable[Channel]] = None,
                    max_steps: int = 10_000,
                    policy: Optional[RestartPolicy] = RestartPolicy(),
                    watchdog_limit: Optional[int] = 500,
                    depth: int = DEFAULT_DEPTH,
                    tracer=None,
                    record: bool = True,
                    workers: int = 1,
                    scenario: Optional[str] = None,
                    cache=None
                    ) -> ConformanceReport:
    """Run ``agents`` under every ``plan × seed`` cell and check every
    quiescent trace against ``spec``.

    ``spec`` is anything with ``is_smooth_solution(trace, depth)`` — a
    :class:`~repro.core.description.Description` or a
    ``DescriptionSystem``.  ``observe`` projects traces onto the
    spec-visible channels first (e.g. just the delivery channel of a
    protocol); plans are *factories* because fault models are stateful
    and each run needs a fresh, identically-seeded instance.

    With ``record=True`` (the default — recording is list appends, so
    leave it on) every cell's oracle decisions and fault RNG draws
    are captured and attached as ``case.schedule``: a grid failure
    ships its own repro, re-executable bit-for-bit with
    :func:`replay_conformance_case`.

    ``workers > 1`` farms the independent cells out over processes —
    but only when ``scenario`` names a registered
    :mod:`repro.par` scenario whose plan names cover ``plans`` (agent
    factories are closures and never cross the process boundary; the
    workers rebuild everything from the registry).  When those
    conditions do not hold, or ``workers == 1``, the grid runs on the
    serial path below; per-cell outcomes and schedule digests are
    identical either way (each cell is a fresh plan instance plus a
    fresh ``RandomOracle(seed)`` in both executors).

    ``cache`` (a :class:`repro.cache.CacheStore`) skips cells whose
    cached case exists: a hit appends the recorded case with
    ``cached=True`` (same outcome, same schedule digest — the warm
    report digests identically to the cold one) without running the
    cell; misses run normally and are stored back.  Cells are keyed by
    the grid facets (network, channel alphabets, observation set,
    budgets, policy) plus ``(plan, seed, record)`` — see
    :mod:`repro.cache.keys`.
    """
    if workers > 1:
        from repro import par

        if par.parallelizable(scenario, plans):
            return par.run_conformance_parallel(
                scenario, plans=plans, seeds=seeds,
                max_steps=max_steps, workers=workers,
                record=record, tracer=tracer, cache=cache)
    grid_started = time.monotonic()
    channel_list = list(channels)
    observed = set(observe) if observe is not None else None
    report = ConformanceReport(network=network)
    tracer = tracer if tracer is not None else NULL_TRACER
    facets = None
    if cache is not None:
        from repro.cache.keys import cell_cache_key, grid_facets

        facets = grid_facets(network, channel_list, observed,
                             max_steps, policy, watchdog_limit, depth)
    with tracer.span("harness.grid", category="harness",
                     track="harness", network=network,
                     plans=sorted(plans)):
        for plan_name, make_plan in plans.items():
            for seed in seeds:
                cell_key = None
                if facets is not None:
                    cell_key = cell_cache_key(facets, plan_name,
                                              seed, record)
                    hit = cache.get("cell", cell_key)
                    if hit is not None:
                        case = _case_from_cache(hit, plan_name, seed)
                        if case is not None:
                            if tracer.enabled:
                                tracer.event(
                                    "cache.hit", category="cache",
                                    track="harness", plan=plan_name,
                                    seed=seed, outcome=case.outcome)
                            report.cases.append(case)
                            continue
                    if tracer.enabled:
                        tracer.event(
                            "cache.miss", category="cache",
                            track="harness", plan=plan_name,
                            seed=seed)
                started = time.monotonic()
                with tracer.span("harness.cell", category="harness",
                                 track="harness", plan=plan_name,
                                 seed=seed) as cell_span:
                    plan = make_plan()
                    oracle: object = RandomOracle(seed)
                    schedule = None
                    if record:
                        recording = RecordingOracle(oracle)
                        schedule = recording.schedule
                        schedule.meta.update(
                            network=network, plan=plan_name,
                            seed=seed, max_steps=max_steps,
                            watchdog_limit=watchdog_limit,
                        )
                        if plan is not None:
                            record_fault_rng(plan, schedule)
                        oracle = recording
                    result = run_supervised(
                        dict(agents), channel_list, oracle,
                        max_steps=max_steps, fault_plan=plan,
                        policy=policy,
                        watchdog_limit=watchdog_limit,
                        tracer=tracer,
                    )
                    case = _classify(
                        plan_name, seed, result, spec, observed,
                        depth)
                    if schedule is not None:
                        schedule.meta["outcome"] = case.outcome
                        schedule.meta["digest"] = result.digest()
                        case.schedule = schedule
                    cell_span.annotate(outcome=case.outcome)
                case.elapsed_s = time.monotonic() - started
                case.metrics = result.metrics
                report.cases.append(case)
                if cell_key is not None:
                    cache.put("cell", cell_key,
                              case.to_cache_payload())
    report.wall_clock_s = time.monotonic() - grid_started
    return report


def _case_from_cache(payload, plan_name: str,
                     seed: int) -> Optional[ConformanceCase]:
    """Rebuild a cached cell, treating any malformed payload (or one
    whose coordinate disagrees with the requested cell — a hash
    collision) as a miss."""
    try:
        case = ConformanceCase.from_cache_payload(payload)
    except (KeyError, TypeError, ValueError):
        return None
    if case.plan != plan_name or case.seed != seed:
        return None
    return case


def replay_conformance_case(schedule: Schedule,
                            agents: Mapping[str, AgentFactory],
                            channels: Iterable[Channel],
                            spec,
                            plans: Mapping[str, PlanFactory],
                            observe: Optional[Iterable[Channel]] = None,
                            policy: Optional[RestartPolicy] = RestartPolicy(),
                            depth: int = DEFAULT_DEPTH,
                            tracer=None,
                            fallback=None) -> ConformanceCase:
    """Re-execute one recorded grid cell and re-classify its outcome.

    ``schedule`` is a ``case.schedule`` from a recorded grid (or the
    same JSON reloaded); ``plans`` must contain the recorded plan name
    so a fresh, identically-seeded plan can be rebuilt — its RNG draws
    are then replayed from the schedule, so even a drifted plan
    factory is caught as a divergence.  Strict unless ``fallback`` is
    given.  The round-trip guarantee: the returned case has the same
    ``outcome`` and its ``result.digest()`` equals the recorded
    ``schedule.meta["digest"]``.
    """
    plan_name = schedule.meta["plan"]
    if plan_name not in plans:
        raise KeyError(
            f"recorded plan {plan_name!r} is not in the given plan "
            f"factories ({sorted(plans)})"
        )
    plan = plans[plan_name]()
    if plan is not None:
        replay_fault_rng(plan, schedule, strict=fallback is None)
    oracle = ReplayOracle(schedule, fallback=fallback)
    observed = set(observe) if observe is not None else None
    result = run_supervised(
        dict(agents), list(channels), oracle,
        max_steps=int(schedule.meta.get("max_steps", 10_000)),
        fault_plan=plan, policy=policy,
        watchdog_limit=schedule.meta.get("watchdog_limit", 500),
        tracer=tracer,
    )
    case = _classify(plan_name, schedule.meta.get("seed", -1),
                     result, spec, observed, depth)
    case.schedule = schedule
    return case


def _classify(plan_name: str, seed: int,
              result: SupervisedRunResult, spec,
              observed: Optional[set], depth: int) -> ConformanceCase:
    if result.watchdog_fired:
        return ConformanceCase(
            plan_name, seed, "livelock", result,
            detail=f"watchdog after {result.steps} steps")
    if not result.quiescent:
        return ConformanceCase(
            plan_name, seed, "exhausted", result,
            detail=f"no quiescence within {result.steps} steps")
    trace = result.trace
    if observed is not None:
        trace = trace.project(observed)
    if spec.is_smooth_solution(trace, depth):
        detail = ""
        if result.failed_agents:
            detail = "failed agents: " + ", ".join(result.failed_agents)
        return ConformanceCase(plan_name, seed, "conforms", result,
                               detail=detail)
    return ConformanceCase(
        plan_name, seed, "violation", result,
        detail=f"trace rejected by spec: {trace!r}")
