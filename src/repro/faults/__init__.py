"""Fault injection & supervision for the operational Kahn runtime.

The operational counterpart of the paper's lossy/oracle constructions
(§4.6 Fork, §8.2 auxiliary channels): seeded channel fault models
(:mod:`~repro.faults.models`), agent crash/stall injectors
(:mod:`~repro.faults.inject`), fault plans binding them to a network
(:mod:`~repro.faults.plan`), a supervised runtime with restart policies
and a livelock watchdog (:mod:`~repro.faults.supervision`), and a
conformance harness running plan × seed grids against a specification
(:mod:`~repro.faults.harness`).
"""

from repro.faults.harness import (
    ConformanceCase,
    ConformanceReport,
    no_faults,
    replay_conformance_case,
    run_conformance,
)
from repro.faults.inject import InjectedCrash, crash_at_step, stall_at_step
from repro.faults.models import (
    ChannelFault,
    CorruptFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPipeline,
    ReorderFault,
)
from repro.faults.plan import FaultPlan
from repro.faults.supervision import (
    RestartPolicy,
    SupervisedRunResult,
    SupervisedRuntime,
    run_supervised,
)

__all__ = [
    "ChannelFault",
    "ConformanceCase",
    "ConformanceReport",
    "CorruptFault",
    "DelayFault",
    "DropFault",
    "DuplicateFault",
    "FaultPipeline",
    "FaultPlan",
    "InjectedCrash",
    "ReorderFault",
    "RestartPolicy",
    "SupervisedRunResult",
    "SupervisedRuntime",
    "crash_at_step",
    "no_faults",
    "replay_conformance_case",
    "run_conformance",
    "run_supervised",
    "stall_at_step",
]
