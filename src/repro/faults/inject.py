"""Agent-level fault injectors: crash and stall wrappers.

These wrap an agent body (a generator of effects) in another generator
that forwards effects and answers transparently until an injection
point, then misbehaves:

* :func:`crash_at_step` raises :class:`InjectedCrash` after the body
  has performed a given number of effects — exercising the runtime's
  failure capture (``AgentState.FAILED``) and a supervisor's restart
  policy;
* :func:`stall_at_step` stops forwarding and spins on ``Choose(1)``
  forever — the agent stays perpetually ready but never communicates,
  the canonical no-history-growth livelock a watchdog must catch.

Both are deterministic: the injection point is a step count, not a
coin flip, so a faulty run replays exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.kahn.effects import Choose
from repro.kahn.runtime import AgentBody


class InjectedCrash(RuntimeError):
    """The exception raised by :func:`crash_at_step` wrappers."""


def crash_at_step(body: AgentBody, at: int,
                  message: Optional[str] = None) -> AgentBody:
    """Run ``body`` for ``at`` effects, then raise ``InjectedCrash``.

    ``at=0`` crashes before the first effect.  The wrapper halts
    normally if the body finishes earlier.
    """
    crash = InjectedCrash(message or f"injected crash after {at} effects")
    answer = None
    started = False
    for performed in range(at):
        del performed
        try:
            effect = body.send(answer) if started else next(body)
        except StopIteration:
            return
        started = True
        answer = yield effect
    raise crash


def stall_at_step(body: AgentBody, at: int) -> AgentBody:
    """Run ``body`` for ``at`` effects, then spin without progress.

    The stalled agent yields ``Choose(1)`` forever: it consumes
    scheduler steps but never sends, so the global history stops
    growing while the network never quiesces — a livelock.
    """
    answer = None
    started = False
    for performed in range(at):
        del performed
        try:
            effect = body.send(answer) if started else next(body)
        except StopIteration:
            return
        started = True
        answer = yield effect
    while True:
        yield Choose(1)
