"""Fault plans: one perturbation scenario for a whole network.

A :class:`FaultPlan` bundles per-channel fault models (see
:mod:`repro.faults.models`) with per-agent body injectors (see
:mod:`repro.faults.inject`).  The runtime consults the plan on every
send and step; the conformance harness runs grids of *plan factories*
(plans are stateful, so each run needs a fresh one) against oracle
seeds.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.channels.channel import Channel
from repro.faults.models import ChannelFault, FaultPipeline
from repro.kahn.runtime import AgentBody

#: Wraps an agent body with an injector (crash, stall, …).
AgentWrapper = Callable[[AgentBody], AgentBody]
#: Produces a fresh plan per run (plans carry RNG and buffer state).
PlanFactory = Callable[[], Optional["FaultPlan"]]


class FaultPlan:
    """Channel faults + agent injectors for one run of a network."""

    def __init__(self,
                 channel_faults: Mapping[
                     Channel,
                     "ChannelFault | Sequence[ChannelFault]"] = (),
                 agent_faults: Mapping[str, AgentWrapper] = (),
                 name: str = "faults"):
        self.name = name
        self.channel_faults: Dict[Channel, ChannelFault] = {}
        for channel, fault in dict(channel_faults).items():
            if not isinstance(fault, ChannelFault):
                fault = FaultPipeline(list(fault))
            fault.bind(channel)
            self.channel_faults[channel] = fault
        self.agent_faults: Dict[str, AgentWrapper] = dict(agent_faults)

    # -- agent side ----------------------------------------------------------

    def wrap_agent(self, name: str, body: AgentBody) -> AgentBody:
        wrapper = self.agent_faults.get(name)
        return wrapper(body) if wrapper is not None else body

    # -- channel side --------------------------------------------------------

    def on_send(self, channel: Channel, message: Any) -> List[Any]:
        fault = self.channel_faults.get(channel)
        if fault is None:
            return [message]
        return fault.on_send(message)

    def on_step(self) -> List[Tuple[Channel, Any]]:
        out: List[Tuple[Channel, Any]] = []
        for channel, fault in self.channel_faults.items():
            out.extend((channel, m) for m in fault.on_step())
        return out

    def flush(self) -> List[Tuple[Channel, Any]]:
        out: List[Tuple[Channel, Any]] = []
        for channel, fault in self.channel_faults.items():
            out.extend((channel, m) for m in fault.flush())
        return out

    def held_count(self) -> int:
        return sum(len(f.held()) for f in self.channel_faults.values())

    def held_messages(self) -> Dict[Channel, list]:
        return {channel: fault.held()
                for channel, fault in self.channel_faults.items()
                if fault.held()}

    def dropped_messages(self) -> Dict[Channel, list]:
        """Messages each fault dropped outright (post-mortem aid)."""
        out: Dict[Channel, list] = {}
        for channel, fault in self.channel_faults.items():
            dropped = getattr(fault, "dropped", None)
            if dropped:
                out[channel] = list(dropped)
        return out

    def describe(self) -> str:
        if not self.channel_faults and not self.agent_faults:
            return f"{self.name}: no faults"
        parts = [f"{c.name}: {f.describe()}"
                 for c, f in sorted(self.channel_faults.items())]
        parts.extend(f"agent {name}: injected"
                     for name in sorted(self.agent_faults))
        return f"{self.name}: " + "; ".join(parts)

    def __repr__(self) -> str:
        return f"FaultPlan({self.describe()!r})"
