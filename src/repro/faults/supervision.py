"""Supervision: restart failed agents, watchdog stuck networks.

:class:`SupervisedRuntime` extends the base runtime with two defences
that turn pathological runs into diagnosable results:

* **Restart policy** — when an agent body raises, the supervisor
  respawns a fresh body from the agent's factory (bodies are single-use
  generators), up to ``max_restarts`` times, with an exponentially
  growing step-budget backoff between failure and respawn.  Restarted
  agents lose their local state but the network, its channels and the
  global history survive — Kahn channels are the durable state.
* **Watchdog** — a network that keeps taking steps without growing the
  history (agents spinning on polls/choices, retransmitting into a
  black hole) is livelocked.  After ``watchdog_limit`` consecutive
  growthless steps the run is terminated with a diagnostic
  :class:`SupervisedRunResult` instead of burning to ``max_steps``.

Both behaviours are deterministic given the oracle seed and the fault
plan seeds, so a watchdog firing replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.channels.channel import Channel
from repro.faults.plan import FaultPlan
from repro.kahn.runtime import (
    Agent,
    AgentFactory,
    AgentState,
    Oracle,
    RunResult,
    Runtime,
)
from repro.obs.recorder import RecordingOracle, record_fault_rng


@dataclass(frozen=True)
class RestartPolicy:
    """How many times, and how patiently, to restart a failed agent.

    The ``n``-th restart of an agent is delayed by
    ``backoff_initial * backoff_factor**(n-1)`` runtime steps — an
    exponential step-budget backoff, so a crash-looping agent consumes
    a geometrically shrinking share of the schedule.

    The same policy doubles as the fleet coordinator's retry shape
    (:mod:`repro.par.fleet`): ``backoff_cap`` saturates the exponential
    (``None`` leaves it unbounded — the in-runtime default, which keeps
    every existing digest), and ``jitter`` adds a *seeded* random
    spread via :meth:`jittered_delay` — deterministic per
    ``(seed, salt)``, so a retry schedule replays exactly.
    """

    max_restarts: int = 3
    backoff_initial: int = 8
    backoff_factor: int = 2
    #: saturate the exponential at this delay (``None``: unbounded)
    backoff_cap: Optional[int] = None
    #: jitter fraction for :meth:`jittered_delay` — the delay is
    #: stretched by a seeded factor in ``[1, 1 + jitter]``
    jitter: float = 0.0

    def delay(self, restart_index: int) -> int:
        """Backoff before the ``restart_index``-th restart (1-based),
        saturated at ``backoff_cap`` when one is set."""
        if restart_index < 1:
            raise ValueError("restart_index is 1-based")
        base = self.backoff_initial * self.backoff_factor ** (
            restart_index - 1)
        if self.backoff_cap is not None:
            base = min(base, self.backoff_cap)
        return base

    def jittered_delay(self, restart_index: int, seed: int = 0,
                       salt: str = "") -> float:
        """:meth:`delay` stretched by seeded jitter.

        The jitter draw is a pure function of ``(seed, salt,
        restart_index)`` — string-keyed ``random.Random``, stable
        across processes and ``PYTHONHASHSEED`` — so the whole retry
        schedule is deterministic and replayable.  ``salt``
        discriminates independent retry chains (e.g. one grid cell
        each) under one seed, de-synchronizing their retries.
        """
        base = float(self.delay(restart_index))
        if self.jitter <= 0.0:
            return base
        import random

        u = random.Random(
            f"{seed}|{salt}|{restart_index}").random()
        return base * (1.0 + self.jitter * u)

    def retry_schedule(self, attempts: int, seed: int = 0,
                       salt: str = "") -> list[float]:
        """The full deterministic backoff sequence for ``attempts``
        retries — what a supervisor will actually wait, in order."""
        return [self.jittered_delay(i, seed=seed, salt=salt)
                for i in range(1, attempts + 1)]


@dataclass
class SupervisedRunResult(RunResult):
    """A :class:`RunResult` plus supervision telemetry."""

    #: restarts performed per agent (zero entries included)
    restarts: Dict[str, int] = field(default_factory=dict)
    #: the watchdog terminated the run (livelock/starvation detected)
    watchdog_fired: bool = False
    #: human-readable post-mortem when the watchdog fired
    diagnosis: str = ""

    def _digest_payload(self) -> dict:
        payload = super()._digest_payload()
        payload["watchdog_fired"] = self.watchdog_fired
        payload["restarts"] = sorted(self.restarts.items())
        return payload


class SupervisedRuntime(Runtime):
    """A runtime owning agent *factories*, restartable and watched.

    ``watchdog_limit`` is the number of consecutive steps without
    history growth tolerated before the run is declared livelocked
    (``None`` disables the watchdog).  ``policy=None`` disables
    restarts (failures stay FAILED, as in the base runtime).
    """

    def __init__(self, factories: Dict[str, AgentFactory],
                 channels: Iterable[Channel],
                 fault_plan: Optional[FaultPlan] = None,
                 policy: Optional[RestartPolicy] = RestartPolicy(),
                 watchdog_limit: Optional[int] = 500,
                 tracer=None):
        super().__init__(
            {name: make() for name, make in factories.items()},
            channels, fault_plan=fault_plan, tracer=tracer,
        )
        self.factories = dict(factories)
        self.policy = policy
        self.watchdog_limit = watchdog_limit
        self.restarts: Dict[str, int] = {n: 0 for n in self.factories}
        #: agents waiting out a backoff: name → step at which to resume
        self._resume_at: Dict[str, int] = {}
        self._last_growth_step = 0
        self._watchdog_fired = False
        self._diagnosis = ""

    # -- backoff-aware scheduling --------------------------------------------

    def _in_backoff(self, agent: Agent) -> bool:
        return self._resume_at.get(agent.name, 0) > self.steps

    def ready_agents(self) -> list[Agent]:
        return [a for a in super().ready_agents()
                if not self._in_backoff(a)]

    def is_quiescent(self) -> bool:
        # an agent waiting out a backoff will run again: not quiescent
        if any(t > self.steps for t in self._resume_at.values()):
            return False
        return super().is_quiescent()

    def step(self, oracle: Oracle) -> bool:
        grew_from = len(self.history)
        if super().step(oracle):
            if len(self.history) > grew_from:
                self._last_growth_step = self.steps
            self._handle_failures()
            return True
        if any(t > self.steps for t in self._resume_at.values()):
            # nothing runnable, but a restart is pending: idle tick
            self.steps += 1
            return True
        return False

    # -- restarts -------------------------------------------------------------

    def _handle_failures(self) -> None:
        if self.policy is None:
            return
        for agent in self.agents:
            if agent.state is not AgentState.FAILED:
                continue
            if self.restarts[agent.name] >= self.policy.max_restarts:
                if self._tracing:
                    self.tracer.event(
                        "supervise.give_up", category="supervision",
                        track="supervisor", agent=agent.name,
                        restarts=self.restarts[agent.name],
                        step=self.steps)
                continue  # restarts exhausted: stays FAILED
            self.restarts[agent.name] += 1
            delay = self.policy.delay(self.restarts[agent.name])
            self._resume_at[agent.name] = self.steps + delay
            if self._tracing:
                self.tracer.event(
                    "supervise.restart", category="supervision",
                    track="supervisor", agent=agent.name,
                    restart=self.restarts[agent.name],
                    backoff_steps=delay, step=self.steps)
                self.metrics.counter(
                    f"supervise.restarts.{agent.name}").inc()
            self._respawn(agent)

    def _respawn(self, agent: Agent) -> None:
        """Fresh body from the factory; the failure record survives."""
        body = self.factories[agent.name]()
        if self.fault_plan is not None:
            body = self.fault_plan.wrap_agent(agent.name, body)
        agent.body = body
        agent.state = AgentState.READY
        agent.pending = None
        agent.waiting_on = ()
        agent._next_input = None
        agent._started = False

    # -- watchdog -------------------------------------------------------------

    def _watchdog_due(self) -> bool:
        return (self.watchdog_limit is not None
                and self.steps - self._last_growth_step
                >= self.watchdog_limit
                and not self.is_quiescent())

    def diagnose(self) -> str:
        """Post-mortem snapshot for a stuck or faulty network."""
        lines = [
            f"steps={self.steps}, history length={len(self.history)}, "
            f"last growth at step {self._last_growth_step}",
        ]
        for agent in self.agents:
            detail = agent.state.value
            if agent.state is AgentState.BLOCKED:
                waiting = ", ".join(c.name for c in agent.waiting_on)
                detail += f" on [{waiting}]"
            if self.restarts.get(agent.name):
                detail += f", {self.restarts[agent.name]} restart(s)"
            if agent.failure is not None:
                detail += f", last failure: {agent.failure}"
            lines.append(f"  {agent.name}: {detail}")
        undelivered = self.undelivered()
        if undelivered:
            lines.append(f"  undelivered: {undelivered}")
        if self.fault_plan is not None:
            dropped = self.fault_plan.dropped_messages()
            if dropped:
                lines.append("  dropped: " + ", ".join(
                    f"{c.name}×{len(ms)}" for c, ms in dropped.items()))
        return "\n".join(lines)

    # -- running --------------------------------------------------------------

    def _result(self) -> SupervisedRunResult:
        base = super()._result()
        return SupervisedRunResult(
            **base.__dict__,
            restarts=dict(self.restarts),
            watchdog_fired=self._watchdog_fired,
            diagnosis=self._diagnosis,
        )

    def run(self, oracle: Oracle,
            max_steps: int) -> SupervisedRunResult:
        while self.steps < max_steps:
            if not self.step(oracle):
                break
            if self._watchdog_due():
                self._watchdog_fired = True
                self._diagnosis = (
                    f"watchdog: no history growth for "
                    f"{self.steps - self._last_growth_step} steps\n"
                    + self.diagnose()
                )
                if self._tracing:
                    self.tracer.event(
                        "supervise.watchdog", category="supervision",
                        track="supervisor", step=self.steps,
                        stalled_for=(self.steps
                                     - self._last_growth_step),
                        diagnosis=self._diagnosis)
                    self.metrics.counter(
                        "supervise.watchdog_fired").inc()
                break
        return self._result()


def run_supervised(factories: Dict[str, AgentFactory],
                   channels: Iterable[Channel],
                   oracle: Oracle,
                   max_steps: int = 10_000,
                   fault_plan: Optional[FaultPlan] = None,
                   policy: Optional[RestartPolicy] = RestartPolicy(),
                   watchdog_limit: Optional[int] = 500,
                   tracer=None,
                   record: bool = False) -> SupervisedRunResult:
    """One-call supervised run (mirrors ``run_network``).

    ``record=True`` attaches the flight-recorder
    :class:`~repro.obs.recorder.Schedule` to ``result.schedule``; see
    :func:`repro.obs.replay.replay_supervised` for the bit-for-bit
    re-execution.
    """
    schedule = None
    if record:
        recording = RecordingOracle(oracle)
        schedule = recording.schedule
        schedule.meta["max_steps"] = max_steps
        schedule.meta["watchdog_limit"] = watchdog_limit
        if fault_plan is not None:
            record_fault_rng(fault_plan, schedule)
            schedule.meta["fault_plan"] = fault_plan.describe()
        oracle = recording
    runtime = SupervisedRuntime(
        factories, channels, fault_plan=fault_plan,
        policy=policy, watchdog_limit=watchdog_limit, tracer=tracer,
    )
    result = runtime.run(oracle, max_steps)
    if schedule is not None:
        schedule.meta["steps"] = result.steps
        schedule.meta["quiescent"] = result.quiescent
        schedule.meta["watchdog_fired"] = result.watchdog_fired
        schedule.meta["digest"] = result.digest()
        result.schedule = schedule
    return result
