"""Seeded, composable channel fault models.

Each fault wraps one channel of the operational runtime and rewrites
its delivery stream: a message an agent sends passes through the fault,
which may drop it, duplicate it, corrupt it, hold it back to be
overtaken (reorder), or hold it for a number of runtime steps (delay).
The runtime records the *post-fault* stream as the channel's events, so
a faulted channel behaves exactly like a Kahn channel carrying the
perturbed stream — the §4.6 Fork reading, where the drops are the
Fork's hidden second output.

Design rules, enforced across all models:

* **Determinism** — every model owns a ``random.Random(seed)``; the
  same seed yields the same perturbation of the same input stream.
  Grids of fault plans are therefore replayable run by run.
* **Fairness bounds** — every lossy/withholding behaviour has an
  optional bound (``max_consecutive_drops``, ``max_hold``,
  ``max_delay``, …).  A bounded model cannot misbehave forever, which
  is the standard assumption (fair loss) under which retransmission
  protocols deliver.  Passing ``None`` removes the bound and makes the
  fault *unfair* — useful for driving watchdog and livelock tests.
* **Flushability** — anything a model holds in flight can be forced
  out by :meth:`ChannelFault.flush`.  The runtime flushes when every
  agent is stuck, so a delaying fault can postpone quiescence but
  never manufacture a spurious one.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.channels.channel import Channel


class ChannelFault:
    """Base fault: the identity (deliver everything immediately).

    Subclasses override :meth:`on_send` (and, if they hold messages,
    :meth:`on_step`, :meth:`flush` and :meth:`held`).  All randomness
    must come from ``self.rng`` so behaviour is a function of the seed.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)

    def bind(self, channel: Channel) -> None:
        """Called once when the fault is attached to a channel; models
        that need the channel's alphabet hook in here."""
        del channel

    def on_send(self, message: Any) -> List[Any]:
        """Deliveries produced by one send (possibly empty)."""
        return [message]

    def on_step(self) -> List[Any]:
        """Deliveries released by the passage of one runtime step."""
        return []

    def flush(self) -> List[Any]:
        """Force out everything held in flight (fairness valve)."""
        return []

    def held(self) -> List[Any]:
        """Messages currently held in flight (for diagnosis)."""
        return []

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.describe()}(seed={self.seed})"


class DropFault(ChannelFault):
    """Drop each message with probability ``p``.

    ``max_consecutive_drops`` bounds runs of losses (fair-lossy); after
    that many drops in a row the next message is forcibly delivered.
    ``None`` removes the bound — with ``p=1.0`` that is a black-hole
    channel, the canonical unfair-loss livelock driver.
    """

    def __init__(self, seed: int = 0, p: float = 0.5,
                 max_consecutive_drops: Optional[int] = 2):
        super().__init__(seed)
        self.p = p
        self.max_consecutive_drops = max_consecutive_drops
        self.dropped: List[Any] = []
        self._consecutive = 0

    def on_send(self, message: Any) -> List[Any]:
        forced = (self.max_consecutive_drops is not None
                  and self._consecutive >= self.max_consecutive_drops)
        if not forced and self.rng.random() < self.p:
            self._consecutive += 1
            self.dropped.append(message)
            return []
        self._consecutive = 0
        return [message]

    def describe(self) -> str:
        bound = self.max_consecutive_drops
        fair = f"≤{bound} consecutive" if bound is not None else "unfair"
        return f"Drop(p={self.p}, {fair})"


class DuplicateFault(ChannelFault):
    """Deliver each message twice with probability ``p``.

    ``max_consecutive_duplicates`` bounds runs of duplications so the
    queue growth rate stays bounded.
    """

    def __init__(self, seed: int = 0, p: float = 0.3,
                 max_consecutive_duplicates: Optional[int] = 2):
        super().__init__(seed)
        self.p = p
        self.max_consecutive_duplicates = max_consecutive_duplicates
        self._consecutive = 0

    def on_send(self, message: Any) -> List[Any]:
        capped = (self.max_consecutive_duplicates is not None
                  and self._consecutive
                  >= self.max_consecutive_duplicates)
        if not capped and self.rng.random() < self.p:
            self._consecutive += 1
            return [message, message]
        self._consecutive = 0
        return [message]

    def describe(self) -> str:
        return f"Duplicate(p={self.p})"


class ReorderFault(ChannelFault):
    """Let later messages overtake an earlier one.

    With probability ``p`` a message is stashed; each subsequent send
    passes it by, until it is released (randomly, or forcibly after
    ``max_hold`` overtakes — the fairness bound on displacement).  Only
    one message is stashed at a time, so the perturbation is a bounded
    permutation of the input stream.
    """

    def __init__(self, seed: int = 0, p: float = 0.3,
                 max_hold: int = 3):
        super().__init__(seed)
        self.p = p
        self.max_hold = max_hold
        self._stash: List[Any] = []   # zero or one message
        self._overtaken = 0

    def on_send(self, message: Any) -> List[Any]:
        if not self._stash and self.rng.random() < self.p:
            self._stash.append(message)
            self._overtaken = 0
            return []
        out = [message]
        if self._stash:
            self._overtaken += 1
            if (self._overtaken >= self.max_hold
                    or self.rng.random() < 0.5):
                out.append(self._stash.pop())
        return out

    def flush(self) -> List[Any]:
        out, self._stash = self._stash, []
        return out

    def held(self) -> List[Any]:
        return list(self._stash)

    def describe(self) -> str:
        return f"Reorder(p={self.p}, hold≤{self.max_hold})"


class CorruptFault(ChannelFault):
    """Replace a message with a corrupted one, probability ``p``.

    ``corrupt`` maps the original message to its corruption; by default
    the fault picks a *different* symbol from the channel's alphabet
    (so the corrupted stream stays well-typed — the runtime rejects
    fault outputs outside the alphabet).  ``max_consecutive`` bounds
    runs of corruptions.
    """

    def __init__(self, seed: int = 0, p: float = 0.2,
                 corrupt: Optional[Callable[[Any], Any]] = None,
                 max_consecutive: Optional[int] = 2):
        super().__init__(seed)
        self.p = p
        self.corrupt = corrupt
        self.max_consecutive = max_consecutive
        self._consecutive = 0
        self._alphabet: Optional[list] = None

    def bind(self, channel: Channel) -> None:
        if self.corrupt is None:
            if channel.alphabet is None:
                raise ValueError(
                    f"CorruptFault on channel {channel.name!r} needs "
                    "either a corrupt function or a finite alphabet"
                )
            self._alphabet = sorted(channel.alphabet, key=repr)

    def _corrupted(self, message: Any) -> Any:
        if self.corrupt is not None:
            return self.corrupt(message)
        if self._alphabet is None:
            raise ValueError(
                "CorruptFault was never bound to a channel; supply a "
                "corrupt function or attach it through a FaultPlan"
            )
        others = [m for m in self._alphabet if m != message]
        return self.rng.choice(others) if others else message

    def on_send(self, message: Any) -> List[Any]:
        capped = (self.max_consecutive is not None
                  and self._consecutive >= self.max_consecutive)
        if not capped and self.rng.random() < self.p:
            self._consecutive += 1
            return [self._corrupted(message)]
        self._consecutive = 0
        return [message]

    def describe(self) -> str:
        return f"Corrupt(p={self.p})"


class DelayFault(ChannelFault):
    """Hold a message for a bounded number of runtime steps.

    With probability ``p`` a message is parked with a time-to-release
    drawn uniformly from ``1..max_delay`` steps; each runtime step ages
    the parked messages and releases the expired ones (in park order).
    Delay across different residence times is the second source of
    reordering.
    """

    def __init__(self, seed: int = 0, p: float = 0.5,
                 max_delay: int = 4):
        super().__init__(seed)
        if max_delay < 1:
            raise ValueError("max_delay must be ≥ 1")
        self.p = p
        self.max_delay = max_delay
        self._parked: List[list] = []   # [ttl, message] pairs

    def on_send(self, message: Any) -> List[Any]:
        if self.rng.random() < self.p:
            ttl = self.rng.randint(1, self.max_delay)
            self._parked.append([ttl, message])
            return []
        return [message]

    def on_step(self) -> List[Any]:
        out: List[Any] = []
        survivors: List[list] = []
        for pair in self._parked:
            pair[0] -= 1
            if pair[0] <= 0:
                out.append(pair[1])
            else:
                survivors.append(pair)
        self._parked = survivors
        return out

    def flush(self) -> List[Any]:
        out = [m for _, m in self._parked]
        self._parked = []
        return out

    def held(self) -> List[Any]:
        return [m for _, m in self._parked]

    def describe(self) -> str:
        return f"Delay(p={self.p}, ≤{self.max_delay} steps)"


class FaultPipeline(ChannelFault):
    """Sequential composition of faults on one channel.

    A send passes through the stages left to right; a stage's releases
    (on step or flush) pass through the stages after it.  Composition
    is how a plan expresses e.g. "lossy *and* reordering".
    """

    def __init__(self, faults: Sequence[ChannelFault]):
        super().__init__(seed=0)
        self.faults = list(faults)
        if not self.faults:
            raise ValueError("FaultPipeline needs at least one fault")

    def bind(self, channel: Channel) -> None:
        for fault in self.faults:
            fault.bind(channel)

    def _through(self, messages: Iterable[Any],
                 start: int) -> List[Any]:
        out = list(messages)
        for fault in self.faults[start:]:
            out = [d for m in out for d in fault.on_send(m)]
        return out

    def on_send(self, message: Any) -> List[Any]:
        return self._through([message], 0)

    def on_step(self) -> List[Any]:
        out: List[Any] = []
        for i, fault in enumerate(self.faults):
            out.extend(self._through(fault.on_step(), i + 1))
        return out

    def flush(self) -> List[Any]:
        out: List[Any] = []
        for i, fault in enumerate(self.faults):
            pending = fault.flush()
            for downstream in self.faults[i + 1:]:
                released = [d for m in pending
                            for d in downstream.on_send(m)]
                released.extend(downstream.flush())
                pending = released
            out.extend(pending)
        return out

    def held(self) -> List[Any]:
        return [m for fault in self.faults for m in fault.held()]

    def describe(self) -> str:
        return " ∘ ".join(f.describe() for f in self.faults)
