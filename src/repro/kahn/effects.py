"""Effects: the vocabulary of operational process behaviours.

Agents (operational processes) are Python generators that *yield*
effects and receive results back.  The runtime interprets:

* :class:`Send` — transmit a message; appended to the global trace
  (traces record sends only, §3.1.1);
* :class:`Recv` — wait for a message on one channel (blocks while the
  channel is empty — the paper's "a process waits as long as no number
  is available");
* :class:`RecvAny` — wait for a message on any of several channels (the
  merge primitive); the runtime answers ``(channel, message)`` and uses
  the oracle to break ties;
* :class:`Poll` — non-blocking availability test (answers ``bool``);
* :class:`Choose` — nondeterministic choice among ``arity``
  alternatives (answers an index chosen by the oracle);
* :class:`Halt` — terminate deliberately (returning from the generator
  is equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.channels.channel import Channel


@dataclass(frozen=True)
class Send:
    channel: Channel
    message: Any


@dataclass(frozen=True)
class Recv:
    channel: Channel


@dataclass(frozen=True)
class RecvAny:
    channels: tuple[Channel, ...]

    def __init__(self, channels: Sequence[Channel]):
        object.__setattr__(self, "channels", tuple(channels))
        if not self.channels:
            raise ValueError("RecvAny needs at least one channel")


@dataclass(frozen=True)
class Poll:
    channel: Channel


@dataclass(frozen=True)
class Choose:
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ValueError("Choose needs arity ≥ 1")


@dataclass(frozen=True)
class Halt:
    pass


Effect = Send | Recv | RecvAny | Poll | Choose | Halt
