"""Oracles: reproducible resolutions of scheduling nondeterminism.

A network computation is determined by its oracle (Park's terminology,
§4.6): which ready agent steps next and which branch each choice takes.
Enumerating oracles enumerates computations — the operational
counterpart of enumerating smooth solutions.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from repro.kahn.runtime import Agent, AgentBody, Oracle, RunResult, Runtime
from repro.channels.channel import Channel
from repro.obs.recorder import (
    RecordingOracle,
    Schedule,
    ScheduleExhausted,
    record_fault_rng,
)


class FirstOracle(Oracle):
    """Always the first option — deterministic, round-robin-free."""


class RoundRobinOracle(Oracle):
    """Cycle through ready agents; choices cycle through branches.

    Guarantees that no perpetually-ready agent is starved, which is the
    operational fairness assumption behind quiescent traces.
    """

    def __init__(self) -> None:
        self._agent_counter = 0
        self._choice_counter = 0

    def pick_agent(self, ready: list[Agent]) -> int:
        self._agent_counter += 1
        return self._agent_counter % len(ready)

    def pick_choice(self, agent: Agent, arity: int) -> int:
        self._choice_counter += 1
        return self._choice_counter % arity


class RandomOracle(Oracle):
    """Seeded pseudo-random scheduling — the workhorse for sampling
    many distinct computations of a nondeterministic network."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def pick_agent(self, ready: list[Agent]) -> int:
        return self._rng.randrange(len(ready))

    def pick_choice(self, agent: Agent, arity: int) -> int:
        del agent
        return self._rng.randrange(arity)


class ScriptedOracle(Oracle):
    """Replay a fixed script of indices.

    Lets tests steer a network into one specific computation — e.g. the
    two computations of §2.3 that produce the sequences ``x`` and ``y``.
    After the script runs out a non-strict oracle falls back to index
    0; with ``strict=True`` exhaustion raises
    :class:`~repro.obs.recorder.ScheduleExhausted` (carrying the
    decision index and kind) instead of silently changing behaviour —
    the mode replay-style tests want.  For checked, by-name replay of
    a recorded run see :class:`repro.obs.replay.ReplayOracle`, which
    generalizes this class.
    """

    def __init__(self, agent_picks: Sequence[int] = (),
                 choice_picks: Sequence[int] = (),
                 strict: bool = False):
        self._agents = list(agent_picks)
        self._choices = list(choice_picks)
        self._strict = strict
        self._ai = 0
        self._ci = 0

    def pick_agent(self, ready: list[Agent]) -> int:
        if self._ai < len(self._agents):
            value = self._agents[self._ai]
            self._ai += 1
            return value
        if self._strict:
            raise ScheduleExhausted(
                "agent", self._ai,
                detail=f"scripted {len(self._agents)} agent pick(s)")
        return 0

    def pick_choice(self, agent: Agent, arity: int) -> int:
        del agent, arity
        if self._ci < len(self._choices):
            value = self._choices[self._ci]
            self._ci += 1
            return value
        if self._strict:
            raise ScheduleExhausted(
                "choice", self._ci,
                detail=f"scripted {len(self._choices)} choice pick(s)")
        return 0


def run_network(agents: dict[str, AgentBody],
                channels: Iterable[Channel],
                oracle: Oracle,
                max_steps: int = 10_000,
                fault_plan=None,
                tracer=None,
                record: bool = False) -> RunResult:
    """Build a runtime and run it to quiescence or the step bound.

    ``fault_plan`` (a :class:`repro.faults.plan.FaultPlan`) perturbs
    channel deliveries and may inject agent crashes/stalls.
    ``tracer`` (a :class:`repro.obs.Tracer`) records the run as spans
    and events — agent steps, oracle picks, sends/receives, faults.
    ``record=True`` turns on the flight recorder: every oracle
    decision and fault RNG draw is captured into a
    :class:`~repro.obs.recorder.Schedule` attached as
    ``result.schedule``, whose meta carries the run's digest so
    :func:`repro.obs.replay.replay_network` can re-execute and verify
    it bit-for-bit.
    """
    schedule = None
    if record:
        recording = RecordingOracle(oracle)
        schedule = recording.schedule
        schedule.meta["max_steps"] = max_steps
        if fault_plan is not None:
            record_fault_rng(fault_plan, schedule)
            schedule.meta["fault_plan"] = fault_plan.describe()
        oracle = recording
    result = Runtime(agents, channels, fault_plan=fault_plan,
                     tracer=tracer).run(oracle, max_steps)
    if schedule is not None:
        _seal_schedule(schedule, result)
        result.schedule = schedule
    return result


def _seal_schedule(schedule: Schedule, result: RunResult) -> None:
    """Stamp the recorded run's outcome into the schedule's meta."""
    schedule.meta["steps"] = result.steps
    schedule.meta["quiescent"] = result.quiescent
    schedule.meta["digest"] = result.digest()


def sample_runs(make_agents, channels: Iterable[Channel],
                seeds: Iterable[int],
                max_steps: int = 10_000,
                make_fault_plan=None,
                tracer=None) -> Iterator[RunResult]:
    """One run per seed, each from a fresh copy of the network.

    ``make_agents`` is a zero-argument callable returning the agent
    dict (generators are single-use, so each run needs fresh bodies);
    ``make_fault_plan``, when given, likewise returns a fresh
    :class:`~repro.faults.plan.FaultPlan` per run (fault models are
    stateful).
    """
    channel_list = list(channels)
    for seed in seeds:
        yield run_network(
            make_agents(), channel_list, RandomOracle(seed),
            max_steps=max_steps,
            fault_plan=(None if make_fault_plan is None
                        else make_fault_plan()),
            tracer=tracer,
        )
