"""Wiring: couple a described network with its operational agents.

Tests and examples repeatedly build the same pairing — a
:class:`~repro.core.description.DescriptionSystem` (the specification)
and a dict of agent factories (the machine) — and then cross-validate.
:class:`OperationalNetwork` packages that pairing with one-call
validation, sampling and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable

from repro.channels.channel import Channel
from repro.core.description import DEFAULT_DEPTH, DescriptionSystem
from repro.kahn.quiescence import TraceSample, collect_traces
from repro.kahn.runtime import AgentBody, RunResult
from repro.kahn.scheduler import RandomOracle, run_network
from repro.kahn.validate import (
    CrossCheckReport,
    check_operational_soundness,
)

#: Factory for one agent body (generators are single-use).
AgentFactory = Callable[[], AgentBody]


@dataclass
class OperationalNetwork:
    """A specification/machine pair over a shared channel set."""

    name: str
    channels: list[Channel]
    system: DescriptionSystem
    agents: Dict[str, AgentFactory] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = self.system.channels - set(self.channels)
        if missing:
            names = ", ".join(sorted(c.name for c in missing))
            raise ValueError(
                f"system mentions channels not wired: {names}"
            )

    def make_agents(self) -> Dict[str, AgentBody]:
        """Fresh agent bodies for one run."""
        return {name: make() for name, make in self.agents.items()}

    def run(self, seed: int = 0,
            max_steps: int = 10_000, fault_plan=None) -> RunResult:
        return run_network(
            self.make_agents(), self.channels, RandomOracle(seed),
            max_steps=max_steps, fault_plan=fault_plan,
        )

    def sample(self, seeds: Iterable[int],
               max_steps: int = 10_000,
               make_fault_plan=None) -> TraceSample:
        return collect_traces(
            self.make_agents, self.channels, seeds,
            max_steps=max_steps, make_fault_plan=make_fault_plan,
        )

    def run_supervised(self, seed: int = 0,
                       max_steps: int = 10_000, fault_plan=None,
                       policy=None, watchdog_limit: int = 500):
        """One run under a :class:`~repro.faults.supervision.
        SupervisedRuntime` (restarts + livelock watchdog)."""
        from repro.faults.supervision import RestartPolicy, run_supervised

        return run_supervised(
            self.agents, self.channels, RandomOracle(seed),
            max_steps=max_steps, fault_plan=fault_plan,
            policy=policy or RestartPolicy(),
            watchdog_limit=watchdog_limit,
        )

    def conformance(self, plans, seeds: Iterable[int] = range(10),
                    observe=None, max_steps: int = 10_000,
                    watchdog_limit: int = 500,
                    depth: int = DEFAULT_DEPTH):
        """Fault-grid conformance of the machine against the spec.

        ``plans`` maps plan names to zero-argument plan factories; see
        :func:`repro.faults.harness.run_conformance`.
        """
        from repro.faults.harness import run_conformance

        return run_conformance(
            self.name, self.agents, self.channels,
            self.system.combined(), plans, seeds,
            observe=observe, max_steps=max_steps,
            watchdog_limit=watchdog_limit, depth=depth,
        )

    def validate(self, seeds: Iterable[int] = range(20),
                 max_steps: int = 10_000,
                 depth: int = DEFAULT_DEPTH) -> CrossCheckReport:
        """Operational soundness: sampled runs against the description."""
        return check_operational_soundness(
            self.make_agents, self.channels,
            self.system.combined(), seeds,
            max_steps=max_steps, depth=depth,
        )

    def assert_valid(self, seeds: Iterable[int] = range(20),
                     max_steps: int = 10_000,
                     depth: int = DEFAULT_DEPTH) -> None:
        """Raise ``AssertionError`` with the failures if any run
        disagrees with the specification."""
        report = self.validate(seeds, max_steps, depth)
        if not report.all_agree:
            details = "\n".join(report.failures[:5])
            raise AssertionError(
                f"network {self.name!r} disagrees with its "
                f"description:\n{details}"
            )
