"""Cross-validation: operational computations ⇔ smooth solutions.

The paper's central claim ("every smooth solution corresponds to a
computation and vice versa") is checked empirically here:

* **operational → denotational**: every quiescent trace sampled from the
  runtime is a smooth solution of the network's description, and every
  non-quiescent history satisfies the smoothness condition (it is a node
  of the §3.3 tree) but, typically, not the limit condition;
* **denotational → operational**: every finite smooth solution found by
  the solver is realized as the trace of some oracle-driven run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.channels.channel import Channel
from repro.core.description import DEFAULT_DEPTH, Description
from repro.kahn.quiescence import NetworkFactory, collect_traces
from repro.kahn.scheduler import sample_runs
from repro.traces.trace import Trace


@dataclass
class CrossCheckReport:
    """Outcome of an operational-vs-denotational comparison."""

    quiescent_checked: int = 0
    quiescent_smooth: int = 0
    prefixes_checked: int = 0
    prefixes_smooth_condition: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def all_agree(self) -> bool:
        return not self.failures


def check_operational_soundness(
        make_agents: NetworkFactory,
        channels: Iterable[Channel],
        description: Description,
        seeds: Iterable[int],
        max_steps: int = 10_000,
        depth: int = DEFAULT_DEPTH) -> CrossCheckReport:
    """Operational → denotational direction."""
    report = CrossCheckReport()
    sample = collect_traces(make_agents, channels, seeds,
                            max_steps=max_steps)
    for t in sample.quiescent:
        report.quiescent_checked += 1
        verdict = description.check(t, depth)
        if verdict.is_smooth:
            report.quiescent_smooth += 1
        else:
            report.failures.append(
                f"quiescent trace not smooth: {verdict}"
            )
    for t in sample.prefixes:
        report.prefixes_checked += 1
        if description.smoothness_holds(t, depth=max(t.length(), 1)):
            report.prefixes_smooth_condition += 1
        else:
            report.failures.append(
                f"operational history violates smoothness: {t!r}"
            )
    return report


def check_denotational_completeness(
        make_agents: NetworkFactory,
        channels: Iterable[Channel],
        finite_solutions: Iterable[Trace],
        seeds: Iterable[int],
        max_steps: int = 10_000) -> CrossCheckReport:
    """Denotational → operational direction: every given finite smooth
    solution is the trace of some sampled run.

    Sampling may miss rare interleavings; pass more seeds to tighten.
    """
    report = CrossCheckReport()
    observed: set[Trace] = set()
    for result in sample_runs(make_agents, channels, seeds,
                              max_steps=max_steps):
        if result.quiescent:
            observed.add(result.trace)
    for s in finite_solutions:
        report.quiescent_checked += 1
        if s in observed:
            report.quiescent_smooth += 1
        else:
            report.failures.append(
                f"smooth solution never observed operationally: {s!r}"
            )
    return report
