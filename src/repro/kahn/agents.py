"""Operational implementations of the paper's processes.

Each function returns a fresh generator body for the
:mod:`repro.kahn.runtime`.  These are the "machines" whose quiescent
traces the descriptions are claimed to capture; the cross-validation in
:mod:`repro.kahn.validate` checks that claim empirically.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.channels.channel import Channel
from repro.kahn.effects import Choose, Poll, Recv, RecvAny, Send
from repro.kahn.runtime import AgentBody


def copy_agent(b: Channel, c: Channel) -> AgentBody:
    """§2.1: copy every input from ``b`` to ``c``."""
    while True:
        message = yield Recv(b)
        yield Send(c, message)


def prepend0_agent(c: Channel, b: Channel) -> AgentBody:
    """§2.1 (modified second process): send 0 first, then copy c → b."""
    yield Send(b, 0)
    while True:
        message = yield Recv(c)
        yield Send(b, message)


def doubler_agent(d: Channel, b: Channel) -> AgentBody:
    """Process P of §2.3: output 0, then output 2n per input n."""
    yield Send(b, 0)
    while True:
        n = yield Recv(d)
        yield Send(b, 2 * n)


def affine_agent(d: Channel, c: Channel) -> AgentBody:
    """Process Q of §2.3: output 2m + 1 per input m."""
    while True:
        m = yield Recv(d)
        yield Send(c, 2 * m + 1)


def merge_agent(inputs: Iterable[Channel], output: Channel,
                transform=lambda channel, message: message
                ) -> AgentBody:
    """A (discriminated/fair) merge: forward whatever arrives on any
    input, transformed, to the output.  The oracle breaks ties when
    several inputs have data — every finite interleaving is reachable
    under some oracle."""
    channels = tuple(inputs)
    while True:
        channel, message = yield RecvAny(channels)
        yield Send(output, transform(channel, message))


def dfm_agent(b: Channel, c: Channel, d: Channel) -> AgentBody:
    """§2.2's discriminated fair merge of ``b`` and ``c`` onto ``d``."""
    return merge_agent((b, c), d)


def tagging_merge_agent(c: Channel, d: Channel,
                        e: Channel) -> AgentBody:
    """§4.10's fair merge: tag-free output of whatever arrives."""
    return merge_agent((c, d), e)


def tee_agent(source: Channel,
              outputs: Iterable[Channel]) -> AgentBody:
    """Fan a channel out to several consumers.

    Kahn channels are single-consumer queues; a network diagram whose
    channel feeds two processes (Figure 3's ``d`` feeding both P and Q)
    is realized with an explicit duplicator.
    """
    outs = tuple(outputs)
    while True:
        message = yield Recv(source)
        for out in outs:
            yield Send(out, message)


def source_agent(channel: Channel,
                 messages: Iterable[Any]) -> AgentBody:
    """Feed a fixed finite sequence into a channel, then halt."""
    for message in messages:
        yield Send(channel, message)


def sink_agent(channel: Channel) -> AgentBody:
    """Consume everything on a channel (an environment stub)."""
    while True:
        yield Recv(channel)


def brock_a_agent(b: Channel, c: Channel,
                  stored: tuple[int, ...] = (0, 2)) -> AgentBody:
    """Process A of §2.4: fair-merge the input ``b`` with the internally
    stored sequence onto ``c``.

    Fairness discipline: while stored items remain, the agent never
    blocks — it either forwards an available input or emits the next
    stored item (oracle's choice when both are possible).  After the
    store drains it becomes a plain copy.  This matches the paper's
    fair merge: neither source is deferred forever.
    """
    remaining = list(stored)
    while remaining:
        has_input = yield Poll(b)
        if has_input:
            which = yield Choose(2)
            if which == 0:
                message = yield Recv(b)
                yield Send(c, message)
                continue
        yield Send(c, remaining.pop(0))
    while True:
        message = yield Recv(b)
        yield Send(c, message)


def brock_b_agent(c: Channel, b: Channel) -> AgentBody:
    """Process B of §2.4: after two inputs, output first + 1; then
    consume silently (``f`` is constant from there on)."""
    n = yield Recv(c)
    yield Recv(c)
    yield Send(b, n + 1)
    while True:
        yield Recv(c)


def random_bit_agent(b: Channel) -> AgentBody:
    """§4.3: output one arbitrary bit, halt."""
    which = yield Choose(2)
    yield Send(b, "T" if which == 0 else "F")


def random_bit_sequence_agent(c: Channel, b: Channel) -> AgentBody:
    """§4.4: one random bit per tick received."""
    while True:
        yield Recv(c)
        which = yield Choose(2)
        yield Send(b, "T" if which == 0 else "F")


def ticks_agent(b: Channel, limit: Optional[int] = None) -> AgentBody:
    """§4.2: an unending stream of ticks (bounded by ``limit`` for
    finite experiments — the bound models running the machine for a
    finite time, not a property of the process)."""
    count = 0
    while limit is None or count < limit:
        yield Send(b, "T")
        count += 1


def implication_agent(c: Channel, d: Channel) -> AgentBody:
    """§4.5: receive one bit; answer ``F`` on ``F``, anything on ``T``."""
    bit = yield Recv(c)
    if bit == "F":
        yield Send(d, "F")
        return
    which = yield Choose(2)
    yield Send(d, "T" if which == 0 else "F")


def fork_agent(c: Channel, d: Channel, e: Channel) -> AgentBody:
    """§4.6: route each input to ``d`` or ``e``, oracle's choice."""
    while True:
        message = yield Recv(c)
        which = yield Choose(2)
        yield Send(d if which == 0 else e, message)


def fair_random_agent(c: Channel, block: int = 1,
                      rounds: Optional[int] = None) -> AgentBody:
    """§4.7: emit bits with both values occurring (in the limit,
    infinitely often).  Per round: an oracle-chosen burst of up to
    ``block`` copies of one bit, then the other bit — so every finite
    bit string is reachable while fairness holds in the limit."""
    done = 0
    while rounds is None or done < rounds:
        burst = yield Choose(block)
        bit_first = yield Choose(2)
        first = "T" if bit_first == 0 else "F"
        other = "F" if first == "T" else "T"
        for _ in range(burst + 1):
            yield Send(c, first)
        yield Send(c, other)
        done += 1


def finite_ticks_agent(d: Channel) -> AgentBody:
    """§4.8: some finite number of ticks, then halt.

    The number is chosen by repeated coin flips (geometric), mirroring
    the fair-random-sequence implementation: each flip either emits a
    tick and continues or stops.
    """
    while True:
        which = yield Choose(2)
        if which == 1:
            return
        yield Send(d, "T")


def random_number_agent(d: Channel) -> AgentBody:
    """§4.9: output one arbitrary natural number, then halt."""
    count = 0
    while True:
        which = yield Choose(2)
        if which == 1:
            yield Send(d, count)
            return
        count += 1
