"""Exhaustive schedule exploration: *all* computations of a network.

Seeded sampling (``repro.kahn.scheduler``) finds computations with high
probability; this module finds them *all* — a model checker for the
operational semantics.  Every run of a network is determined by its
sequence of decisions (which ready agent steps; which branch a
``Choose``/``RecvAny`` takes).  Generators cannot be forked, so the
decision tree is walked by **replay**: each run follows a script of
decisions, records the arity of every decision point it passes, and the
explorer backtracks by incrementing the last incrementable decision —
depth-first enumeration of the whole tree.

Cost: the number of runs is the number of leaves of the decision tree
(exponential in steps for highly concurrent networks), and each run
replays from scratch.  For the paper-scale networks this is thousands
of cheap runs; the explorer takes ``max_runs`` as a safety valve and
reports truncation honestly.

With exhaustive exploration the paper's central claim becomes a
*checked equality* on finite networks: the set of quiescent traces
equals the set of finite smooth solutions (see
``tests/kahn/test_explore.py`` and bench COV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.channels.channel import Channel
from repro.kahn.runtime import Agent, AgentBody, Oracle, Runtime
from repro.traces.trace import Trace

NetworkFactory = Callable[[], Dict[str, AgentBody]]


class _ReplayOracle(Oracle):
    """Follows a script of decision indices, then defaults to 0;
    records the arity of every decision point encountered."""

    def __init__(self, script: list[int]):
        self.script = script
        self.cursor = 0
        #: (arity, chosen) per decision point, in order.
        self.log: list[tuple[int, int]] = []

    def _decide(self, arity: int) -> int:
        if self.cursor < len(self.script):
            choice = self.script[self.cursor]
        else:
            choice = 0
        self.cursor += 1
        choice %= arity
        self.log.append((arity, choice))
        return choice

    def pick_agent(self, ready: list[Agent]) -> int:
        return self._decide(len(ready))

    def pick_choice(self, agent: Agent, arity: int) -> int:
        del agent
        return self._decide(arity)


@dataclass
class ExplorationResult:
    """Every outcome of a bounded exhaustive exploration."""

    quiescent_traces: set[Trace] = field(default_factory=set)
    #: histories of runs stopped by the step bound (non-quiescent)
    truncated_traces: set[Trace] = field(default_factory=set)
    runs: int = 0
    #: ``True`` when the decision tree was fully enumerated
    complete: bool = True

    def quiescent_count(self) -> int:
        return len(self.quiescent_traces)


def explore_schedules(make_agents: NetworkFactory,
                      channels: Iterable[Channel],
                      max_steps: int = 200,
                      max_runs: int = 100_000) -> ExplorationResult:
    """Enumerate every schedule of the network up to ``max_steps``.

    Returns all distinct quiescent traces (and the truncated histories
    of runs that hit the step bound).  ``complete`` is ``False`` iff
    ``max_runs`` stopped the enumeration early.
    """
    channel_list = list(channels)
    result = ExplorationResult()
    script: Optional[list[int]] = []
    while script is not None:
        if result.runs >= max_runs:
            result.complete = False
            break
        oracle = _ReplayOracle(script)
        runtime = Runtime(make_agents(), channel_list)
        run = runtime.run(oracle, max_steps)
        result.runs += 1
        if run.quiescent:
            result.quiescent_traces.add(run.trace)
        else:
            result.truncated_traces.add(run.trace)
        script = _next_script(oracle.log)
    return result


def _next_script(log: list[tuple[int, int]]) -> Optional[list[int]]:
    """The next decision script in depth-first order, or ``None``.

    Increment the last decision whose chosen index can still grow;
    drop everything after it (those decision points may not even exist
    on the new path).
    """
    for i in range(len(log) - 1, -1, -1):
        arity, chosen = log[i]
        if chosen + 1 < arity:
            return [choice for _, choice in log[:i]] + [chosen + 1]
    return None


def exhaustive_quiescent_traces(make_agents: NetworkFactory,
                                channels: Iterable[Channel],
                                max_steps: int = 200,
                                max_runs: int = 100_000
                                ) -> set[Trace]:
    """All quiescent traces; raises if the exploration was truncated."""
    result = explore_schedules(make_agents, channels, max_steps,
                               max_runs)
    if not result.complete:
        raise RuntimeError(
            f"exploration truncated after {result.runs} runs; raise "
            "max_runs or reduce the network"
        )
    return result.quiescent_traces
