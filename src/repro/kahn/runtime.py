"""The operational network runtime.

Channels are unbounded FIFO queues (Kahn's asynchronous, lossless,
order-preserving channels); agents run one effect at a time under a
scheduler.  The runtime records the global communication history (sends
only) and detects *quiescence*: every agent halted, or blocked on a
receive whose every candidate channel is empty.  Quiescent histories are
the paper's traces; non-quiescent ones are the communication histories
that the process is guaranteed to extend (§3.1.1).

Two robustness extensions beyond the pristine Kahn picture:

* **Agent failure capture** — an exception raised inside an agent body
  moves that agent to :attr:`AgentState.FAILED` and records an
  :class:`AgentFailure` (exception + traceback + step) instead of
  destroying the whole run; the other agents keep running and the
  partial history survives in the :class:`RunResult`.  Errors raised by
  the runtime itself while *interpreting* an effect (unknown channel,
  alphabet violation) still propagate — they are wiring bugs, not
  process behaviour.
* **Channel fault injection** — an optional *fault plan* (see
  :mod:`repro.faults`) intercepts sends.  On a faulted channel the
  recorded event stream is the *post-fault delivery stream*: a dropped
  message produces no event, a duplicated one produces two, a delayed
  one appears at release time.  This is the §4.6 Fork reading of a
  faulty channel — the loss is internal nondeterminism, and the trace
  shows only what the channel actually transmitted.
"""

from __future__ import annotations

import enum
import traceback as _traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.kahn.effects import (
    Choose,
    Effect,
    Halt,
    Poll,
    Recv,
    RecvAny,
    Send,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import stable_digest
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.traces.trace import Trace

#: An agent body: a generator yielding effects and receiving answers.
AgentBody = Generator[Effect, Any, None]
#: A factory producing a fresh agent body per run.
AgentFactory = Callable[[], AgentBody]


class AgentState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    HALTED = "halted"
    #: the body raised; captured, the rest of the network keeps running
    FAILED = "failed"


@dataclass
class AgentFailure:
    """Post-mortem record of one agent-body exception."""

    agent: str
    step: int
    error: BaseException
    traceback: str

    def __str__(self) -> str:
        return (f"{self.agent} failed at step {self.step}: "
                f"{type(self.error).__name__}: {self.error}")


class Agent:
    """A named operational process instance."""

    def __init__(self, name: str, body: AgentBody):
        self.name = name
        self.body = body
        self.state = AgentState.READY
        #: channels the agent is blocked waiting on (when BLOCKED)
        self.waiting_on: tuple[Channel, ...] = ()
        #: the pending effect to resume (a Recv/RecvAny while blocked)
        self.pending: Optional[Effect] = None
        #: the most recent failure (survives a supervised restart)
        self.failure: Optional[AgentFailure] = None
        self._next_input: Any = None
        self._started = False

    def __repr__(self) -> str:
        return f"Agent({self.name!r}, {self.state.value})"


@dataclass
class RunResult:
    """Outcome of a bounded network run."""

    trace: Trace
    quiescent: bool
    steps: int
    halted_agents: list[str] = field(default_factory=list)
    blocked_agents: list[str] = field(default_factory=list)
    #: agents left in ``FAILED`` state at the end of the run
    failed_agents: list[str] = field(default_factory=list)
    #: last failure per agent (includes agents later restarted by a
    #: supervisor — membership in ``failed_agents`` is the terminal test)
    failures: dict[str, AgentFailure] = field(default_factory=dict)
    #: per-channel residual contents: queued-but-unconsumed messages,
    #: plus anything still held in flight by a fault model
    undelivered: dict[str, list] = field(default_factory=dict)
    #: per-run metrics summary (steps/sends/blocks per agent and
    #: channel, fault actions, …) when the run was traced; else empty
    metrics: dict = field(default_factory=dict)
    #: the recorded :class:`~repro.obs.recorder.Schedule` when the run
    #: was made with ``record=True``; else ``None``
    schedule: Optional[Any] = None

    def events(self) -> list[Event]:
        return list(self.trace)

    def digest(self) -> str:
        """Stable content hash of the run's observable outcome.

        Covers the event history and the terminal shape of the network
        (quiescence, step count, agent states, residual channel
        contents) — everything a replay must reproduce — and excludes
        wall-clock artifacts (metrics, tracebacks).  Two runs with
        equal digests are the same computation; "replay equals
        original" is the assertion ``replayed.digest() == original
        .digest()``.
        """
        return stable_digest(self._digest_payload())

    def _digest_payload(self) -> dict:
        return {
            "trace": [[e.channel.name, repr(e.message)]
                      for e in self.trace],
            "quiescent": self.quiescent,
            "steps": self.steps,
            "halted": sorted(self.halted_agents),
            "blocked": sorted(self.blocked_agents),
            "failed": sorted(self.failed_agents),
            "undelivered": {
                name: [repr(m) for m in messages]
                for name, messages in sorted(self.undelivered.items())
            },
        }


class Oracle:
    """Resolves the two kinds of nondeterminism: which ready agent runs
    next, and which branch a ``Choose``/``RecvAny`` takes.

    The base class is deterministic (always the first option); see
    :mod:`repro.kahn.scheduler` for random and scripted oracles.
    """

    def pick_agent(self, ready: list[Agent]) -> int:
        del ready
        return 0

    def pick_choice(self, agent: Agent, arity: int) -> int:
        del agent, arity
        return 0


class Runtime:
    """Executes a set of agents over shared channels.

    ``fault_plan`` (optional, duck-typed — see
    :class:`repro.faults.plan.FaultPlan`) intercepts channel sends and
    may wrap agent bodies with crash/stall injectors.
    """

    def __init__(self, agents: dict[str, AgentBody],
                 channels: Iterable[Channel],
                 fault_plan: Optional[Any] = None,
                 tracer: Optional[Tracer] = None):
        self.fault_plan = fault_plan
        if fault_plan is not None:
            agents = {name: fault_plan.wrap_agent(name, body)
                      for name, body in agents.items()}
        self.agents = [Agent(name, body)
                       for name, body in agents.items()]
        self.queues: dict[Channel, deque] = {
            c: deque() for c in channels
        }
        self.history: list[Event] = []
        self.steps = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: hot loops test this one flag; everything else is behind it
        self._tracing = self.tracer.enabled
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self._tracing else None
        )

    # -- channel plumbing --------------------------------------------------

    def _queue(self, channel: Channel) -> deque:
        try:
            return self.queues[channel]
        except KeyError:
            wired = ", ".join(sorted(c.name for c in self.queues))
            raise KeyError(
                f"channel {channel.name!r} is not part of this network "
                f"(wired channels: {wired or 'none'})"
            ) from None

    def send(self, channel: Channel, message: Any) -> None:
        if not channel.admits(message):
            raise ValueError(
                f"message {message!r} not admitted by "
                f"channel {channel.name!r}"
            )
        self._queue(channel)  # reject unknown channels up front
        if self.fault_plan is None:
            self._deliver(channel, message)
            return
        if not self._tracing:
            for delivered in self.fault_plan.on_send(channel, message):
                self._deliver(channel, delivered)
            return
        held_before = self.fault_plan.held_count()
        deliveries = self.fault_plan.on_send(channel, message)
        self._trace_fault_send(channel, message, deliveries,
                               self.fault_plan.held_count()
                               - held_before)
        for delivered in deliveries:
            self._deliver(channel, delivered)

    def _trace_fault_send(self, channel: Channel, message: Any,
                          deliveries: list, held_delta: int) -> None:
        """Narrate what the fault plan did to one send."""
        if len(deliveries) == 1 and deliveries[0] == message \
                and held_delta == 0:
            action = "pass"
        elif not deliveries and held_delta > 0:
            action = "hold"
        elif not deliveries:
            action = "drop"
        elif len(deliveries) > 1:
            action = "duplicate"
        elif deliveries[0] != message:
            action = "corrupt"
        else:
            action = "perturb"
        self.tracer.event(
            "fault.send", category="fault", track="faults",
            channel=channel.name, message=message, action=action,
            delivered=len(deliveries), held=held_delta, step=self.steps)
        self.metrics.counter(
            f"faults.{action}.{channel.name}").inc()

    def _deliver(self, channel: Channel, message: Any) -> None:
        """Put ``message`` on the wire: queue it and record the event."""
        if not channel.admits(message):
            raise ValueError(
                f"fault model produced message {message!r} not admitted "
                f"by channel {channel.name!r}"
            )
        self._queue(channel).append(message)
        self.history.append(Event(channel, message))

    def available(self, channel: Channel) -> bool:
        return bool(self._queue(channel))

    # -- agent stepping ------------------------------------------------------

    def ready_agents(self) -> list[Agent]:
        """Agents that can make progress now.

        A blocked agent becomes ready when any of its awaited channels
        has data.
        """
        out = []
        for a in self.agents:
            if a.state in (AgentState.HALTED, AgentState.FAILED):
                continue
            if a.state is AgentState.BLOCKED:
                if any(self.available(c) for c in a.waiting_on):
                    out.append(a)
            else:
                out.append(a)
        return out

    def is_quiescent(self) -> bool:
        """No agent can make progress and no message is in flight: the
        history is a quiescent trace."""
        if self.fault_plan is not None and self.fault_plan.held_count():
            return False
        return not self.ready_agents()

    def step(self, oracle: Oracle) -> bool:
        """Run one effect of one ready agent.  Returns ``False`` when
        the network is quiescent (no step taken).

        When every agent is stuck but a fault model still holds
        messages in flight, the step flushes them instead — a faulty
        channel may delay, but (short of dropping) must eventually
        deliver, so quiescence is only reported once nothing is held.
        """
        ready = self.ready_agents()
        if not ready:
            if (self.fault_plan is not None
                    and self.fault_plan.held_count()):
                for channel, message in self.fault_plan.flush():
                    self._deliver(channel, message)
                    if self._tracing:
                        self.tracer.event(
                            "fault.flush", category="fault",
                            track="faults", channel=channel.name,
                            message=message, step=self.steps)
                self.steps += 1
                return True
            return False
        agent = ready[oracle.pick_agent(ready) % len(ready)]
        if self._tracing:
            self.tracer.event(
                "oracle.pick_agent", category="scheduler",
                track="scheduler", step=self.steps,
                ready=[a.name for a in ready], chosen=agent.name)
            self.metrics.counter("oracle.agent_picks").inc()
            self.metrics.counter(f"agent.steps.{agent.name}").inc()
            self.metrics.gauge("runtime.ready_width").set(len(ready))
            with self.tracer.span("step", category="runtime",
                                  track=agent.name, step=self.steps):
                self._run_one_effect(agent, oracle)
        else:
            self._run_one_effect(agent, oracle)
        self.steps += 1
        if self.fault_plan is not None:
            for channel, message in self.fault_plan.on_step():
                self._deliver(channel, message)
                if self._tracing:
                    self.tracer.event(
                        "fault.release", category="fault",
                        track="faults", channel=channel.name,
                        message=message, step=self.steps)
        return True

    def _advance(self, agent: Agent, value: Any) -> Optional[Effect]:
        """Feed ``value`` into the agent and get its next effect.

        A ``StopIteration`` is a normal halt; any other exception from
        the body is an agent failure, captured rather than propagated.
        """
        try:
            if not agent._started:
                agent._started = True
                return next(agent.body)
            return agent.body.send(value)
        except StopIteration:
            agent.state = AgentState.HALTED
            if self._tracing:
                self.tracer.event(
                    "agent.halt", category="runtime",
                    track=agent.name, step=self.steps)
                self.metrics.counter("agent.halts").inc()
            return None
        except Exception as error:
            agent.state = AgentState.FAILED
            agent.failure = AgentFailure(
                agent=agent.name, step=self.steps, error=error,
                traceback=_traceback.format_exc(),
            )
            if self._tracing:
                self.tracer.event(
                    "agent.fail", category="runtime",
                    track=agent.name, step=self.steps,
                    error=f"{type(error).__name__}: {error}")
                self.metrics.counter("agent.failures").inc()
            return None

    def _run_one_effect(self, agent: Agent, oracle: Oracle) -> None:
        # resume a blocked receive, or fetch the next effect
        if agent.state is AgentState.BLOCKED:
            effect = agent.pending
            agent.state = AgentState.READY
            agent.pending = None
            agent.waiting_on = ()
        else:
            effect = self._advance(agent, agent._next_input)
            agent._next_input = None
        if effect is None:
            return
        self._interpret(agent, effect, oracle)

    def _interpret(self, agent: Agent, effect: Effect,
                   oracle: Oracle) -> None:
        tracing = self._tracing
        if isinstance(effect, Send):
            if tracing:
                self.tracer.event(
                    "send", category="runtime", track=agent.name,
                    channel=effect.channel.name,
                    message=effect.message, step=self.steps)
                self.metrics.counter(
                    f"channel.sends.{effect.channel.name}").inc()
            self.send(effect.channel, effect.message)
            agent._next_input = None
        elif isinstance(effect, Recv):
            if self.available(effect.channel):
                agent._next_input = self._queue(
                    effect.channel).popleft()
                if tracing:
                    self.tracer.event(
                        "recv", category="runtime", track=agent.name,
                        channel=effect.channel.name,
                        message=agent._next_input, step=self.steps)
                    self.metrics.counter(
                        f"channel.recvs.{effect.channel.name}").inc()
            else:
                self._block(agent, effect, (effect.channel,))
        elif isinstance(effect, RecvAny):
            live = [c for c in effect.channels if self.available(c)]
            if live:
                idx = oracle.pick_choice(agent, len(live)) % len(live)
                channel = live[idx]
                agent._next_input = (
                    channel, self._queue(channel).popleft()
                )
                if tracing:
                    self.tracer.event(
                        "oracle.pick_choice", category="scheduler",
                        track="scheduler", agent=agent.name,
                        options=[c.name for c in live],
                        chosen=channel.name, step=self.steps)
                    self.tracer.event(
                        "recv", category="runtime", track=agent.name,
                        channel=channel.name,
                        message=agent._next_input[1], step=self.steps)
                    self.metrics.counter("oracle.choice_picks").inc()
                    self.metrics.counter(
                        f"channel.recvs.{channel.name}").inc()
            else:
                self._block(agent, effect, effect.channels)
        elif isinstance(effect, Poll):
            agent._next_input = self.available(effect.channel)
            if tracing:
                self.tracer.event(
                    "poll", category="runtime", track=agent.name,
                    channel=effect.channel.name,
                    available=agent._next_input, step=self.steps)
        elif isinstance(effect, Choose):
            agent._next_input = (
                oracle.pick_choice(agent, effect.arity) % effect.arity
            )
            if tracing:
                self.tracer.event(
                    "oracle.pick_choice", category="scheduler",
                    track="scheduler", agent=agent.name,
                    arity=effect.arity, chosen=agent._next_input,
                    step=self.steps)
                self.metrics.counter("oracle.choice_picks").inc()
        elif isinstance(effect, Halt):
            agent.body.close()
            agent.state = AgentState.HALTED
            if tracing:
                self.tracer.event(
                    "agent.halt", category="runtime",
                    track=agent.name, step=self.steps)
                self.metrics.counter("agent.halts").inc()
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown effect {effect!r}")

    def _block(self, agent: Agent, effect: Effect,
               channels: tuple[Channel, ...]) -> None:
        agent.state = AgentState.BLOCKED
        agent.pending = effect
        agent.waiting_on = channels
        if self._tracing:
            self.tracer.event(
                "agent.block", category="runtime", track=agent.name,
                waiting_on=[c.name for c in channels],
                step=self.steps)
            self.metrics.counter("agent.blocks").inc()

    # -- running --------------------------------------------------------------

    def undelivered(self) -> dict[str, list]:
        """Residual per-channel contents, keyed by channel name."""
        out = {c.name: list(q) for c, q in self.queues.items() if q}
        if self.fault_plan is not None:
            for channel, held in self.fault_plan.held_messages().items():
                if held:
                    out.setdefault(channel.name, []).extend(held)
        return out

    def _metrics_summary(self) -> dict:
        if self.metrics is None:
            return {}
        self.metrics.gauge("runtime.history_len").set(
            len(self.history))
        self.metrics.gauge("runtime.steps").set(self.steps)
        return self.metrics.summary()

    def _result(self) -> RunResult:
        return RunResult(
            trace=Trace.finite(self.history),
            quiescent=self.is_quiescent(),
            steps=self.steps,
            halted_agents=[a.name for a in self.agents
                           if a.state is AgentState.HALTED],
            blocked_agents=[a.name for a in self.agents
                            if a.state is AgentState.BLOCKED],
            failed_agents=[a.name for a in self.agents
                           if a.state is AgentState.FAILED],
            failures={a.name: a.failure for a in self.agents
                      if a.failure is not None},
            undelivered=self.undelivered(),
            metrics=self._metrics_summary(),
        )

    def run(self, oracle: Oracle, max_steps: int) -> RunResult:
        """Run until quiescence or the step bound."""
        with self.tracer.span(
                "runtime.run", category="runtime", track="scheduler",
                max_steps=max_steps,
                agents=[a.name for a in self.agents]) as span:
            while self.steps < max_steps:
                if not self.step(oracle):
                    break
            span.annotate(steps=self.steps,
                          history_len=len(self.history))
        return self._result()
