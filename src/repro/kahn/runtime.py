"""The operational network runtime.

Channels are unbounded FIFO queues (Kahn's asynchronous, lossless,
order-preserving channels); agents run one effect at a time under a
scheduler.  The runtime records the global communication history (sends
only) and detects *quiescence*: every agent halted, or blocked on a
receive whose every candidate channel is empty.  Quiescent histories are
the paper's traces; non-quiescent ones are the communication histories
that the process is guaranteed to extend (§3.1.1).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.kahn.effects import (
    Choose,
    Effect,
    Halt,
    Poll,
    Recv,
    RecvAny,
    Send,
)
from repro.traces.trace import Trace

#: An agent body: a generator yielding effects and receiving answers.
AgentBody = Generator[Effect, Any, None]
#: A factory producing a fresh agent body per run.
AgentFactory = Callable[[], AgentBody]


class AgentState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    HALTED = "halted"


class Agent:
    """A named operational process instance."""

    def __init__(self, name: str, body: AgentBody):
        self.name = name
        self.body = body
        self.state = AgentState.READY
        #: channels the agent is blocked waiting on (when BLOCKED)
        self.waiting_on: tuple[Channel, ...] = ()
        #: the pending effect to resume (a Recv/RecvAny while blocked)
        self.pending: Optional[Effect] = None
        self._next_input: Any = None
        self._started = False

    def __repr__(self) -> str:
        return f"Agent({self.name!r}, {self.state.value})"


@dataclass
class RunResult:
    """Outcome of a bounded network run."""

    trace: Trace
    quiescent: bool
    steps: int
    halted_agents: list[str] = field(default_factory=list)
    blocked_agents: list[str] = field(default_factory=list)

    def events(self) -> list[Event]:
        return list(self.trace)


class Oracle:
    """Resolves the two kinds of nondeterminism: which ready agent runs
    next, and which branch a ``Choose``/``RecvAny`` takes.

    The base class is deterministic (always the first option); see
    :mod:`repro.kahn.scheduler` for random and scripted oracles.
    """

    def pick_agent(self, ready: list[Agent]) -> int:
        del ready
        return 0

    def pick_choice(self, agent: Agent, arity: int) -> int:
        del agent, arity
        return 0


class Runtime:
    """Executes a set of agents over shared channels."""

    def __init__(self, agents: dict[str, AgentBody],
                 channels: Iterable[Channel]):
        self.agents = [Agent(name, body)
                       for name, body in agents.items()]
        self.queues: dict[Channel, deque] = {
            c: deque() for c in channels
        }
        self.history: list[Event] = []
        self.steps = 0

    # -- channel plumbing --------------------------------------------------

    def _queue(self, channel: Channel) -> deque:
        try:
            return self.queues[channel]
        except KeyError:
            raise KeyError(
                f"channel {channel.name!r} is not part of this network"
            ) from None

    def send(self, channel: Channel, message: Any) -> None:
        if not channel.admits(message):
            raise ValueError(
                f"message {message!r} not admitted by "
                f"channel {channel.name!r}"
            )
        self._queue(channel).append(message)
        self.history.append(Event(channel, message))

    def available(self, channel: Channel) -> bool:
        return bool(self._queue(channel))

    # -- agent stepping ------------------------------------------------------

    def ready_agents(self) -> list[Agent]:
        """Agents that can make progress now.

        A blocked agent becomes ready when any of its awaited channels
        has data.
        """
        out = []
        for a in self.agents:
            if a.state is AgentState.HALTED:
                continue
            if a.state is AgentState.BLOCKED:
                if any(self.available(c) for c in a.waiting_on):
                    out.append(a)
            else:
                out.append(a)
        return out

    def is_quiescent(self) -> bool:
        """No agent can make progress: the history is a quiescent trace."""
        return not self.ready_agents()

    def step(self, oracle: Oracle) -> bool:
        """Run one effect of one ready agent.  Returns ``False`` when
        the network is quiescent (no step taken)."""
        ready = self.ready_agents()
        if not ready:
            return False
        agent = ready[oracle.pick_agent(ready) % len(ready)]
        self._run_one_effect(agent, oracle)
        self.steps += 1
        return True

    def _advance(self, agent: Agent, value: Any) -> Optional[Effect]:
        """Feed ``value`` into the agent and get its next effect."""
        try:
            if not agent._started:
                agent._started = True
                return next(agent.body)
            return agent.body.send(value)
        except StopIteration:
            agent.state = AgentState.HALTED
            return None

    def _run_one_effect(self, agent: Agent, oracle: Oracle) -> None:
        # resume a blocked receive, or fetch the next effect
        if agent.state is AgentState.BLOCKED:
            effect = agent.pending
            agent.state = AgentState.READY
            agent.pending = None
            agent.waiting_on = ()
        else:
            effect = self._advance(agent, agent._next_input)
            agent._next_input = None
        if effect is None:
            return
        self._interpret(agent, effect, oracle)

    def _interpret(self, agent: Agent, effect: Effect,
                   oracle: Oracle) -> None:
        if isinstance(effect, Send):
            self.send(effect.channel, effect.message)
            agent._next_input = None
        elif isinstance(effect, Recv):
            if self.available(effect.channel):
                agent._next_input = self._queue(
                    effect.channel).popleft()
            else:
                self._block(agent, effect, (effect.channel,))
        elif isinstance(effect, RecvAny):
            live = [c for c in effect.channels if self.available(c)]
            if live:
                idx = oracle.pick_choice(agent, len(live)) % len(live)
                channel = live[idx]
                agent._next_input = (
                    channel, self._queue(channel).popleft()
                )
            else:
                self._block(agent, effect, effect.channels)
        elif isinstance(effect, Poll):
            agent._next_input = self.available(effect.channel)
        elif isinstance(effect, Choose):
            agent._next_input = (
                oracle.pick_choice(agent, effect.arity) % effect.arity
            )
        elif isinstance(effect, Halt):
            agent.body.close()
            agent.state = AgentState.HALTED
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown effect {effect!r}")

    def _block(self, agent: Agent, effect: Effect,
               channels: tuple[Channel, ...]) -> None:
        agent.state = AgentState.BLOCKED
        agent.pending = effect
        agent.waiting_on = channels

    # -- running --------------------------------------------------------------

    def run(self, oracle: Oracle, max_steps: int) -> RunResult:
        """Run until quiescence or the step bound."""
        while self.steps < max_steps:
            if not self.step(oracle):
                break
        return RunResult(
            trace=Trace.finite(self.history),
            quiescent=self.is_quiescent(),
            steps=self.steps,
            halted_agents=[a.name for a in self.agents
                           if a.state is AgentState.HALTED],
            blocked_agents=[a.name for a in self.agents
                            if a.state is AgentState.BLOCKED],
        )
