"""Operational substrate: an executable Kahn-style network simulator.

Agents are generator coroutines over unbounded FIFO channels; oracles
resolve scheduling and choice nondeterminism; quiescent traces are
collected and cross-validated against the denotational smooth-solution
semantics (the paper's "computations ⇔ smooth solutions").
"""

from repro.kahn import agents
from repro.kahn.effects import Choose, Halt, Poll, Recv, RecvAny, Send
from repro.kahn.quiescence import (
    TraceSample,
    collect_traces,
    describe_run,
    quiescent_traces,
)
from repro.kahn.runtime import (
    Agent,
    AgentFailure,
    AgentState,
    Oracle,
    RunResult,
    Runtime,
)
from repro.kahn.scheduler import (
    FirstOracle,
    RandomOracle,
    RoundRobinOracle,
    ScriptedOracle,
    run_network,
    sample_runs,
)
from repro.obs.recorder import ScheduleExhausted
from repro.kahn.explore import (
    ExplorationResult,
    exhaustive_quiescent_traces,
    explore_schedules,
)
from repro.kahn.wiring import OperationalNetwork
from repro.kahn.validate import (
    CrossCheckReport,
    check_denotational_completeness,
    check_operational_soundness,
)

__all__ = [
    "Agent",
    "AgentFailure",
    "AgentState",
    "Choose",
    "CrossCheckReport",
    "ExplorationResult",
    "FirstOracle",
    "Halt",
    "OperationalNetwork",
    "Oracle",
    "Poll",
    "RandomOracle",
    "Recv",
    "RecvAny",
    "RoundRobinOracle",
    "RunResult",
    "Runtime",
    "ScheduleExhausted",
    "ScriptedOracle",
    "Send",
    "TraceSample",
    "agents",
    "check_denotational_completeness",
    "check_operational_soundness",
    "collect_traces",
    "describe_run",
    "exhaustive_quiescent_traces",
    "explore_schedules",
    "quiescent_traces",
    "run_network",
    "sample_runs",
]
