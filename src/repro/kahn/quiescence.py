"""Collecting quiescent traces from operational runs.

A quiescent trace is a communication history after which no agent can
make progress (§3.1.1).  Bounded runs of networks with unending
behaviour never reach quiescence — their histories are *prefixes* of
(infinite) quiescent traces; :class:`TraceSample` keeps the two kinds
apart so validation can treat them correctly (prefixes need only the
smoothness condition, full quiescent traces also the limit condition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.channels.channel import Channel
from repro.kahn.runtime import AgentBody, RunResult
from repro.kahn.scheduler import sample_runs
from repro.traces.trace import Trace

#: Builds a fresh agent dict per run.
NetworkFactory = Callable[[], dict[str, AgentBody]]


@dataclass
class TraceSample:
    """Traces gathered from many oracle-driven runs of one network."""

    quiescent: list[Trace] = field(default_factory=list)
    prefixes: list[Trace] = field(default_factory=list)
    runs: int = 0

    def distinct_quiescent(self) -> set[Trace]:
        return set(self.quiescent)

    def distinct_prefixes(self) -> set[Trace]:
        return set(self.prefixes)

    def all_traces(self) -> list[Trace]:
        return self.quiescent + self.prefixes


def collect_traces(make_agents: NetworkFactory,
                   channels: Iterable[Channel],
                   seeds: Iterable[int],
                   max_steps: int = 10_000,
                   make_fault_plan=None) -> TraceSample:
    """Run the network once per seed and bucket the resulting traces.

    ``make_fault_plan`` (fresh plan per run) samples the network's
    behaviour under channel faults — the quiescent bucket then holds
    the traces the *perturbed* network can produce.
    """
    sample = TraceSample()
    for result in sample_runs(make_agents, channels, seeds,
                              max_steps=max_steps,
                              make_fault_plan=make_fault_plan):
        sample.runs += 1
        if result.quiescent:
            sample.quiescent.append(result.trace)
        else:
            sample.prefixes.append(result.trace)
    return sample


def quiescent_traces(make_agents: NetworkFactory,
                     channels: Iterable[Channel],
                     seeds: Iterable[int],
                     max_steps: int = 10_000) -> set[Trace]:
    """Just the distinct quiescent traces."""
    return collect_traces(
        make_agents, channels, seeds, max_steps
    ).distinct_quiescent()


def describe_run(result: RunResult) -> str:
    """One-line human-readable summary of a run."""
    kind = "quiescent" if result.quiescent else "prefix"
    line = (
        f"{kind} after {result.steps} steps: {result.trace!r} "
        f"(halted: {result.halted_agents}, "
        f"blocked: {result.blocked_agents})"
    )
    if result.failed_agents:
        line += f" (FAILED: {result.failed_agents})"
    return line
