"""Verdict objects for smooth-solution checks.

Bounded checking needs honest bookkeeping: a verdict records not just a
boolean but *how much* was checked, whether the answer is exact or
certified-only-to-depth, and — on failure — the concrete witnessing
prefix pair, which is how the paper argues its negative examples (the
sequence ``z`` of §2.3 fails at ``u = ε, v = ⟨-1⟩``; Brock–Ackermann's
``0 1 2`` fails at ``odd(⟨0 1⟩) ⋢ f(⟨0⟩)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.traces.trace import Trace


@dataclass(frozen=True)
class SmoothnessViolation:
    """A pre-pair ``u pre v`` with ``f(v) ⋢ g(u)``."""

    u: Trace
    v: Trace
    lhs_of_v: Any
    rhs_of_u: Any
    description: str

    def __str__(self) -> str:
        return (
            f"smoothness fails in {self.description}: "
            f"f({self.v!r}) = {self.lhs_of_v!r} ⋢ "
            f"g({self.u!r}) = {self.rhs_of_u!r}"
        )


@dataclass(frozen=True)
class LimitReport:
    """Outcome of the limit condition ``f(t) = g(t)``."""

    holds: bool
    exact: bool
    lhs_value: Any
    rhs_value: Any
    depth: int

    def __str__(self) -> str:
        verdict = "holds" if self.holds else "fails"
        mode = "exactly" if self.exact else f"to depth {self.depth}"
        return f"limit condition {verdict} ({mode})"


@dataclass(frozen=True)
class SolutionVerdict:
    """Full verdict: is ``trace`` a smooth solution of the description?"""

    trace: Trace
    description_name: str
    limit: LimitReport
    violations: list[SmoothnessViolation] = field(default_factory=list)
    depth: int = 0
    #: ``True`` when both conditions were decided exactly (finite trace,
    #: finite values); ``False`` means "no counterexample to ``depth``".
    exact: bool = False

    @property
    def is_smooth(self) -> bool:
        return self.limit.holds and not self.violations

    @property
    def is_solution(self) -> bool:
        """The limit condition alone (a "solution of the equations")."""
        return self.limit.holds

    @property
    def first_violation(self) -> SmoothnessViolation | None:
        return self.violations[0] if self.violations else None

    def __str__(self) -> str:
        if self.is_smooth:
            mode = "exact" if self.exact else f"to depth {self.depth}"
            return (
                f"{self.trace!r} is a smooth solution of "
                f"{self.description_name} ({mode})"
            )
        reasons = []
        if not self.limit.holds:
            reasons.append(str(self.limit))
        reasons.extend(str(v) for v in self.violations[:3])
        return (
            f"{self.trace!r} is NOT a smooth solution of "
            f"{self.description_name}: " + "; ".join(reasons)
        )
