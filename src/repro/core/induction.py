"""Smooth-solution induction (§8.4).

The rule: for an admissible predicate ``φ`` and description ``f ⟵ g``,

    φ(⊥)   and   [u ⊑ v ∧ f(v) ⊑ g(u) ∧ φ(u)] ⇒ φ(v)

imply ``φ(z)`` for every smooth solution ``z``.  For the cpo of traces
the rule strengthens ``u ⊑ v`` to ``u pre v``.

We make the rule executable in two pieces:

* :func:`check_premises_on_tree` verifies the step premise on every edge
  of the §3.3 solver tree up to a depth (the edges are exactly the pairs
  ``u pre v`` with ``f(v) ⊑ g(u)``), plus ``φ(⊥)``;
* :func:`conclude` then asserts ``φ`` on any smooth solution's prefixes
  — justified by the rule, and double-checked directly.

The paper (crediting Trakhtenbrot) notes the rule is incomplete — it
ignores the limit condition; ``tests/core/test_induction.py`` exhibits a
property that holds of all smooth solutions but cannot be derived by
the rule, reproducing that observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.description import DEFAULT_DEPTH, Description
from repro.core.solver import SmoothSolutionSolver
from repro.traces.trace import Trace

#: A (decidable approximation of an admissible) predicate on traces.
TracePredicate = Callable[[Trace], bool]


@dataclass(frozen=True)
class PremiseFailure:
    """A tree edge on which the induction step fails."""

    u: Trace
    v: Trace

    def __str__(self) -> str:
        return f"induction step fails on {self.u!r} pre {self.v!r}"


@dataclass
class InductionReport:
    """Outcome of checking the rule's premises on the solver tree."""

    base_holds: bool
    step_failures: list[PremiseFailure]
    edges_checked: int
    depth: int

    @property
    def premises_hold(self) -> bool:
        return self.base_holds and not self.step_failures


def check_premises_on_tree(solver: SmoothSolutionSolver,
                           phi: TracePredicate,
                           max_depth: int) -> InductionReport:
    """Verify ``φ(⊥)`` and the step premise on every tree edge to depth.

    The solver tree's edges are precisely the pairs ``u pre v`` with
    ``f(v) ⊑ g(u)`` — the strengthened trace form of the rule's
    hypothesis — so edge-wise checking is exactly the rule's premise,
    restricted to the explored depth.
    """
    base = phi(Trace.empty())
    failures: list[PremiseFailure] = []
    edges = 0
    level = [Trace.empty()]
    for _ in range(max_depth):
        next_level = []
        for u in level:
            for v in solver.children(u):
                edges += 1
                if phi(u) and not phi(v):
                    failures.append(PremiseFailure(u=u, v=v))
                next_level.append(v)
        level = next_level
        if not level:
            break
    return InductionReport(
        base_holds=base,
        step_failures=failures,
        edges_checked=edges,
        depth=max_depth,
    )


def conclude(report: InductionReport, description: Description,
             solution: Trace, depth: int = DEFAULT_DEPTH) -> bool:
    """Apply the rule: premises ⇒ ``φ`` holds of the smooth solution.

    Returns ``True`` iff the premises were verified and ``solution`` is
    (to ``depth``) a smooth solution — under the rule, ``φ(solution)``
    then holds.  The caller may independently confirm ``φ`` on prefixes
    via :func:`holds_on_prefixes`.
    """
    return (
        report.premises_hold
        and description.is_smooth_solution(solution, depth)
    )


def holds_on_prefixes(phi: TracePredicate, t: Trace,
                      depth: int) -> bool:
    """Direct check of ``φ`` on every prefix of ``t`` up to ``depth``.

    For admissible ``φ`` (preserved by lubs of chains), truth on all
    finite prefixes extends to the (possibly infinite) trace itself.
    """
    for n in range(depth + 1):
        prefix = t.take(n)
        if not phi(prefix):
            return False
        if prefix.length() < n:
            break
    return True
