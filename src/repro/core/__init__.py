"""The paper's core contribution: descriptions and smooth solutions.

Modules:

* :mod:`repro.core.description` — descriptions ``f ⟵ g``, smooth
  solutions, Lemma 2, Theorem 1, combination, description systems (§3.2);
* :mod:`repro.core.solution` — verdict/report types;
* :mod:`repro.core.solver` — the §3.3 tree search;
* :mod:`repro.core.search` — exploration strategies, ranking
  heuristics, and the query layer over the §3.3 tree;
* :mod:`repro.core.composition` — Theorem 2 (§5);
* :mod:`repro.core.elimination` — Theorems 5/6 (§7);
* :mod:`repro.core.chains` — generalized smooth solutions, Theorem 4 (§6);
* :mod:`repro.core.fixpoint_bridge` — Kahn semantics of deterministic
  systems (§2.1);
* :mod:`repro.core.induction` — smooth-solution induction (§8.4).
"""

from repro.core.chains import (
    GeneralDescription,
    dominated_by_kleene,
    id_description,
    kleene_witness_chain,
    theorem4_unique_smooth_solution,
)
from repro.core.composition import Component, ComposedNetwork, pipeline
from repro.core.description import (
    DEFAULT_DEPTH,
    Description,
    DescriptionSystem,
    combine,
)
from repro.core.elimination import (
    EliminationError,
    EliminationReport,
    check_conditions,
    defining_description,
    eliminate_channel,
    eliminate_channels,
    theorem5_holds,
    theorem6_holds,
    theorem6_witness,
)
from repro.core.fixpoint_bridge import (
    KahnSemantics,
    KahnSystem,
    NotDeterministicError,
    kahn_least_fixpoint,
)
from repro.core.induction import (
    InductionReport,
    check_premises_on_tree,
    conclude,
    holds_on_prefixes,
)
from repro.core.solution import (
    LimitReport,
    SmoothnessViolation,
    SolutionVerdict,
)
from repro.core.search import (
    HEURISTICS,
    STRATEGIES,
    QueryResult,
    parse_predicate,
)
from repro.core.solver import (
    SmoothSolutionSolver,
    SolverResult,
    alphabet_candidates,
    rhs_guided_candidates,
    solve,
    solve_query,
)

__all__ = [
    "DEFAULT_DEPTH",
    "Component",
    "ComposedNetwork",
    "Description",
    "DescriptionSystem",
    "EliminationError",
    "EliminationReport",
    "GeneralDescription",
    "HEURISTICS",
    "InductionReport",
    "KahnSemantics",
    "KahnSystem",
    "LimitReport",
    "NotDeterministicError",
    "QueryResult",
    "STRATEGIES",
    "SmoothSolutionSolver",
    "SmoothnessViolation",
    "SolutionVerdict",
    "SolverResult",
    "alphabet_candidates",
    "check_conditions",
    "check_premises_on_tree",
    "combine",
    "conclude",
    "defining_description",
    "dominated_by_kleene",
    "eliminate_channel",
    "eliminate_channels",
    "holds_on_prefixes",
    "id_description",
    "kahn_least_fixpoint",
    "kleene_witness_chain",
    "parse_predicate",
    "pipeline",
    "rhs_guided_candidates",
    "solve",
    "solve_query",
    "theorem4_unique_smooth_solution",
    "theorem5_holds",
    "theorem6_holds",
    "theorem6_witness",
]
