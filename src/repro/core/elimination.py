"""Variable elimination (§7, Theorems 5 and 6).

Given the system ``D1: b ⟵ h, f ⟵ g`` where

1. ``h`` and ``f`` are independent of ``b``,
2. ``g`` can be written ``g(t) = r(t_b, t_c)`` — automatic for our
   expression trees, where occurrences of ``b`` are explicit leaves, and
3. ``f(⊥) = ⊥``,

the channel ``b`` may be *eliminated*: ``D2: f ⟵ g[b := h]`` has the
same smooth solutions up to projection.  Theorem 5 (easy direction):
projections of D1's smooth solutions solve D2.  Theorem 6 (hard
direction): every smooth solution ``s`` of D2 extends to a smooth
solution ``t`` of D1 with ``t_c = s`` — the proof constructs ``t`` by
interleaving ``b``-events carrying ``h(sⁱ)`` between the events of
``s``; :func:`theorem6_witness` reproduces that construction literally.

This machinery is what justifies the equation-style manipulations of
§2.3 and §4.10 ("eliminating b, c from these equations…").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import (
    DEFAULT_DEPTH,
    Description,
    DescriptionSystem,
)
from repro.functions.base import ChannelFn, ContinuousFn
from repro.seq.finite import FiniteSeq
from repro.traces.trace import Trace


class EliminationError(ValueError):
    """A §7 side condition failed; elimination would be unsound."""


@dataclass(frozen=True)
class EliminationReport:
    """Which side conditions were verified for an elimination."""

    channel: Channel
    h_independent: bool
    retained_lhs_independent: bool
    f_bottom_is_bottom: bool

    @property
    def sound(self) -> bool:
        return (
            self.h_independent
            and self.retained_lhs_independent
            and self.f_bottom_is_bottom
        )


def defining_description(system: DescriptionSystem,
                         channel: Channel) -> Description:
    """The unique description of form ``b ⟵ h`` for ``channel``.

    Raises :class:`EliminationError` if there is no such description or
    more than one.
    """
    matches = [
        d for d in system.descriptions
        if isinstance(d.lhs, ChannelFn) and d.lhs.channel == channel
    ]
    if len(matches) != 1:
        raise EliminationError(
            f"channel {channel.name!r} must have exactly one defining "
            f"description of the form {channel.name} ⟵ h; found "
            f"{len(matches)}"
        )
    return matches[0]


def check_conditions(system: DescriptionSystem, channel: Channel,
                     depth: int = DEFAULT_DEPTH) -> EliminationReport:
    """Verify the three §7 side conditions for eliminating ``channel``."""
    defining = defining_description(system, channel)
    h = defining.rhs
    retained = [d for d in system.descriptions if d is not defining]

    h_indep = h.independent_of(channel)
    lhs_indep = all(d.lhs.independent_of(channel) for d in retained)

    bottom = Trace.empty()
    f_bottom = True
    for d in retained:
        value = d.lhs.apply(bottom)
        if not _is_bottom_value(value, d, depth):
            f_bottom = False
            break
    return EliminationReport(
        channel=channel,
        h_independent=h_indep,
        retained_lhs_independent=lhs_indep,
        f_bottom_is_bottom=f_bottom,
    )


def eliminate_channel(system: DescriptionSystem, channel: Channel,
                      depth: int = DEFAULT_DEPTH,
                      enforce: bool = True) -> DescriptionSystem:
    """Produce D2 from D1 by substituting ``channel``'s definition.

    With ``enforce=True`` (default) the §7 side conditions are checked
    and :class:`EliminationError` is raised when any fails — pass
    ``enforce=False`` to build the (possibly unsound) system anyway,
    e.g. to reproduce the paper's counterexamples.
    """
    defining = defining_description(system, channel)
    if enforce:
        report = check_conditions(system, channel, depth)
        if not report.sound:
            raise EliminationError(
                f"eliminating {channel.name!r} is unsound: {report}"
            )
    h = defining.rhs
    retained = [
        d.substitute(channel, h)
        for d in system.descriptions
        if d is not defining
    ]
    if not retained:
        raise EliminationError(
            "eliminating the only description would leave an empty system"
        )
    return DescriptionSystem(
        retained,
        channels=system.channels - {channel},
        name=f"{system.name} ∖ {channel.name}",
    )


def eliminate_channels(system: DescriptionSystem,
                       channels: list[Channel],
                       depth: int = DEFAULT_DEPTH) -> DescriptionSystem:
    """Eliminate several channels in order (each step checked)."""
    current = system
    for c in channels:
        current = eliminate_channel(current, c, depth)
    return current


# ---------------------------------------------------------------------------
# The §7 note: general substitutions (p ⟵ h with surjective p)
# ---------------------------------------------------------------------------

def eliminate_term(system: DescriptionSystem,
                   defining: Description,
                   channel: Channel,
                   surjective: bool = False,
                   depth: int = DEFAULT_DEPTH) -> DescriptionSystem:
    """Eliminate a *defined term* rather than a bare channel.

    §7's closing note: if ``p ⟵ h`` is a description where ``p``
    depends only on ``b`` and ``p`` is **surjective**, then occurrences
    of the term ``p`` in other descriptions may be replaced by ``h``
    and ``b`` dropped.  Surjectivity is a semantic property the library
    cannot decide, so the caller asserts it via ``surjective=True``;
    the syntactic side conditions (``p`` supported only by ``b``; every
    retained description mentions ``b`` only inside occurrences of the
    exact term ``p``; ``h`` independent of ``b``; ``f(⊥) = ⊥``) are
    checked here.

    Args:
        system: the D1 system.
        defining: its member of the form ``p ⟵ h``.
        channel: the channel ``b`` that ``p`` observes.
        surjective: caller's assertion that ``p`` is surjective.
        depth: bound for the ``f(⊥) = ⊥`` check on lazy values.
    """
    if defining not in system.descriptions:
        raise EliminationError("defining description not in system")
    if not surjective:
        raise EliminationError(
            "general substitution requires the caller to assert that "
            "p is surjective (pass surjective=True)"
        )
    p, h = defining.lhs, defining.rhs
    if p.support != frozenset({channel}):
        raise EliminationError(
            f"the defined term must depend exactly on "
            f"{channel.name!r}; its support is {p.support}"
        )
    if not h.independent_of(channel):
        raise EliminationError(
            f"h must be independent of {channel.name!r}"
        )
    retained = []
    for d in system.descriptions:
        if d is defining:
            continue
        new_lhs = d.lhs.substitute_term(p, h)
        new_rhs = d.rhs.substitute_term(p, h)
        for side, new_side in ((d.lhs, new_lhs), (d.rhs, new_rhs)):
            if not new_side.independent_of(channel):
                raise EliminationError(
                    f"description {d.name!r} mentions "
                    f"{channel.name!r} outside the term {p.name!r}"
                )
            del side
        if not d.lhs.independent_of(channel) and new_lhs is d.lhs:
            raise EliminationError(
                f"left side of {d.name!r} depends on "
                f"{channel.name!r} but is not the term {p.name!r}"
            )
        candidate = Description(new_lhs, new_rhs)
        value = candidate.lhs.apply(Trace.empty())
        if not _is_bottom_value(value, candidate, depth):
            raise EliminationError(
                f"f(⊥) ≠ ⊥ for description {d.name!r}"
            )
        retained.append(candidate)
    if not retained:
        raise EliminationError(
            "eliminating the only description would empty the system"
        )
    return DescriptionSystem(
        retained,
        channels=system.channels - {channel},
        name=f"{system.name} ∖ {p.name}",
    )


# ---------------------------------------------------------------------------
# Theorem 5 and 6 as checkable statements
# ---------------------------------------------------------------------------

def theorem5_holds(system_d1: DescriptionSystem, channel: Channel,
                   t: Trace, depth: int = DEFAULT_DEPTH) -> bool:
    """If ``t`` is smooth for D1, then ``t_c`` is smooth for D2.

    (Vacuously true when ``t`` is not smooth for D1.)
    """
    if not system_d1.is_smooth_solution(t, depth):
        return True
    d2 = eliminate_channel(system_d1, channel, depth)
    retained = system_d1.channels - {channel}
    return d2.is_smooth_solution(t.project(retained), depth)


def theorem6_witness(system_d1: DescriptionSystem, channel: Channel,
                     s: Trace, depth: int = DEFAULT_DEPTH) -> Trace:
    """The explicit construction from Theorem 6's proof.

    Given a smooth solution ``s`` of D2 (a trace over the retained
    channels ``c``), build the trace ``t`` with

    * ``t_b^{2i+1} = h(sⁱ)``, ``t_c^{2i+1} = sⁱ``;
    * ``t_b^{2i+2} = h(sⁱ)``, ``t_c^{2i+2} = s^{i+1}``;

    realized as a lazy trace: before the ``i``-th event of ``s`` is
    replayed, enough ``b``-events are inserted to bring the ``b``
    sequence up to ``h(sⁱ)``.  The result satisfies ``t_c = s`` and
    (when ``s`` is smooth for D2 and the side conditions hold) is a
    smooth solution of D1.
    """
    defining = defining_description(system_d1, channel)
    h: ContinuousFn = defining.rhs

    def gen() -> Iterator[Event]:
        emitted_b = 0
        i = 0
        while True:
            s_i = s.take(i)
            if s_i.length() < i:
                return  # s exhausted; everything flushed
            target = _finite_seq_value(h.apply(s_i), depth)
            while emitted_b < len(target):
                yield Event(channel, target.item(emitted_b))
                emitted_b += 1
            s_next = s.take(i + 1)
            if s_next.length() == s_i.length():
                return  # s ends here
            yield s_next.item(i)
            i += 1

    return Trace.lazy(gen(), name=f"thm6-witness({s.name or 's'})")


def theorem6_holds(system_d1: DescriptionSystem, channel: Channel,
                   s: Trace, depth: int = DEFAULT_DEPTH) -> bool:
    """Check Theorem 6 on a concrete smooth solution ``s`` of D2:

    the constructed witness is a smooth solution of D1 projecting to
    ``s`` (checked to ``depth``).
    """
    d2 = eliminate_channel(system_d1, channel, depth)
    if not d2.is_smooth_solution(s, depth):
        return True  # theorem's hypothesis fails; nothing to check
    t = theorem6_witness(system_d1, channel, s, depth)
    retained = system_d1.channels - {channel}
    projected = t.project(retained)
    from repro.traces.domain import trace_eq_upto

    return (
        trace_eq_upto(projected, s, depth)
        and system_d1.is_smooth_solution(t, depth)
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _is_bottom_value(value: object, d: Description, depth: int) -> bool:
    """Is ``value`` the bottom of ``d``'s codomain? (bounded for lazy)"""
    try:
        return d.codomain.leq(value, d.codomain.bottom)
    except ValueError:
        return d.codomain.leq_upto(value, d.codomain.bottom, depth)


def _finite_seq_value(value: object, limit: int) -> FiniteSeq:
    """Materialize a sequence value produced from a finite trace."""
    from repro.seq.finite import Seq
    from repro.seq.lazy import LazySeq

    if isinstance(value, FiniteSeq):
        return value
    if isinstance(value, LazySeq):
        return value.to_finite(limit * 4 + 16)
    if isinstance(value, Seq):  # pragma: no cover - defensive
        n = value.known_length()
        if n is None:
            raise EliminationError("h produced a value of unknown length")
        return value.take(n)
    raise EliminationError(
        f"h must be sequence-valued for elimination, got {value!r}"
    )
