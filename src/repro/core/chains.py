"""Smooth solutions over arbitrary cpos (§6) and Theorem 4.

Section 6 generalizes smooth solutions from traces to any cpo ``D``:
``z`` is a smooth solution of ``f ⟵ g`` iff ``z`` is the lub of a
countable chain ``S`` (with ``x⁰ = ⊥``) satisfying

* limit condition:      ``f(z) = g(z)``, and
* smoothness condition: ``u pre v in S ⇒ f(v) ⊑ g(u)``.

Theorem 4 then states: the *only* smooth solution of ``id ⟵ h`` is the
least fixpoint of ``h`` — recovering Kahn's principle.  Both directions
of its proof are made executable here:

* direction 1: the Kleene chain ``⊥, h(⊥), …`` witnesses the least
  fixpoint as a smooth solution (:func:`kleene_witness_chain`);
* direction 2: any smooth solution's chain is dominated elementwise by
  the Kleene chain (``xⁿ ⊑ hⁿ(⊥)``), so its lub is ⊑ the least fixpoint
  (:func:`dominated_by_kleene`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.order.cpo import CountableChain, Cpo
from repro.order.fixpoint import kleene_fixpoint


@dataclass(frozen=True)
class GeneralDescription:
    """``f ⟵ g`` between arbitrary cpos (not necessarily traces)."""

    lhs: Callable[[Any], Any]
    rhs: Callable[[Any], Any]
    domain: Cpo
    codomain: Cpo
    name: str = "f ⟵ g"

    def limit_holds(self, z: Any, depth: int = 64) -> bool:
        return self.codomain.eq_upto(self.lhs(z), self.rhs(z), depth)

    def smoothness_holds_on(self, chain: CountableChain,
                            upto: int) -> bool:
        """``f(v) ⊑ g(u)`` for the first ``upto`` pre-pairs of the chain."""
        return all(
            self.codomain.leq(self.lhs(v), self.rhs(u))
            for u, v in chain.pre_pairs(upto)
        )

    def is_smooth_via(self, z: Any, chain: CountableChain,
                      upto: int, depth: int = 64) -> bool:
        """Is ``z`` a smooth solution witnessed by ``chain``? (bounded)

        Checks: the chain starts at ⊥ and ascends, ``z`` upper-bounds
        the materialized chain, the smoothness condition holds on the
        first ``upto`` pre-pairs, and the limit condition holds at ``z``.
        """
        chain.validate(upto)
        if not all(
            self.domain.leq(chain[i], z) for i in range(upto + 1)
        ):
            return False
        return (
            self.smoothness_holds_on(chain, upto)
            and self.limit_holds(z, depth)
        )


def id_description(h: Callable[[Any], Any], cpo: Cpo,
                   name: str = "id ⟵ h") -> GeneralDescription:
    """The description ``id ⟵ h`` of Theorem 4."""
    return GeneralDescription(
        lhs=lambda z: z, rhs=h, domain=cpo, codomain=cpo, name=name
    )


def kleene_witness_chain(h: Callable[[Any], Any],
                         cpo: Cpo) -> CountableChain:
    """Direction 1 of Theorem 4: the chain ``T = {hⁱ(⊥)}`` witnesses the
    least fixpoint as a smooth solution of ``id ⟵ h``."""
    return CountableChain.by_iteration(cpo, h, name="kleene-witness")


def dominated_by_kleene(chain: CountableChain,
                        h: Callable[[Any], Any], cpo: Cpo,
                        upto: int) -> bool:
    """Direction 2's inductive invariant: ``xⁿ ⊑ hⁿ(⊥)`` for n ≤ upto.

    Holds for any chain satisfying the smoothness condition of
    ``id ⟵ h`` (the paper's induction); checking it on concrete chains
    is how the tests exercise the proof.
    """
    kleene = CountableChain.by_iteration(cpo, h, name="kleene")
    return all(
        cpo.leq(chain[n], kleene[n]) for n in range(upto + 1)
    )


def theorem4_unique_smooth_solution(
        h: Callable[[Any], Any], cpo: Cpo,
        max_iterations: int = 1000) -> Any:
    """Compute the least fixpoint and return it as *the* smooth solution
    of ``id ⟵ h`` (Theorem 4).  Raises if iteration does not converge —
    use :func:`kleene_witness_chain` directly for non-converging chains.
    """
    result = kleene_fixpoint(cpo, h, max_iterations)
    if not result.converged:
        raise RuntimeError(
            f"Kleene iteration did not converge in {max_iterations} "
            "steps; the least fixpoint is infinite — work with the "
            "witness chain instead"
        )
    return result.value
