"""Kahn semantics for deterministic systems (§2.1, §6).

A *deterministic* system is one description per channel, each of the
form ``channel ⟵ expression`` — Kahn's equations.  Its semantics is the
least fixpoint of the induced function on the product of the per-channel
sequence cpos; this module computes it (fuelled Kleene iteration) and
bridges to the smooth-solution world:

* the least-fixpoint environment satisfies the system's equations;
* any trace realizing that environment channel-by-channel is a smooth
  solution of the combined description, and the solver finds no others —
  Theorem 4 specialized to networks, which is Kahn's result.

The classic example is Figure 1: ``c = b, b = c`` has least fixpoint
``b = c = ε``, while ``c = b, b = 0;c`` has ``b = c = 0^ω`` (the fuelled
iteration reports non-convergence and yields the growing approximations,
whose lub we realize lazily).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.channels.channel import Channel
from repro.core.description import DescriptionSystem
from repro.functions.base import ChannelFn
from repro.order.fixpoint import FixpointResult, kleene_fixpoint
from repro.order.product import ProductCpo
from repro.seq.finite import EMPTY, FiniteSeq, Seq
from repro.seq.lazy import LazySeq
from repro.seq.ordering import SequenceCpo


class NotDeterministicError(ValueError):
    """The system is not in Kahn form (one ``channel ⟵ expr`` per channel)."""


@dataclass(frozen=True)
class KahnSystem:
    """A deterministic system in Kahn form."""

    channels: tuple[Channel, ...]
    system: DescriptionSystem

    @classmethod
    def from_system(cls, system: DescriptionSystem) -> "KahnSystem":
        """Validate Kahn form: every description is ``channel ⟵ expr``
        with distinct left-side channels."""
        chans: list[Channel] = []
        for d in system.descriptions:
            if not isinstance(d.lhs, ChannelFn):
                raise NotDeterministicError(
                    f"description {d.name!r} does not define a channel"
                )
            if d.lhs.channel in chans:
                raise NotDeterministicError(
                    f"channel {d.lhs.channel.name!r} defined twice"
                )
            chans.append(d.lhs.channel)
        return cls(channels=tuple(chans), system=system)

    def domain(self) -> ProductCpo:
        """The product of the per-channel sequence cpos."""
        return ProductCpo(
            [SequenceCpo(c.alphabet, name=f"Seq[{c.name}]")
             for c in self.channels],
            name="KahnDomain",
        )

    def step(self, env_tuple: tuple[Any, ...]) -> tuple[Any, ...]:
        """One Kahn iteration: evaluate every right side on the
        environment and truncate to finite values (fuelled)."""
        env = dict(zip(self.channels, env_tuple))
        out = []
        for d in self.system.descriptions:
            value = d.rhs.apply_env(env)
            out.append(_truncate(value, _STEP_FUEL))
        return tuple(out)

    def least_fixpoint(self, max_iterations: int = 200
                       ) -> "KahnSemantics":
        """Fuelled Kleene iteration of the equations."""
        result = kleene_fixpoint(
            self.domain(), self.step, max_iterations
        )
        return KahnSemantics(self, result)

    def environment_of(self, env_tuple: tuple[Any, ...]
                       ) -> dict[Channel, Any]:
        return dict(zip(self.channels, env_tuple))


_STEP_FUEL = 4096


@dataclass(frozen=True)
class KahnSemantics:
    """The (possibly approximated) Kahn semantics of a system."""

    system: KahnSystem
    fixpoint: FixpointResult

    @property
    def converged(self) -> bool:
        return self.fixpoint.converged

    def environment(self) -> dict[Channel, Any]:
        """Channel ↦ sequence at the final iterate."""
        return self.system.environment_of(self.fixpoint.value)

    def sequence_on(self, channel: Channel) -> Any:
        return self.environment()[channel]

    def lazy_environment(self) -> dict[Channel, LazySeq]:
        """Channel ↦ the lub of the per-channel Kleene chains, lazily.

        For non-converging systems (infinite behaviours such as ``0^ω``)
        this realizes the true least fixpoint as lazy sequences: the
        ``k``-th chain element is recomputed on demand by iterating the
        equations ``k`` times.
        """
        cpo = SequenceCpo()
        out: dict[Channel, LazySeq] = {}
        for idx, channel in enumerate(self.system.channels):

            def nth(k: int, _idx: int = idx) -> FiniteSeq:
                current: tuple[Any, ...] = tuple(
                    EMPTY for _ in self.system.channels
                )
                for _ in range(k):
                    current = self.system.step(current)
                return _as_finite(current[_idx])

            out[channel] = cpo.lub_of_chain_fn(
                nth, name=f"lfp.{channel.name}"
            )
        return out


def kahn_least_fixpoint(system: DescriptionSystem,
                        max_iterations: int = 200) -> KahnSemantics:
    """One-call convenience: validate Kahn form and iterate."""
    return KahnSystem.from_system(system).least_fixpoint(max_iterations)


def _truncate(value: Any, fuel: int) -> Seq:
    """Clamp a possibly-lazy sequence value to a finite approximation.

    Keeps every Kleene iterate finite so iteration stays effective; the
    fuel is far above any test's reach and the lazy-lub path recovers
    exact infinite behaviour.
    """
    if isinstance(value, FiniteSeq):
        return value
    if isinstance(value, Seq):
        return value.take(fuel)
    raise NotDeterministicError(
        f"Kahn right sides must be sequence-valued, got {value!r}"
    )


def _as_finite(value: Any) -> FiniteSeq:
    if isinstance(value, FiniteSeq):
        return value
    assert isinstance(value, Seq)
    n = value.known_length()
    assert n is not None
    return value.take(n)
