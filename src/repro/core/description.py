"""Descriptions and smooth solutions (§3.2) — the paper's core idea.

A *description* is an ordered pair of continuous functions ``f ⟵ g``
(the sides do not commute).  A trace ``t`` is a *smooth solution* iff

* limit condition:       ``f(t) = g(t)``, and
* smoothness condition:  ``f(v) ⊑ g(u)`` for all ``u pre v in t``.

Smoothness is checked exactly (finite prefixes yield finite values); the
limit condition on an infinite trace is checked to a configurable depth —
conclusive for "no", certified-to-depth for "yes" (the
:class:`~repro.core.solution.SolutionVerdict` records which).

Also here: Lemma 2, Theorem 1 (the simpler characterization for
*independent* sides), the multiple-descriptions-into-one combination
(Note in §4), and :class:`DescriptionSystem`, the container that the
composition (§5) and variable-elimination (§7) machinery operate on.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence as PySeq

from repro.channels.channel import Channel
from repro.core.solution import (
    LimitReport,
    SmoothnessViolation,
    SolutionVerdict,
)
from repro.functions.base import (
    ContinuousFn,
    TupleFn,
    are_independent,
)
from repro.order.cpo import Cpo
from repro.traces.trace import Trace

#: Default prefix depth for bounded checks on lazy traces.
DEFAULT_DEPTH = 64


class Description:
    """The pair ``f ⟵ g`` of continuous trace functions."""

    def __init__(self, lhs: ContinuousFn, rhs: ContinuousFn,
                 name: str = ""):
        self.lhs = lhs
        self.rhs = rhs
        self.name = name or f"{lhs.name} ⟵ {rhs.name}"

    @property
    def codomain(self) -> Cpo:
        """The cpo both sides map into (taken from the left side)."""
        return self.lhs.codomain

    def __repr__(self) -> str:
        return f"⟦{self.name}⟧"

    # -- bounded order helpers ---------------------------------------------

    def _leq(self, a: Any, b: Any, depth: int) -> bool:
        """``a ⊑ b`` — exact when decidable, else bounded to ``depth``."""
        try:
            return self.codomain.leq(a, b)
        except ValueError:
            return self.codomain.leq_upto(a, b, depth)

    # -- the two defining conditions ---------------------------------------

    def limit_report(self, t: Trace,
                     depth: int = DEFAULT_DEPTH,
                     lhs_value: Any = None,
                     rhs_value: Any = None) -> LimitReport:
        """Check ``f(t) = g(t)``.

        Finite traces are checked by direct (bounded-only-if-the-values-
        are-lazy) comparison.  For a lazy ``t`` the values are the lubs
        of the chains ``f(t↾n)``/``g(t↾n)``; we never apply either side
        to the unbounded trace itself (filters over infinite streams
        need not terminate).  Instead the chains are sampled at two
        horizons: positions below ``depth`` must agree wherever both
        limits are determined, and a side whose chain has stopped
        growing while the other is ahead is conclusively unequal.

        ``lhs_value``/``rhs_value`` let a caller that has *already*
        evaluated ``f(t)``/``g(t)`` (the §3.3 solver computes both per
        node for the admissibility tests) pass them in instead of
        re-evaluating; they are only honoured for known-finite ``t``,
        where "apply the side to the trace" is exactly the value the
        caller holds.
        """
        if t.is_known_finite():
            fv = (self.lhs.apply(t) if lhs_value is None
                  else lhs_value)
            gv = (self.rhs.apply(t) if rhs_value is None
                  else rhs_value)
            holds = self.codomain.eq_upto(fv, gv, depth)
            exact = _value_is_finite(fv) and _value_is_finite(gv)
            return LimitReport(holds=holds, exact=exact, lhs_value=fv,
                               rhs_value=gv, depth=depth)
        near = t.take(depth + 4)
        far = t.take(2 * depth + 8)
        f_near, g_near = self.lhs.apply(near), self.rhs.apply(near)
        f_far, g_far = self.lhs.apply(far), self.rhs.apply(far)
        holds = _chain_limits_agree(
            f_near, g_near, f_far, g_far, depth
        )
        return LimitReport(holds=holds, exact=False, lhs_value=f_far,
                           rhs_value=g_far, depth=depth)

    def limit_holds(self, t: Trace, depth: int = DEFAULT_DEPTH) -> bool:
        return self.limit_report(t, depth).holds

    def smoothness_violations(
            self, t: Trace, depth: int = DEFAULT_DEPTH
    ) -> list[SmoothnessViolation]:
        """All failures of ``f(v) ⊑ g(u)`` among ``u pre v in t`` (bounded).

        For a finite ``t`` shorter than ``depth`` the check is complete;
        an empty result is then an exact "smoothness holds".
        """
        violations = []
        for u, v in t.pre_pairs(depth):
            fv = self.lhs.apply(v)
            gu = self.rhs.apply(u)
            if not self._leq(fv, gu, depth):
                violations.append(
                    SmoothnessViolation(u=u, v=v, lhs_of_v=fv,
                                        rhs_of_u=gu,
                                        description=self.name)
                )
        return violations

    def smoothness_holds(self, t: Trace,
                         depth: int = DEFAULT_DEPTH) -> bool:
        return not self.smoothness_violations(t, depth)

    def check(self, t: Trace, depth: int = DEFAULT_DEPTH
              ) -> SolutionVerdict:
        """Full smooth-solution verdict for ``t``."""
        limit = self.limit_report(t, depth)
        violations = self.smoothness_violations(t, depth)
        exact = limit.exact and (
            t.is_known_finite() and t.length() <= depth
        )
        return SolutionVerdict(
            trace=t,
            description_name=self.name,
            limit=limit,
            violations=violations,
            depth=depth,
            exact=exact,
        )

    def is_smooth_solution(self, t: Trace,
                           depth: int = DEFAULT_DEPTH) -> bool:
        return self.check(t, depth).is_smooth

    # -- Lemma 2 and Theorem 1 ---------------------------------------------

    def lemma2_holds(self, t: Trace, depth: int = DEFAULT_DEPTH) -> bool:
        """Lemma 2's conclusion: ``f(v) ⊑ g(v)`` on every finite prefix.

        For a smooth solution this must hold; tests verify the lemma by
        checking it on solutions produced independently.
        """
        for n in range(depth + 1):
            v = t.take(n)
            if not self._leq(self.lhs.apply(v), self.rhs.apply(v), depth):
                return False
            if v.length() < n:
                break
        return True

    def independent(self) -> bool:
        """Theorem 1's side condition: disjoint channel supports."""
        return are_independent(self.lhs, self.rhs)

    def is_smooth_solution_thm1(self, t: Trace,
                                depth: int = DEFAULT_DEPTH) -> bool:
        """Theorem 1's characterization (only valid when independent):

        ``t`` smooth  ≡  ``f(t) = g(t)`` and ``f(s) ⊑ g(s)`` on every
        finite prefix ``s``.
        """
        if not self.independent():
            raise ValueError(
                f"{self.name}: Theorem 1 requires independent sides"
            )
        return self.limit_holds(t, depth) and self.lemma2_holds(t, depth)

    # -- compiled hot path ---------------------------------------------------

    def compiled_against(self, candidates) -> Optional[Any]:
        """This description compiled against a constant alphabet.

        Returns a :class:`~repro.core.compiled.CompiledDescription`
        when both sides lie in the compilable expression fragment and
        ``candidates`` publishes a constant event alphabet, else
        ``None`` (callers then use the reference path).  See
        :mod:`repro.core.compiled` for the exact preconditions.
        """
        from repro.core.compiled import compile_description

        return compile_description(self, candidates)

    # -- structure -----------------------------------------------------------

    def substitute(self, channel: Channel,
                   replacement: ContinuousFn) -> "Description":
        """Both sides with ``channel := replacement`` (used by §7)."""
        return Description(
            self.lhs.substitute(channel, replacement),
            self.rhs.substitute(channel, replacement),
        )

    def support(self) -> Optional[frozenset[Channel]]:
        """Union of the two sides' supports, if both are known."""
        if self.lhs.support is None or self.rhs.support is None:
            return None
        return self.lhs.support | self.rhs.support

    def satisfies_dc(self, incident: frozenset[Channel]) -> bool:
        """The description constraint of §5: both sides depend only on
        the process's incident channels."""
        return (
            self.lhs.depends_only_on(incident)
            and self.rhs.depends_only_on(incident)
        )


def combine(descriptions: PySeq[Description],
            name: str = "") -> Description:
    """Combine several descriptions into one (Note in §4).

    ``f`` is the tuple of the left sides, ``g`` of the right sides; the
    codomain is the product cpo, ordered componentwise — so ``t`` is a
    smooth solution of the combination iff it satisfies each component's
    limit condition and the conjunction of the smoothness conditions.
    """
    if not descriptions:
        raise ValueError("cannot combine zero descriptions")
    if len(descriptions) == 1:
        return descriptions[0]
    lhs = TupleFn([d.lhs for d in descriptions])
    rhs = TupleFn([d.rhs for d in descriptions])
    return Description(
        lhs, rhs,
        name=name or " , ".join(d.name for d in descriptions),
    )


class DescriptionSystem:
    """An ordered collection of descriptions over a shared channel set.

    This is the form in which networks are written down (§2.3, §4.10):
    one description per component process or per defined channel, with
    elimination (§7) and composition (§5) acting on the system.
    """

    def __init__(self, descriptions: Iterable[Description],
                 channels: Iterable[Channel], name: str = "system"):
        self.descriptions = list(descriptions)
        self.channels = frozenset(channels)
        self.name = name
        if not self.descriptions:
            raise ValueError("a description system needs ≥1 description")

    def combined(self) -> Description:
        """The single combined description of the whole system."""
        return combine(self.descriptions, name=self.name)

    def check(self, t: Trace, depth: int = DEFAULT_DEPTH
              ) -> SolutionVerdict:
        return self.combined().check(t, depth)

    def is_smooth_solution(self, t: Trace,
                           depth: int = DEFAULT_DEPTH) -> bool:
        return self.combined().is_smooth_solution(t, depth)

    def satisfied_by_env(self, env: Mapping[Channel, Any],
                         depth: int = DEFAULT_DEPTH) -> bool:
        """Do per-channel sequences satisfy the *equations* (limit only)?

        This evaluates each description on a channel environment — the
        equation-solving view of §2.2/§2.3, where the interleaving is
        abstracted away.  Smoothness, which constrains interleavings,
        cannot be checked this way.
        """
        for d in self.descriptions:
            lv = d.lhs.apply_env(env)
            rv = d.rhs.apply_env(env)
            if not d.codomain.eq_upto(lv, rv, depth):
                return False
        return True

    def __iter__(self):
        return iter(self.descriptions)

    def __len__(self) -> int:
        return len(self.descriptions)

    def __repr__(self) -> str:
        body = "; ".join(d.name for d in self.descriptions)
        return f"System[{self.name}: {body}]"


def _chain_limits_agree(f_near: Any, g_near: Any, f_far: Any,
                        g_far: Any, depth: int) -> bool:
    """Do the limits of the two prefix-application chains agree (below
    ``depth``), judging from samples at two horizons?

    The chain values come from *finite* trace prefixes, so taking their
    first ``depth`` elements always terminates.  Rules per position
    ``i < depth``: if both samples determine position ``i`` the values
    must match; if one side is behind, it must at least still be
    growing between the horizons (a stalled side with the other ahead
    means the limits differ).  The optimistic case (shorter side still
    growing) certifies agreement only on the common prefix — the usual
    bounded-check caveat, recorded by ``exact=False`` in the report.
    """
    from repro.seq.finite import Seq

    if isinstance(f_far, tuple):
        return all(
            _chain_limits_agree(fn, gn, ff, gf, depth)
            for fn, gn, ff, gf in
            zip(f_near, g_near, f_far, g_far)
        )
    if isinstance(f_far, Trace):
        f_near, g_near = f_near.events, g_near.events
        f_far, g_far = f_far.events, g_far.events
    if isinstance(f_far, Seq):
        fa, ga = f_far.take(depth), g_far.take(depth)
        common = min(len(fa), len(ga))
        if fa.take(common) != ga.take(common):
            return False
        if len(fa) == len(ga):
            return True
        short_far, short_near, long_far = (
            (fa, f_near.take(depth), ga) if len(fa) < len(ga)
            else (ga, g_near.take(depth), fa)
        )
        del long_far
        # behind and not growing between horizons ⇒ limits differ
        return len(short_far) > len(short_near)
    # flat-domain values: chains stabilize after one step
    return f_far == g_far


def _value_is_finite(value: Any) -> bool:
    """Is a codomain value fully materialized (no unknown tail)?"""
    from repro.seq.finite import Seq

    if isinstance(value, tuple):
        return all(_value_is_finite(v) for v in value)
    if isinstance(value, Seq):
        return value.known_length() is not None
    if isinstance(value, Trace):
        return value.is_known_finite()
    return True
