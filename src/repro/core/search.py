"""Search strategies and queries over the §3.3 tree.

The solver's reference exploration is breadth-first: correct, complete
to the depth bound, and doomed at depth — the frontier grows with the
full branching factor whether or not the caller needs the whole
solution set.  This module holds the pieces of the escape hatch:

* **Ranking heuristics** for best-first exploration.  A heuristic maps
  a node's cheap features (depth, per-component value lengths of
  ``f(u)``/``g(u)``, per-channel event counts) to a rank; the solver
  pops the lowest rank first.  Ranks only *reorder* the exploration —
  admissibility and classification are untouched — so a completed
  best-first run finds exactly the BFS solution set (pinned by
  ``tests/properties/test_strategy_equivalence.py``).

* **Predicates** over finite traces, with a tiny textual form so the
  CLI can ask them (``length <= 3``, ``on:b >= 1``, ``msg:d:2``,
  comma = conjunction).

* :class:`QueryResult` — the answer to "does a smooth solution
  matching P exist?" (``exists``) or "do all of them match P?"
  (``all``), with the witness / counterexample as a replayable
  certificate (see :meth:`SmoothSolutionSolver.witness_schedule`).

Heuristic features are deliberately engine-neutral: the compiled
engine computes lengths from flat tuples and counts from the packed
environment, the reference engine from ``Seq``/``Trace`` values —
both land on the same integers, so the two engines pop nodes in the
same order and even *truncated* best-first runs agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

#: Bounded probe used when a lazy sequence will not reveal a length.
LENGTH_PROBE = 64


# ---------------------------------------------------------------------------
# Node features
# ---------------------------------------------------------------------------

def _component_length(value: Any, probe: int = LENGTH_PROBE) -> int:
    """Length of one codomain component (a sequence-like value).

    Finite sequences report their exact length; lazy ones are probed
    to ``probe`` elements (a heuristic needs a bound, not the truth).
    Values with no length notion rank as 0.
    """
    known = getattr(value, "known_length", None)
    if known is not None:
        n = known()
        if n is not None:
            return n
        return len(value.take(probe).items)
    length = getattr(value, "length", None)
    if length is not None:  # Trace
        return length()
    return 0


def component_lengths(value: Any,
                      probe: int = LENGTH_PROBE) -> Tuple[int, ...]:
    """Per-component lengths of a (possibly product) codomain value."""
    if isinstance(value, tuple):
        return tuple(_component_length(v, probe) for v in value)
    return (_component_length(value, probe),)


def rhs_distance(f_lens: Tuple[int, ...],
                 g_lens: Tuple[int, ...]) -> int:
    """Σ_i |len(g_i) − len(f_i)| — how far the node is from the limit
    condition ``f(u) = g(u)``.  Distance 0 does not *prove* equality
    (same lengths, different elements), but every finite solution has
    distance 0, so ranking by it pops solution-shaped nodes first."""
    n = max(len(f_lens), len(g_lens))
    total = 0
    for i in range(n):
        a = f_lens[i] if i < len(f_lens) else 0
        b = g_lens[i] if i < len(g_lens) else 0
        total += b - a if b >= a else a - b
    return total


# ---------------------------------------------------------------------------
# Heuristics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Heuristic:
    """A node-ranking rule for best-first exploration.

    ``fn(depth, f_lens, g_lens, counts)`` returns the rank (lower pops
    first).  ``needs_values`` / ``needs_counts`` tell the solver which
    features to bother extracting.
    """

    name: str
    fn: Callable[[int, Tuple[int, ...], Tuple[int, ...],
                  Tuple[int, ...]], int]
    needs_values: bool = False
    needs_counts: bool = False


def _rank_depth(depth, f_lens, g_lens, counts):
    return depth


def _rank_rhs_distance(depth, f_lens, g_lens, counts):
    return rhs_distance(f_lens, g_lens)


def _rank_channel_balance(depth, f_lens, g_lens, counts):
    return (max(counts) - min(counts)) if counts else 0


#: The heuristic registry.  ``depth`` reproduces BFS order exactly
#: (FIFO tie-break included), which is how the duplicate-state path
#: serves plain BFS without touching the pinned reference loops.
HEURISTICS: Dict[str, Heuristic] = {
    "depth": Heuristic("depth", _rank_depth),
    "rhs-distance": Heuristic("rhs-distance", _rank_rhs_distance,
                              needs_values=True),
    "channel-balance": Heuristic("channel-balance",
                                 _rank_channel_balance,
                                 needs_counts=True),
}

#: Exploration orders the solver understands.
STRATEGIES = ("bfs", "best-first", "iterative-deepening")


def get_heuristic(name: str) -> Heuristic:
    try:
        return HEURISTICS[name]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {name!r}; known: "
            f"{', '.join(sorted(HEURISTICS))}") from None


# ---------------------------------------------------------------------------
# Predicates over finite traces
# ---------------------------------------------------------------------------

_OPS: Dict[str, Callable[[int, int], bool]] = {
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=": lambda a, b: a == b,
}

#: Longest operators first so ``<=`` is not read as ``<``.
_OP_ORDER = ("<=", ">=", "==", "!=", "<", ">", "=")

PREDICATE_GRAMMAR = (
    "predicate := clause (',' clause)*   (conjunction)\n"
    "clause    := 'true'\n"
    "           | 'length' OP N          (trace length)\n"
    "           | 'on:CHANNEL' OP N      (event count on CHANNEL)\n"
    "           | 'msg:CHANNEL:REPR'     (some event on CHANNEL whose\n"
    "                                     message repr equals REPR)\n"
    "OP        := <= | >= | == | != | < | > | ="
)


def _split_op(text: str) -> Tuple[str, str, int]:
    for op in _OP_ORDER:
        if op in text:
            left, _, right = text.partition(op)
            try:
                return left.strip(), op, int(right.strip())
            except ValueError:
                raise ValueError(
                    f"predicate clause {text!r}: right side of "
                    f"{op!r} must be an integer") from None
    raise ValueError(
        f"predicate clause {text!r} has no comparison operator\n"
        + PREDICATE_GRAMMAR)


def _parse_clause(text: str) -> Callable[[Any], bool]:
    text = text.strip()
    if text == "true":
        return lambda trace: True
    if text.startswith("msg:"):
        parts = text.split(":", 2)
        if len(parts) != 3 or not parts[1]:
            raise ValueError(
                f"predicate clause {text!r}: expected "
                "msg:CHANNEL:REPR\n" + PREDICATE_GRAMMAR)
        channel, message_repr = parts[1], parts[2]
        return lambda trace: any(
            e.channel.name == channel and repr(e.message) == message_repr
            for e in trace)
    left, op, n = _split_op(text)
    cmp = _OPS[op]
    if left == "length":
        return lambda trace: cmp(trace.length(), n)
    if left.startswith("on:") and len(left) > 3:
        channel = left[3:]
        return lambda trace: cmp(
            sum(1 for e in trace if e.channel.name == channel), n)
    raise ValueError(
        f"predicate clause {text!r} not understood\n"
        + PREDICATE_GRAMMAR)


def parse_predicate(text: str) -> Callable[[Any], bool]:
    """Compile the textual predicate form into ``Trace -> bool``.

    The returned callable carries the normalized text on a ``source``
    attribute for reporting.  Raises ``ValueError`` (with the grammar)
    on anything it does not understand.
    """
    clauses = [c for c in (part.strip() for part in text.split(","))
               if c]
    if not clauses:
        raise ValueError(
            "empty predicate\n" + PREDICATE_GRAMMAR)
    compiled = [_parse_clause(c) for c in clauses]

    def predicate(trace: Any) -> bool:
        return all(c(trace) for c in compiled)

    predicate.source = ", ".join(clauses)
    return predicate


# ---------------------------------------------------------------------------
# Query results
# ---------------------------------------------------------------------------

@dataclass
class QueryResult:
    """Answer to a smooth-solution query.

    ``holds`` is three-valued: ``True``/``False`` when the search
    settled the question, ``None`` when a resource guard fired before
    a witness (``exists``) / counterexample (``all``) was found *and*
    before the bounded tree was covered — the query is unresolved at
    this budget.  ``witness`` is the settling trace (the witness for a
    held ``exists``, the counterexample for a failed ``all``), and
    ``certificate`` its replayable schedule
    (:meth:`SmoothSolutionSolver.witness_schedule`) when one exists.
    ``result`` is the underlying (possibly early-exited)
    :class:`SolverResult` — its ``truncation_reason`` starts with
    ``"query:"`` when the search short-circuited.
    """

    mode: str
    predicate: str
    holds: Optional[bool]
    witness: Optional[Any] = None
    certificate: Optional[Any] = None
    nodes_explored: int = 0
    strategy: str = "bfs"
    result: Any = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def resolved(self) -> bool:
        return self.holds is not None

    def describe(self) -> str:
        verdict = {True: "holds", False: "does not hold",
                   None: "unresolved (budget exhausted)"}[self.holds]
        lines = [f"query [{self.mode}] {self.predicate}: {verdict}",
                 f"  nodes explored: {self.nodes_explored} "
                 f"(strategy {self.strategy})"]
        if self.witness is not None:
            label = ("witness" if self.mode == "exists"
                     else "counterexample")
            lines.append(f"  {label}: {self.witness!r}")
        return "\n".join(lines)
