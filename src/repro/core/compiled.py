"""Compiled descriptions: the `f(v) ⊑ g(u)` hot path as closures.

The §3.3 solver spends essentially all of its time evaluating the two
sides of a description on finite traces and comparing the results
under the prefix order.  The reference path does this with linked
``Seq`` objects and lazy combinators — semantically exactly right and
needlessly slow for the finite fragment the solver actually visits.

This module compiles a :class:`~repro.core.description.Description`
into closures over a *packed environment* (per-channel message tuples,
see :mod:`repro.traces.intern`):

* ``ChannelFn b``          →  ``env[cid(b)]`` (a tuple lookup);
* ``ConstFn`` (finite)     →  the constant's flat tuple;
* ``OpFn``                 →  the operation's ``tuple_face`` when it
  has one (:mod:`repro.functions.seq_fns` attaches faces to every
  paper operation), else a generic box/unbox wrapper;
* ``TupleFn``              →  a tuple of compiled components;
* the prefix test          →  :func:`repro.seq.packed.packed_leq`
  (finite values make ``seq_leq`` a plain tuple-slice comparison);
* the limit condition      →  ``fu == gu`` (finite values make
  ``eq_upto`` exact equality at any depth).

Compilation is deliberately *partial*: anything outside this fragment
— subclassed descriptions (whose overridden hooks must keep firing),
opaque ``LambdaFn``/``ProjectionFn``/``IdentityFn`` sides, lazy
constants, non-sequence codomains, per-node candidate generators —
returns ``None`` and the solver stays on the reference path.  A
compile-time probe additionally evaluates both paths on the empty
trace and every single-event trace and refuses to compile on any
disagreement, so a mis-specified ``tuple_face`` degrades to the slow
path instead of a wrong answer.  Side-by-side property tests pin the
equivalence beyond the probe.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, List, Optional, Tuple

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import Description
from repro.functions.base import (
    ChannelFn,
    ConstFn,
    ContinuousFn,
    OpFn,
    TupleFn,
)
from repro.order.product import ProductCpo
from repro.seq.finite import FiniteSeq, Seq
from repro.seq.ordering import SequenceCpo
from repro.seq.packed import packed_leq
from repro.traces.intern import InternTable, PackedEnv
from repro.traces.trace import Trace


class CompiledEvalError(Exception):
    """A compiled closure met a value outside the finite fragment.

    Raised (rarely) when a generic op wrapper produces a value that
    cannot be flattened back to a tuple.  The solver catches it and
    restarts the exploration on the reference path.
    """


def _unbox(value: Any) -> tuple:
    """Flatten an op result back to a plain tuple."""
    if isinstance(value, FiniteSeq):
        return value.items
    if isinstance(value, Seq):
        n = value.known_length()
        if n is not None:
            return value.take(n).items
    raise CompiledEvalError(
        f"operation produced a non-finite value: {value!r}"
    )


class CompiledSide:
    """One side of a description as per-component closures.

    ``evals[i]`` maps a packed environment to the i-th component's
    value (a flat message tuple); ``reads[i]`` is the set of channel
    ids that closure actually dereferences — the basis of the
    incremental re-evaluation below.  ``is_product`` distinguishes a
    ``TupleFn`` side (value = tuple of component values) from a plain
    sequence-valued side (value = the single component's tuple).
    """

    __slots__ = ("evals", "reads", "is_product", "after")

    def __init__(self, evals: Tuple[Callable[[PackedEnv], tuple], ...],
                 reads: Tuple[FrozenSet[int], ...], is_product: bool):
        self.evals = evals
        self.reads = reads
        self.is_product = is_product
        #: cid -> specialized ``(env, parent_value) -> value`` closure;
        #: filled by :meth:`bind` once the channel count is known
        self.after: Tuple[Callable[[PackedEnv, Any], Any], ...] = ()

    def eval(self, env: PackedEnv) -> Any:
        """Full evaluation on an environment."""
        if self.is_product:
            return tuple(e(env) for e in self.evals)
        return self.evals[0](env)

    def eval_after(self, env: PackedEnv, parent_value: Any,
                   cid: int) -> Any:
        """Evaluation after appending one event on channel ``cid``.

        Components that do not read ``cid`` cannot have changed —
        each closure is a pure function of the environment slots in
        its read set — so the parent's component value is reused.
        On the dfm network this skips both ``f`` components for every
        extension on an output channel.
        """
        if not self.is_product:
            if cid in self.reads[0]:
                return self.evals[0](env)
            return parent_value
        return tuple(
            e(env) if cid in r else parent_value[i]
            for i, (e, r) in enumerate(zip(self.evals, self.reads))
        )

    def bind(self, n_channels: int) -> None:
        """Precompute one specialized ``after`` closure per channel.

        The read-set dispatch of :meth:`eval_after` is loop-invariant
        — which components a channel touches is fixed at compile time
        — so the per-call membership tests and the genexpr are folded
        away here: appending on an unread channel becomes an identity,
        and small products get direct tuple constructors.
        """
        self.after = tuple(self._after_for(cid)
                           for cid in range(n_channels))

    def _after_for(self, cid: int) -> Callable[[PackedEnv, Any], Any]:
        if not self.is_product:
            if cid in self.reads[0]:
                return lambda env, parent, _e=self.evals[0]: _e(env)
            return lambda env, parent: parent
        hot = tuple(cid in r for r in self.reads)
        if not any(hot):
            return lambda env, parent: parent
        if len(self.evals) == 2:
            e0, e1 = self.evals
            if hot == (True, True):
                return lambda env, parent: (e0(env), e1(env))
            if hot == (True, False):
                return lambda env, parent: (e0(env), parent[1])
            return lambda env, parent: (parent[0], e1(env))
        if all(hot):
            return (lambda env, parent, _ev=self.evals:
                    tuple(e(env) for e in _ev))
        parts = tuple(e if h else None
                      for e, h in zip(self.evals, hot))

        def after(env: PackedEnv, parent: Any,
                  _parts=parts) -> tuple:
            return tuple(p(env) if p is not None else parent[i]
                         for i, p in enumerate(_parts))

        return after


class CompiledDescription:
    """A description compiled against a constant candidate alphabet.

    ``actions`` is the precompiled per-candidate table the solver's
    inner loop iterates: one ``(pair, cid, event)`` entry per
    candidate event, in candidate order — the packed event, its
    channel id, and the original :class:`Event` (used only when
    tracing or unpacking).
    """

    __slots__ = ("description", "table", "lhs", "rhs", "actions",
                 "leq", "root_env")

    def __init__(self, description: Description, table: InternTable,
                 lhs: CompiledSide, rhs: CompiledSide,
                 leq: Callable[[Any, Any], bool]):
        self.description = description
        self.table = table
        self.lhs = lhs
        self.rhs = rhs
        self.leq = leq
        self.actions: Tuple[Tuple[Tuple[int, int], int, Event], ...] = \
            tuple(
                (table.intern_event(e), table.intern_event(e)[0], e)
                for e in table.events
            )
        self.root_env = table.empty_env
        lhs.bind(len(table.channels))
        rhs.bind(len(table.channels))

    # The limit condition f(u) = g(u): with both values finite,
    # ``eq_upto`` at any depth is exact equality (see
    # repro.seq.packed.packed_eq_upto), which on packed values is
    # plain tuple equality.
    @staticmethod
    def limit_holds(fu: Any, gu: Any) -> bool:
        return fu == gu


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

def _compile_fn(fn: ContinuousFn, channel_ids) -> Optional[
        Tuple[Callable[[PackedEnv], tuple], FrozenSet[int]]]:
    """Compile one (non-tuple) expression node; ``None`` = can't.

    Exact-type checks throughout: a *subclass* of ``ChannelFn`` or
    ``OpFn`` may override ``apply`` with instrumentation or different
    semantics, and must keep going through the reference path.
    """
    kind = type(fn)
    if kind is ChannelFn:
        cid = channel_ids.get(fn.channel)
        if cid is None:
            return None
        return (lambda env, _c=cid: env[_c]), frozenset((cid,))
    if kind is ConstFn:
        if type(fn.value) is not FiniteSeq:
            return None  # lazy/opaque constants stay on the slow path
        return (lambda env, _v=fn.value.items: _v), frozenset()
    if kind is OpFn:
        compiled = []
        reads: FrozenSet[int] = frozenset()
        for arg in fn.args:
            sub = _compile_fn(arg, channel_ids)
            if sub is None:
                return None
            compiled.append(sub[0])
            reads |= sub[1]
        face = getattr(fn.op, "tuple_face", None)
        if face is not None:
            if len(compiled) == 1:
                return (lambda env, _f=face, _a=compiled[0]:
                        _f(_a(env))), reads
            args = tuple(compiled)
            return (lambda env, _f=face, _as=args:
                    _f(*(a(env) for a in _as))), reads
        args = tuple(compiled)

        def generic(env: PackedEnv, _op=fn.op, _as=args) -> tuple:
            return _unbox(
                _op(*(FiniteSeq.from_tuple(a(env)) for a in _as))
            )

        return generic, reads
    # ProjectionFn / IdentityFn / LambdaFn / nested TupleFn / unknown
    return None


def _compile_side(fn: ContinuousFn, channel_ids
                  ) -> Optional[CompiledSide]:
    if type(fn) is TupleFn:
        evals: List[Callable[[PackedEnv], tuple]] = []
        reads: List[FrozenSet[int]] = []
        for component in fn.components:
            sub = _compile_fn(component, channel_ids)
            if sub is None:
                return None
            evals.append(sub[0])
            reads.append(sub[1])
        return CompiledSide(tuple(evals), tuple(reads), True)
    sub = _compile_fn(fn, channel_ids)
    if sub is None:
        return None
    return CompiledSide((sub[0],), (sub[1],), False)


def _leaf_channels(fn: ContinuousFn) -> Optional[FrozenSet[Channel]]:
    """Channels observed by the compilable fragment; ``None`` = out."""
    kind = type(fn)
    if kind is ChannelFn:
        return frozenset((fn.channel,))
    if kind is ConstFn:
        return frozenset()
    if kind is OpFn:
        out: FrozenSet[Channel] = frozenset()
        for arg in fn.args:
            sub = _leaf_channels(arg)
            if sub is None:
                return None
            out |= sub
        return out
    if kind is TupleFn:
        out = frozenset()
        for component in fn.components:
            sub = _leaf_channels(component)
            if sub is None:
                return None
            out |= sub
        return out
    return None


def _codomain_arity(codomain: Any) -> Optional[int]:
    """Component count of a compilable codomain; ``None`` = can't.

    Only flat shapes compile: a bare sequence cpo (arity 0, meaning
    "not a product") or a product of sequence cpos.  Trace-valued and
    flat-domain codomains keep the reference comparison semantics.
    """
    if type(codomain) is SequenceCpo:
        return 0
    if type(codomain) is ProductCpo:
        for component in codomain.components:
            if type(component) is not SequenceCpo:
                return None
        return len(codomain.components)
    return None


def _pack_reference_value(value: Any) -> Optional[Any]:
    """A reference-path value in packed form (for the probe)."""
    if isinstance(value, tuple):
        parts = []
        for v in value:
            packed = _pack_reference_value(v)
            if packed is None:
                return None
            parts.append(packed)
        return tuple(parts)
    if isinstance(value, Seq):
        n = value.known_length()
        if n is None:
            return None
        return value.take(n).items
    return None


def compile_description(description: Description,
                        candidates: Any) -> Optional[CompiledDescription]:
    """Compile ``description`` against a candidate generator.

    Returns ``None`` whenever *any* precondition fails — the caller
    falls back to the reference path, never to an error:

    * the description must be exactly :class:`Description` (subclasses
      override hooks the compiled loop would bypass);
    * the candidate generator must publish a constant alphabet
      (``constant_events``);
    * both sides must lie in the compilable expression fragment and
      agree with the codomain's (product) shape;
    * a probe run over the empty and all single-event traces must
      match the reference path bit-for-bit.
    """
    if type(description) is not Description:
        return None
    events = getattr(candidates, "constant_events", None)
    if events is None:
        return None
    lhs_channels = _leaf_channels(description.lhs)
    rhs_channels = _leaf_channels(description.rhs)
    if lhs_channels is None or rhs_channels is None:
        return None
    try:
        table = InternTable(
            events,
            extra_channels=sorted(lhs_channels | rhs_channels,
                                  key=lambda c: c.name),
        )
    except TypeError:
        return None  # unhashable message: cannot intern
    lhs = _compile_side(description.lhs, table.channel_ids)
    rhs = _compile_side(description.rhs, table.channel_ids)
    if lhs is None or rhs is None:
        return None

    arity = _codomain_arity(description.codomain)
    if arity is None:
        return None
    if arity == 0:
        if lhs.is_product or rhs.is_product:
            return None
        leq = packed_leq
    else:
        if not (lhs.is_product and rhs.is_product):
            return None
        if not (len(lhs.evals) == len(rhs.evals) == arity):
            return None
        if arity == 2:
            def leq(a: tuple, b: tuple) -> bool:
                a0, a1 = a
                b0, b1 = b
                return (b0[: len(a0)] == a0
                        and b1[: len(a1)] == a1)
        else:
            def leq(a: tuple, b: tuple) -> bool:
                for x, y in zip(a, b):
                    if y[: len(x)] != x:
                        return False
                return True

    compiled = CompiledDescription(description, table, lhs, rhs, leq)
    if not _probe_agrees(compiled):
        return None
    return compiled


def _probe_agrees(compiled: CompiledDescription) -> bool:
    """Compare compiled vs reference on depth ≤ 1 traces.

    Cheap (the traces have at most one event) and catches the likely
    failure modes — a wrong ``tuple_face``, an op that secretly
    inspects laziness, a codomain whose values aren't sequences —
    before the solver commits to the compiled loop.
    """
    description = compiled.description
    probes = [(Trace.empty(), compiled.root_env)]
    for pair, _cid, event in compiled.actions:
        probes.append((
            Trace.empty().append(event),
            compiled.table.extend_env(compiled.root_env, pair),
        ))
    try:
        for trace, env in probes:
            for side, compiled_side in ((description.lhs, compiled.lhs),
                                        (description.rhs, compiled.rhs)):
                want = _pack_reference_value(side.apply(trace))
                if want is None or compiled_side.eval(env) != want:
                    return False
    except Exception:
        # any probe failure at all means "do not compile" — the
        # reference path is always available and always right
        return False
    return True
