"""Operational enumeration of smooth solutions (§3.3).

The paper generalizes Kleene iteration to a *tree*: the root is ``⊥``;
a node ``u`` has a son ``v`` iff ``u pre v`` and ``f(v) ⊑ g(u)``.  Every
node of the tree automatically satisfies the smoothness condition (the
path from the root witnesses it), so

* the **finite smooth solutions** are exactly the nodes that also satisfy
  the limit condition ``f(s) = g(s)``, and
* the **infinite smooth solutions** are the lubs of infinite paths whose
  limit condition holds in the limit.

The solver explores this tree breadth-first to a depth bound.  One-step
extensions are proposed by a *candidate generator* — by default every
``(channel, message)`` pair from the channels' finite alphabets; for
channels with infinite alphabets (the naturals on ``d`` in §2.3) the
caller supplies a generator, typically derived from ``g(u)`` itself
(an output can only extend the trace if the right side already allows
it, so the elements of ``g(u)`` bound the useful candidates).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import DEFAULT_DEPTH, Description
from repro.core.search import (
    STRATEGIES,
    QueryResult,
    component_lengths,
    get_heuristic,
    parse_predicate,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Schedule, stable_digest
from repro.obs.replay import ReplayDivergence
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.traces.trace import Trace

#: A candidate generator: finite trace ``u`` ↦ events that may extend it.
CandidateFn = Callable[[Trace], Iterable[Event]]


class CandidateError(RuntimeError):
    """A user-supplied candidate generator raised; names the trace at
    which it failed so the misbehaving case is reproducible."""

    def __init__(self, trace: Trace, original: BaseException):
        super().__init__(
            f"candidate generator failed at trace {trace!r}: "
            f"{type(original).__name__}: {original}"
        )
        self.trace = trace
        self.original = original


def _message_sort_key(channel: Channel, m: object) -> tuple:
    """Deterministic ordering key for alphabet messages.

    Ordering by bare ``repr`` is a trap: objects that inherit
    ``object.__repr__`` render as ``<X object at 0x...>`` — a memory
    address — so the candidate order (and with it every digest and
    cache key downstream) would differ between processes.  Such
    messages are rejected outright; everything else sorts by
    ``(type name, repr)``, which is stable across runs and keeps the
    historical per-type ordering intact.
    """
    if type(m).__repr__ is object.__repr__:
        raise ValueError(
            f"channel {channel.name!r} alphabet member {m!r} has no "
            "deterministic repr (it inherits object.__repr__, which "
            "renders a memory address); give the message type a "
            "stable __repr__ or supply a custom candidate generator")
    return (type(m).__name__, repr(m))


def alphabet_candidates(channels: Iterable[Channel]) -> CandidateFn:
    """The default candidate generator: all events over finite alphabets.

    Raises ``ValueError`` at construction if some channel has no finite
    alphabet — then a custom generator is required — or if some
    alphabet member has no deterministic ``repr`` (candidate order
    must be reproducible across processes; see
    :func:`_message_sort_key`).
    """
    events: list[Event] = []
    for c in sorted(channels):
        if c.alphabet is None:
            raise ValueError(
                f"channel {c.name!r} has no finite alphabet; supply a "
                "custom candidate generator"
            )
        events.extend(
            Event(c, m) for m in sorted(
                c.alphabet, key=lambda m, _c=c: _message_sort_key(_c, m)))

    def candidates(u: Trace) -> Iterable[Event]:
        del u
        return events

    # content identity for the persistent result cache: the generator
    # is fully determined by its event alphabet
    candidates.cache_key = {
        "kind": "alphabet",
        "events": [[e.channel.name, repr(e.message)] for e in events],
    }
    # the published constant alphabet is what makes the generator
    # *compilable*: the solver's packed hot path interns exactly these
    # events (per-node generators have no such attribute and keep the
    # solver on the reference path)
    candidates.constant_events = tuple(events)
    return candidates


@dataclass
class SolverResult:
    """Outcome of a bounded tree exploration.

    Attributes:
        finite_solutions: nodes satisfying the limit condition — exact
            smooth solutions (their smoothness is witnessed by the path).
        frontier: traces at the depth bound that still have admissible
            extensions; each is a prefix of zero or more infinite (or
            deeper finite) smooth solutions.
        dead_ends: nodes with no admissible extension and a failing
            limit condition — communication histories after which the
            description is stuck but not quiescent.
        unvisited: nodes parked by a truncation guard before they were
            ever examined — their limit condition was never checked and
            they may or may not have admissible extensions, so they are
            deliberately *not* on ``frontier`` (which promises
            admissible extensions).  They are exactly the seeds a
            resumed exploration continues from; see :meth:`checkpoint`.
        nodes_explored: total tree nodes visited (cumulative across a
            checkpoint/resume chain).
        depth: the exploration bound used.
        truncated: the exploration hit a resource guard (node budget or
            wall-clock budget) before covering the tree to ``depth``;
            the result is a sound but partial under-approximation, and
            unexamined nodes are parked on ``unvisited``.
        truncation_reason: which guard fired, for diagnostics.
        limit_depth: the limit-check depth the exploration used
            (carried for checkpointing; not part of the digest).
        description_name: the explored description's name (carried for
            checkpointing; not part of the digest).
        metrics: per-run metrics summary (nodes, branching, prunes, …)
            when the solver ran with tracing enabled; empty otherwise.
    """

    finite_solutions: list[Trace] = field(default_factory=list)
    frontier: list[Trace] = field(default_factory=list)
    dead_ends: list[Trace] = field(default_factory=list)
    nodes_explored: int = 0
    depth: int = 0
    truncated: bool = False
    truncation_reason: str = ""
    metrics: dict = field(default_factory=dict)
    unvisited: list[Trace] = field(default_factory=list)
    limit_depth: int = 0
    description_name: str = ""
    #: per-site cost attribution (:class:`repro.obs.profile
    #: .SolverProfile` summary) when the solver ran with tracing
    #: enabled; empty otherwise.  Counters are deterministic, the ns
    #: columns are wall-clock — neither enters the digest or the
    #: cache payload.
    profile: dict = field(default_factory=dict)
    #: strategy-private resume state (e.g. the iterative-deepening
    #: iteration counter and tested-node marks).  Carried into
    #: :meth:`checkpoint` as the checkpoint ``meta`` — outside both
    #: the result digest and the cache payload, so strategies can park
    #: state without perturbing any pinned hash.
    strategy_meta: dict = field(default_factory=dict)

    def solution_set(self) -> set[Trace]:
        return set(self.finite_solutions)

    def digest(self) -> str:
        """Stable content hash of the exploration's outcome.

        Covers the solution/frontier/dead-end/unvisited sets
        (order-normalized) and the exploration shape (nodes, depth,
        truncation) — not metrics or wall-clock.  Two explorations
        with equal digests found the same portion of the §3.3 tree, so
        "re-running the solver reproduces the result" is a one-line
        assertion.  Truncation-parked nodes hash under their own
        ``unvisited`` key, *not* under ``frontier``: the frontier
        invariant (admissible extensions exist) was never established
        for them, and resume correctness depends on the distinction.
        """
        return stable_digest({
            "finite_solutions": sorted(
                _trace_key(t) for t in self.finite_solutions),
            "frontier": sorted(_trace_key(t) for t in self.frontier),
            "dead_ends": sorted(_trace_key(t) for t in self.dead_ends),
            "unvisited": sorted(_trace_key(t) for t in self.unvisited),
            "nodes_explored": self.nodes_explored,
            "depth": self.depth,
            "truncated": self.truncated,
        })

    def checkpoint(self) -> "SolverCheckpoint":
        """Serialize this (typically truncated) result as a resumable
        pure-JSON checkpoint.

        The checkpoint carries every classified set plus the unvisited
        seeds as canonical trace keys, and the exploration shape
        (depth, limit depth, node count, description name).  Feed it
        to :meth:`SmoothSolutionSolver.explore` as ``resume_from=`` to
        continue the Kleene chain; a truncate-then-resume pair is
        digest-equal to the straight run.
        """
        from repro.cache.checkpoint import SolverCheckpoint

        return SolverCheckpoint(
            description=self.description_name,
            depth=self.depth,
            limit_depth=self.limit_depth,
            nodes_explored=self.nodes_explored,
            truncation_reason=self.truncation_reason,
            finite_solutions=[_trace_key(t)
                              for t in self.finite_solutions],
            frontier=[_trace_key(t) for t in self.frontier],
            dead_ends=[_trace_key(t) for t in self.dead_ends],
            unvisited=[_trace_key(t) for t in self.unvisited],
            meta=dict(self.strategy_meta),
        )

    def to_payload(self) -> dict:
        """JSON-ready form for the persistent result cache."""
        return {
            "finite_solutions": [_trace_key(t)
                                 for t in self.finite_solutions],
            "frontier": [_trace_key(t) for t in self.frontier],
            "dead_ends": [_trace_key(t) for t in self.dead_ends],
            "unvisited": [_trace_key(t) for t in self.unvisited],
            "nodes_explored": self.nodes_explored,
            "depth": self.depth,
            "truncated": self.truncated,
            "truncation_reason": self.truncation_reason,
            "limit_depth": self.limit_depth,
            "description_name": self.description_name,
            "digest": self.digest(),
        }


def _trace_key(t: Trace) -> list:
    """JSON-ready canonical form of a finite trace."""
    return [[e.channel.name, repr(e.message)] for e in t]


class SmoothSolutionSolver:
    """Bounded breadth-first exploration of the §3.3 tree."""

    def __init__(self, description: Description,
                 candidates: CandidateFn,
                 limit_depth: int = DEFAULT_DEPTH,
                 tracer: Optional[Tracer] = None,
                 cache: Optional[object] = None,
                 compiled: Optional[bool] = None,
                 strategy: str = "bfs",
                 heuristic: str = "rhs-distance",
                 dedup: bool = False):
        self.description = description
        self.candidates = candidates
        self.limit_depth = limit_depth
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: a :class:`repro.cache.CacheStore` (or None); when set,
        #: :meth:`explore` consults it before searching and stores
        #: completed results after
        self.cache = cache
        #: compiled hot path: ``None`` (default) auto-detects — use
        #: the packed representation when the description and
        #: candidate generator compile (see :mod:`repro.core
        #: .compiled`), else the reference path.  ``False`` forces the
        #: reference path; ``True`` demands compilation and makes
        #: :meth:`explore` raise if it is unavailable.
        self.compiled = compiled
        #: exploration order: ``"bfs"`` (the reference order),
        #: ``"best-first"`` (priority frontier ranked by
        #: ``heuristic``) or ``"iterative-deepening"``.  Strategies
        #: reorder the walk, never the admissibility or limit tests,
        #: so completed runs are digest-identical across strategies.
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; known: "
                f"{', '.join(STRATEGIES)}")
        self.strategy = strategy
        #: best-first ranking heuristic (see
        #: :data:`repro.core.search.HEURISTICS`); validated eagerly so
        #: a typo fails at construction, not mid-search.
        self.heuristic = get_heuristic(heuristic).name
        #: duplicate-state reduction: memoize ``g``, the limit verdict
        #: and the admissible-extension scan per *interned per-channel
        #: projection* — nodes whose channel projections coincide (the
        #: paper's ``b(t)``) share one evaluation.  Every node is
        #: still enumerated and classified, so the solution set (and
        #: digest) is untouched; the saving is evaluation work on
        #: converging interleavings.
        self.dedup = dedup

    @classmethod
    def over_channels(cls, description: Description,
                      channels: Iterable[Channel],
                      limit_depth: int = DEFAULT_DEPTH,
                      tracer: Optional[Tracer] = None,
                      cache: Optional[object] = None,
                      compiled: Optional[bool] = None,
                      strategy: str = "bfs",
                      heuristic: str = "rhs-distance",
                      dedup: bool = False) -> "SmoothSolutionSolver":
        return cls(description, alphabet_candidates(channels),
                   limit_depth=limit_depth, tracer=tracer,
                   cache=cache, compiled=compiled, strategy=strategy,
                   heuristic=heuristic, dedup=dedup)

    # -- tree structure ------------------------------------------------------

    def children(self, u: Trace) -> Iterator[Trace]:
        """Admissible one-step extensions: ``v`` with ``f(v) ⊑ g(u)``."""
        f = self.description.lhs
        gu = self.description.rhs.apply(u)
        for event in self._candidate_events(u, gu):
            v = u.append(event)
            fv = f.apply(v)
            if self.description._leq(fv, gu, self.limit_depth):
                yield v

    def _candidate_events(self, u: Trace,
                          gu: object = None) -> list[Event]:
        """Run the candidate generator, wrapping its failures.

        Generators that publish ``accepts_gu = True`` receive the
        caller's already-computed ``g(u)`` as a second argument — the
        hot-path discipline ("``g`` exactly once per node") extended
        through the generator protocol, so an rhs-guided generator
        does not silently double every ``rhs.apply``.
        """
        try:
            if gu is not None and getattr(self.candidates,
                                          "accepts_gu", False):
                return list(self.candidates(u, gu))
            return list(self.candidates(u))
        except CandidateError:
            raise
        except Exception as exc:
            raise CandidateError(u, exc) from exc

    def is_node(self, u: Trace) -> bool:
        """Is the finite trace ``u`` a node of the tree?

        Equivalent to: the path ``⊥ … u`` exists, i.e. every pre-pair
        along ``u`` satisfies the smoothness condition.
        """
        return self.description.smoothness_holds(
            u, depth=max(u.length(), 1)
        )

    # -- exploration ----------------------------------------------------------

    def explore(self, max_depth: int,
                max_nodes: int = 200_000,
                budget_seconds: Optional[float] = None,
                resume_from: Optional[object] = None,
                _watch: Optional[Callable[[Trace], str]] = None
                ) -> SolverResult:
        """Breadth-first exploration to ``max_depth``.

        Resource guards keep runaway alphabets and hostile candidate
        generators from running unbounded: at most ``max_nodes`` nodes
        are expanded *per call* (so a resumed run gets a fresh
        budget), and an optional ``budget_seconds`` wall-clock budget
        caps the search in time.  When a guard fires the partial
        result is returned with ``truncated=True`` — never-examined
        nodes are parked on ``result.unvisited`` (not the frontier,
        whose invariant they were never checked against) — instead of
        raising; a degraded answer beats no answer for diagnosis.

        ``resume_from`` continues a truncated exploration: pass a
        :class:`~repro.cache.checkpoint.SolverCheckpoint` (or its dict
        / a path to its JSON) produced by
        :meth:`SolverResult.checkpoint`.  Every carried trace is
        replayed as a witness path through the live description (so
        checkpoints stay pure JSON and corrupted ones are caught, and
        the carried ``f(u)`` values are recomputed), then the BFS is
        re-seeded from the unvisited nodes at their recorded depths.
        Invariant: truncate-then-resume is digest-equal to the
        straight run.

        A candidate generator that raises aborts the search with a
        :class:`CandidateError` naming the trace it choked on.

        With a ``cache`` store attached (and no ``resume_from``), the
        exploration first consults the persistent result cache and
        returns the rebuilt result on a hit; completed (and
        deterministically node-budget-truncated) results are stored
        back.  Wall-clock-truncated results are never cached — where
        the clock fires is not a function of the inputs.

        With a tracer attached the exploration additionally emits
        ``solver.*`` spans/events (per-level spans, prune / accept /
        dead-end / truncate events, ``cache.hit``/``cache.miss``) and
        fills ``result.metrics``.

        Hot-path discipline: per node ``u`` the right side ``g(u)`` is
        evaluated exactly once (shared between the limit condition and
        every candidate's admissibility test), the left side ``f(u)``
        is carried over from the parent's admissibility scan (each node
        was once a candidate), and the limit condition is checked
        exactly once.  The frontier-extendability probe at the depth
        bound short-circuits at the first admissible candidate instead
        of re-running the full scan.

        When the description and candidate generator lie in the
        compilable finite fragment (see :mod:`repro.core.compiled`),
        the same BFS runs over interned channels/messages and flat
        packed traces with batched per-level ``g`` evaluation — an
        order of magnitude faster, and bit-identical at this API
        boundary: results, digests, checkpoints and cache payloads
        match the reference path exactly (pinned by
        ``tests/core/test_compiled_solver.py``).  The ``compiled``
        constructor flag selects the engine explicitly.
        """
        deadline = (None if budget_seconds is None
                    else time.monotonic() + budget_seconds)
        tracer = self.tracer
        tracing = tracer.enabled
        profile = None
        if tracing:
            from repro.obs.profile import SolverProfile

            profile = SolverProfile()
        cache_key = None
        if self.cache is not None and resume_from is None:
            from repro.cache.keys import solver_cache_key

            cache_key = solver_cache_key(
                self.description, self.candidates, max_depth,
                self.limit_depth, max_nodes, budget_seconds)
            if self.strategy != "bfs":
                # completed runs are strategy-independent, but a
                # node-budget truncation parks a strategy-specific
                # set — the key must tell the entries apart.  Plain
                # BFS keeps the historical key so warm caches stay
                # warm.  ``dedup`` never changes the result, so it
                # stays out of the key on purpose.
                cache_key = dict(cache_key,
                                 strategy=self.strategy,
                                 heuristic=self.heuristic)
            if profile is not None:
                t0 = time.perf_counter_ns()
                hit = self.cache.get("solver", cache_key)
                profile.add("cache.get",
                            time.perf_counter_ns() - t0)
            else:
                hit = self.cache.get("solver", cache_key)
            if hit is not None:
                rebuilt = self._result_from_payload(hit)
                if rebuilt is not None:
                    if tracing:
                        tracer.event(
                            "cache.hit", category="cache",
                            track="solver",
                            key=self.cache.key_digest(cache_key)[:16],
                            nodes_skipped=rebuilt.nodes_explored)
                        rebuilt.profile = profile.summary()
                    return rebuilt
            if tracing:
                tracer.event(
                    "cache.miss", category="cache", track="solver",
                    key=self.cache.key_digest(cache_key)[:16])
        metrics = MetricsRegistry() if tracing else None
        result = SolverResult(
            depth=max_depth, limit_depth=self.limit_depth,
            description_name=getattr(self.description, "name", ""))
        compiled = None
        if self.compiled is not False:
            from repro.core.compiled import compile_description

            if profile is not None:
                t0 = time.perf_counter_ns()
                compiled = compile_description(
                    self.description, self.candidates)
                profile.add("compile.build",
                            time.perf_counter_ns() - t0)
            else:
                compiled = compile_description(
                    self.description, self.candidates)
            if compiled is None and self.compiled is True:
                raise ValueError(
                    "compiled=True, but this description/candidate "
                    "pair is outside the compilable fragment (see "
                    "repro.core.compiled for the preconditions)")
        if self.dedup and compiled is None:
            self._require_dedup_eligible()
        # strategy routing: plain BFS stays on the pinned legacy
        # loops; best-first, duplicate-state reduction and query
        # watches share the ordered frontier (a depth-ranked heap
        # *is* BFS, FIFO tie-break included); iterative deepening has
        # its own loop.  All of them work per engine adapter, so both
        # representations run the same strategy code.
        deepening = self.strategy == "iterative-deepening"
        ordered = (self.strategy == "best-first"
                   or (not deepening
                       and (self.dedup or _watch is not None)))
        if compiled is not None:
            from repro.core.compiled import CompiledEvalError

            try:
                if deepening or ordered:
                    engine = _CompiledEngine(self, compiled, metrics,
                                             profile)
                    runner = (self._explore_deepening if deepening
                              else self._explore_ordered)
                    return runner(
                        engine, result, max_depth, max_nodes,
                        budget_seconds, deadline, resume_from,
                        metrics, profile, cache_key, _watch)
                return self._explore_compiled(
                    compiled, result, max_depth, max_nodes,
                    budget_seconds, deadline, resume_from, metrics,
                    profile, cache_key)
            except CompiledEvalError as exc:
                # a compiled closure left the finite fragment mid-run
                # (possible only for exotic ops that slipped past the
                # compile-time probe): restart cleanly on the
                # always-correct reference path
                if tracing:
                    tracer.event(
                        "solver.compiled_fallback", category="solver",
                        track="solver", reason=str(exc))
                fallback = SmoothSolutionSolver(
                    self.description, self.candidates,
                    limit_depth=self.limit_depth, tracer=self.tracer,
                    cache=self.cache, compiled=False,
                    strategy=self.strategy, heuristic=self.heuristic,
                    dedup=False)
                return fallback.explore(
                    max_depth, max_nodes=max_nodes,
                    budget_seconds=budget_seconds,
                    resume_from=resume_from, _watch=_watch)
        if deepening or ordered:
            engine = _ReferenceEngine(self, metrics, profile)
            runner = (self._explore_deepening if deepening
                      else self._explore_ordered)
            return runner(
                engine, result, max_depth, max_nodes, budget_seconds,
                deadline, resume_from, metrics, profile, cache_key,
                _watch)
        # level entries are ``(u, f(u))``: f was computed when u was a
        # candidate of its parent (or re-derived from the checkpoint),
        # so it rides along instead of being recomputed per node
        pending: dict[int, list[tuple[Trace, object]]] = {}
        explored = 0
        if resume_from is None:
            root_trace = Trace.empty()
            start_depth = 0
            if profile is not None:
                t0 = time.perf_counter_ns()
                root_f = self.description.lhs.apply(root_trace)
                profile.add("lhs.apply.root",
                            time.perf_counter_ns() - t0)
            else:
                root_f = self.description.lhs.apply(root_trace)
            level: list[tuple[Trace, object]] = [
                (root_trace, root_f)]
        else:
            checkpoint = self._coerce_checkpoint(resume_from)
            self._validate_checkpoint(checkpoint, max_depth)
            pending = self._resume_seeds(checkpoint, result)
            explored = checkpoint.nodes_explored
            if not pending:
                # checkpoint of a complete exploration: nothing left
                result.nodes_explored = explored
                return result
            start_depth = min(pending)
            level = pending.pop(start_depth)
        session_explored = 0
        with tracer.span("solver.explore", category="solver",
                         track="solver", depth=max_depth,
                         max_nodes=max_nodes,
                         resumed=resume_from is not None,
                         limit_depth=self.limit_depth) as root:
            for depth in range(start_depth, max_depth + 1):
                with tracer.span("solver.level", category="solver",
                                 track="solver", depth=depth,
                                 width=len(level)):
                    if profile is not None:
                        level_t0 = time.perf_counter_ns()
                        level_explored = session_explored
                        level_accepted = len(result.finite_solutions)
                        level_dead = len(result.dead_ends)
                    # children of already-explored nodes carried over
                    # by a checkpoint come first, preserving BFS order
                    next_level: list[tuple[Trace, object]] = \
                        pending.pop(depth + 1, [])
                    for i, (u, fu) in enumerate(level):
                        reason = ""
                        if session_explored >= max_nodes:
                            reason = (f"node budget ({max_nodes}) "
                                      f"exhausted at depth {depth}")
                        elif deadline is not None and \
                                time.monotonic() > deadline:
                            reason = (f"wall-clock budget "
                                      f"({budget_seconds}s) exhausted "
                                      f"at depth {depth}")
                        if reason:
                            self._truncate(result, level[i:],
                                           next_level, reason)
                            if tracing:
                                tracer.event(
                                    "solver.truncate",
                                    category="solver", track="solver",
                                    reason=reason,
                                    parked=len(result.unvisited))
                            break
                        explored += 1
                        session_explored += 1
                        if profile is not None:
                            t0 = time.perf_counter_ns()
                            gu = self.description.rhs.apply(u)
                            t1 = time.perf_counter_ns()
                            limit = self.description.limit_report(
                                u, self.limit_depth,
                                lhs_value=fu, rhs_value=gu).holds
                            t2 = time.perf_counter_ns()
                            profile.add("rhs.apply", t1 - t0)
                            profile.add("limit_report", t2 - t1)
                        else:
                            gu = self.description.rhs.apply(u)
                            limit = self.description.limit_report(
                                u, self.limit_depth,
                                lhs_value=fu, rhs_value=gu).holds
                        if depth < max_depth:
                            kids = self._expand(u, gu, metrics,
                                                profile)
                        else:
                            kids = None
                        if limit:
                            result.finite_solutions.append(u)
                            if tracing:
                                tracer.event(
                                    "solver.accept",
                                    category="solver", track="solver",
                                    node=repr(u), depth=depth)
                        if kids is None:
                            # at the bound: frontier if extendable
                            if self._extendable(u, gu, profile):
                                result.frontier.append(u)
                            elif not limit:
                                result.dead_ends.append(u)
                            continue
                        if not kids and not limit:
                            result.dead_ends.append(u)
                            if tracing:
                                tracer.event(
                                    "solver.dead_end",
                                    category="solver", track="solver",
                                    node=repr(u), depth=depth)
                        next_level.extend(kids)
                    if tracing:
                        metrics.gauge("solver.level_width").set(
                            len(next_level))
                        profile.note(
                            "expanded",
                            session_explored - level_explored)
                        profile.note(
                            "accepted",
                            len(result.finite_solutions)
                            - level_accepted)
                        profile.note(
                            "dead_ends",
                            len(result.dead_ends) - level_dead)
                        profile.end_level(
                            depth, len(level),
                            time.perf_counter_ns() - level_t0)
                    level = next_level
                if result.truncated or not level:
                    break
            result.nodes_explored = explored
            if tracing:
                metrics.counter("solver.nodes_expanded").inc(
                    session_explored)
                metrics.counter("solver.finite_solutions").inc(
                    len(result.finite_solutions))
                metrics.counter("solver.dead_ends").inc(
                    len(result.dead_ends))
                metrics.gauge("solver.frontier_size").set(
                    len(result.frontier))
                root.annotate(nodes=explored,
                              solutions=len(result.finite_solutions),
                              truncated=result.truncated)
        if cache_key is not None and self._cacheable(result):
            if profile is not None:
                t0 = time.perf_counter_ns()
                self.cache.put("solver", cache_key,
                               result.to_payload())
                profile.add("cache.put",
                            time.perf_counter_ns() - t0)
            else:
                self.cache.put("solver", cache_key,
                               result.to_payload())
            if tracing:
                tracer.event(
                    "cache.write", category="cache", track="solver",
                    key=self.cache.key_digest(cache_key)[:16])
        if tracing:
            profile.to_metrics(metrics)
            result.metrics = metrics.summary()
            result.profile = profile.summary()
        return result

    @staticmethod
    def _cacheable(result: SolverResult) -> bool:
        """Is this result a pure function of the cache key?  Complete
        and node-budget-truncated explorations are (the traversal is
        deterministic); wall-clock truncations are not — where the
        clock fires depends on the machine, not the inputs.  Query
        early-exits are not either — the predicate is not part of the
        key.  Results carrying strategy-private resume state
        (``strategy_meta``) stay out too: the cache payload cannot
        round-trip the meta, and a resume without it would
        double-classify nodes."""
        if result.strategy_meta:
            return False
        return not (result.truncated
                    and ("wall-clock" in result.truncation_reason
                         or result.truncation_reason.startswith(
                             "query")))

    def _expand(self, u: Trace, gu: object,
                metrics: Optional[MetricsRegistry],
                profile: Optional[object] = None
                ) -> list[tuple[Trace, object]]:
        """The :meth:`children` computation against a precomputed
        ``g(u)``, returning ``(v, f(v))`` pairs so each child's left
        side is evaluated once and reused when the child is explored.
        With ``metrics`` attached, also narrated: one ``solver.prune``
        event per inadmissible candidate, branching and prune counts
        into ``metrics``; with ``profile`` attached the candidate
        scan's f-evaluation count and wall time are attributed to the
        ``lhs.apply.expand`` site."""
        f = self.description.lhs
        t0 = (time.perf_counter_ns() if profile is not None else 0)
        events = self._candidate_events(u, gu)
        kids: list[tuple[Trace, object]] = []
        pruned = 0
        for event in events:
            v = u.append(event)
            fv = f.apply(v)
            if self.description._leq(fv, gu, self.limit_depth):
                kids.append((v, fv))
            else:
                pruned += 1
                if metrics is not None:
                    self.tracer.event(
                        "solver.prune", category="solver",
                        track="solver", node=repr(u),
                        candidate=repr(event), reason="f(v) ⋢ g(u)")
        if metrics is not None:
            metrics.counter("solver.candidates_proposed").inc(
                len(events))
            metrics.counter("solver.candidates_pruned").inc(pruned)
            metrics.histogram("solver.branching").record(len(kids))
        if profile is not None:
            profile.add("lhs.apply.expand",
                        time.perf_counter_ns() - t0,
                        calls=len(events))
            profile.note("proposed", len(events))
            profile.note("pruned", pruned)
        return kids

    def _extendable(self, u: Trace, gu: object,
                    profile: Optional[object] = None) -> bool:
        """Does ``u`` have at least one admissible extension?  The
        frontier probe: short-circuits at the first hit and reuses the
        caller's ``g(u)``.  With ``profile``, the f evaluations spent
        probing are attributed to ``lhs.apply.probe``."""
        f = self.description.lhs
        t0 = (time.perf_counter_ns() if profile is not None else 0)
        tried = 0
        hit = False
        for event in self._candidate_events(u, gu):
            v = u.append(event)
            tried += 1
            if self.description._leq(f.apply(v), gu,
                                     self.limit_depth):
                hit = True
                break
        if profile is not None:
            profile.add("lhs.apply.probe",
                        time.perf_counter_ns() - t0, calls=tried)
        return hit

    @staticmethod
    def _truncate(result: SolverResult,
                  unvisited: list[tuple[Trace, object]],
                  next_level: list[tuple[Trace, object]],
                  reason: str) -> None:
        """Mark ``result`` partial; park unexamined nodes.

        Parked nodes go on ``result.unvisited``, never the frontier:
        the frontier's documented invariant is "still has admissible
        extensions", which was never checked for these nodes (nor was
        their limit condition).  Keeping the buckets apart is what
        makes resume sound — unvisited nodes are re-seeded and fully
        classified, frontier nodes are carried over as-is.
        """
        result.truncated = True
        result.truncation_reason = reason
        result.unvisited.extend(u for u, _ in unvisited)
        result.unvisited.extend(v for v, _ in next_level)

    # -- strategy layer -------------------------------------------------------

    def _require_dedup_eligible(self) -> None:
        """Duplicate-state reduction keys nodes on their per-channel
        projections (the paper's ``b(t)``); that key is sound only
        when both sides are pure functions of those projections.  The
        compilable expression fragment guarantees it; anything else
        (subclassed descriptions, opaque lambdas) must refuse loudly
        rather than dedup unsoundly."""
        from repro.core.compiled import _leaf_channels

        if type(self.description) is Description \
                and _leaf_channels(self.description.lhs) is not None \
                and _leaf_channels(self.description.rhs) is not None:
            return
        raise ValueError(
            "dedup=True requires a plain Description whose sides "
            "factor through per-channel projections (sides that "
            "inspect whole traces would make the duplicate-state key "
            "unsound); run with dedup=False")

    def _channel_universe(self) -> tuple:
        """The fixed channel set heuristics and dedup keys range over:
        the candidate alphabet's channels plus both sides' observed
        channels — the same universe the compiled engine interns, so
        feature values agree across engines."""
        from repro.core.compiled import _leaf_channels

        chans = set()
        events = getattr(self.candidates, "constant_events", None)
        if events:
            chans.update(e.channel for e in events)
        for side in (self.description.lhs, self.description.rhs):
            leaf = _leaf_channels(side)
            if leaf:
                chans.update(leaf)
        return tuple(sorted(chans, key=lambda c: c.name))

    def _finish_run(self, result: SolverResult,
                    cache_key: Optional[dict],
                    metrics: Optional[MetricsRegistry],
                    profile: Optional[object],
                    tracing: bool) -> SolverResult:
        """Shared exploration epilogue: cache write-back (when the
        result is a pure function of the key) and metrics/profile
        attachment."""
        if cache_key is not None and self._cacheable(result):
            if profile is not None:
                t0 = time.perf_counter_ns()
                self.cache.put("solver", cache_key,
                               result.to_payload())
                profile.add("cache.put",
                            time.perf_counter_ns() - t0)
            else:
                self.cache.put("solver", cache_key,
                               result.to_payload())
            if tracing:
                self.tracer.event(
                    "cache.write", category="cache", track="solver",
                    key=self.cache.key_digest(cache_key)[:16])
        if tracing:
            profile.to_metrics(metrics)
            result.metrics = metrics.summary()
            result.profile = profile.summary()
        return result

    def _explore_ordered(self, engine, result: SolverResult,
                         max_depth: int, max_nodes: int,
                         budget_seconds: Optional[float],
                         deadline: Optional[float],
                         resume_from: Optional[object],
                         metrics: Optional[MetricsRegistry],
                         profile: Optional[object],
                         cache_key: Optional[dict],
                         watch: Optional[Callable[[Trace], str]]
                         ) -> SolverResult:
        """Priority-frontier exploration over either engine.

        The frontier is a heap of ``(rank, seq, ...)`` entries: the
        configured heuristic ranks nodes, the monotone ``seq`` breaks
        ties FIFO.  With the ``depth`` rank this *is* the reference
        BFS — same pop order, same truncation parking — which is how
        plain-BFS runs with duplicate-state reduction or a query watch
        share this loop without perturbing digests.  ``g(u)`` is
        evaluated at push time (the rank needs it); every pushed node
        is popped on a completed run, so the one-``g``-per-node
        discipline holds wherever the budget does not fire first.

        With ``dedup`` on, ``g``, the limit verdict, the admissible
        edge scan and the extendability probe are memoized per
        per-channel projection — nodes are still enumerated and
        classified one by one (the solution set is untouched), only
        the evaluation work is shared.

        ``watch`` is the query hook: called with each finite solution
        as it is classified; a truthy return value early-exits the
        search with that string as the truncation reason, parking the
        remaining frontier as ``unvisited`` (the result stays a sound,
        resumable under-approximation).
        """
        tracer = self.tracer
        tracing = tracer.enabled
        heuristic = get_heuristic(
            "depth" if self.strategy == "bfs" else self.heuristic)
        rank_fn = heuristic.fn
        needs_values = heuristic.needs_values
        needs_counts = heuristic.needs_counts
        plain_depth = heuristic.name == "depth"
        memo: Optional[dict] = {} if self.dedup else None
        label = f"strategy.{self.strategy}"
        explored = 0
        heap: list = []
        seq = 0

        def entry_of(node) -> Optional[dict]:
            if memo is None:
                return None
            key = engine.env_key(node)
            if key is None:
                return None
            entry = memo.get(key)
            if entry is None:
                entry = {}
                try:
                    memo[key] = entry
                except TypeError:
                    return None
                if profile is not None:
                    profile.bump("dedup.states")
            return entry

        def g_of(node, entry):
            if entry is not None and "g" in entry:
                if profile is not None:
                    profile.bump("dedup.hits")
                return entry["g"]
            gu = engine.g(node)
            if entry is not None:
                entry["g"] = gu
            return gu

        def edges_of(node, fu, gu, entry):
            if entry is not None and "edges" in entry:
                if profile is not None:
                    profile.bump("dedup.hits")
                return entry["edges"]
            edges = engine.edges(node, fu, gu)
            if entry is not None:
                entry["edges"] = edges
            return edges

        def limit_of(node, fu, gu, entry):
            if entry is not None and "limit" in entry:
                if profile is not None:
                    profile.bump("dedup.hits")
                return entry["limit"]
            limit = engine.limit(node, fu, gu)
            if entry is not None:
                entry["limit"] = limit
            return limit

        def ext_of(node, fu, gu, entry):
            if entry is not None and "ext" in entry:
                if profile is not None:
                    profile.bump("dedup.hits")
                return entry["ext"]
            ext = engine.extendable(node, fu, gu)
            if entry is not None:
                entry["ext"] = ext
            return ext

        def push(node, fu, depth):
            nonlocal seq
            entry = entry_of(node)
            gu = g_of(node, entry)
            if plain_depth:
                rank = depth
            else:
                f_lens = engine.f_lens(fu) if needs_values else ()
                g_lens = engine.g_lens(gu) if needs_values else ()
                counts = engine.counts(node) if needs_counts else ()
                rank = rank_fn(depth, f_lens, g_lens, counts)
            heapq.heappush(heap, (rank, seq, depth, node, fu, gu))
            seq += 1
            if profile is not None:
                profile.bump(label + ".pushed")

        def park(reason: str) -> None:
            result.truncated = True
            result.truncation_reason = reason
            while heap:
                _r, _s, _d, node, _fu, _gu = heapq.heappop(heap)
                result.unvisited.append(engine.trace(node))
            if tracing:
                tracer.event(
                    "solver.truncate", category="solver",
                    track="solver", reason=reason,
                    parked=len(result.unvisited))

        if resume_from is None:
            node, fu = engine.root()
            push(node, fu, 0)
        else:
            checkpoint = self._coerce_checkpoint(resume_from)
            self._validate_checkpoint(checkpoint, max_depth)
            seeds = engine.seeds(checkpoint, result)
            explored = checkpoint.nodes_explored
            if not seeds:
                result.nodes_explored = explored
                return result
            for depth, node, fu in seeds:
                push(node, fu, depth)
        session = 0
        with tracer.span("solver.explore", category="solver",
                         track="solver", depth=max_depth,
                         max_nodes=max_nodes,
                         resumed=resume_from is not None,
                         limit_depth=self.limit_depth) as root:
            while heap:
                reason = ""
                if session >= max_nodes:
                    reason = (f"node budget ({max_nodes}) "
                              f"exhausted at depth {heap[0][2]}")
                elif deadline is not None and \
                        time.monotonic() > deadline:
                    reason = (f"wall-clock budget "
                              f"({budget_seconds}s) exhausted "
                              f"at depth {heap[0][2]}")
                if reason:
                    park(reason)
                    break
                _rank, _s, depth, node, fu, gu = heapq.heappop(heap)
                explored += 1
                session += 1
                if profile is not None:
                    profile.bump(label + ".popped")
                entry = entry_of(node)
                limit = limit_of(node, fu, gu, entry)
                trace = engine.trace(node)
                if depth < max_depth:
                    kids = [(engine.child(node, edge), fv)
                            for edge, fv in
                            edges_of(node, fu, gu, entry)]
                else:
                    kids = None
                if limit:
                    result.finite_solutions.append(trace)
                    if tracing:
                        tracer.event(
                            "solver.accept", category="solver",
                            track="solver", node=repr(trace),
                            depth=depth)
                if kids is None:
                    # at the bound: frontier if extendable
                    if ext_of(node, fu, gu, entry):
                        result.frontier.append(trace)
                    elif not limit:
                        result.dead_ends.append(trace)
                else:
                    if not kids and not limit:
                        result.dead_ends.append(trace)
                        if tracing:
                            tracer.event(
                                "solver.dead_end", category="solver",
                                track="solver", node=repr(trace),
                                depth=depth)
                    for cnode, fv in kids:
                        push(cnode, fv, depth + 1)
                if limit and watch is not None:
                    stop = watch(trace)
                    if stop:
                        park(stop)
                        break
            result.nodes_explored = explored
            if tracing:
                metrics.counter("solver.nodes_expanded").inc(session)
                metrics.counter("solver.finite_solutions").inc(
                    len(result.finite_solutions))
                metrics.counter("solver.dead_ends").inc(
                    len(result.dead_ends))
                metrics.gauge("solver.frontier_size").set(
                    len(result.frontier))
                root.annotate(nodes=explored,
                              solutions=len(result.finite_solutions),
                              truncated=result.truncated)
        return self._finish_run(result, cache_key, metrics, profile,
                                tracing)

    def _explore_deepening(self, engine, result: SolverResult,
                           max_depth: int, max_nodes: int,
                           budget_seconds: Optional[float],
                           deadline: Optional[float],
                           resume_from: Optional[object],
                           metrics: Optional[MetricsRegistry],
                           profile: Optional[object],
                           cache_key: Optional[dict],
                           watch: Optional[Callable[[Trace], str]]
                           ) -> SolverResult:
        """Iterative deepening over either engine.

        Iteration ``L`` walks depth-first from the persistent seeds
        (the root, or a checkpoint's parked nodes) and *goal-tests* —
        evaluates ``g``, checks the limit condition, classifies,
        counts — exactly the nodes at depth ``L``; shallower nodes are
        re-expanded as interior rework (uncounted, so
        ``nodes_explored`` equals the BFS count and completed-run
        digests match BFS exactly).  The memory footprint is one DFS
        stack instead of a whole BFS level.

        A budget truncation parks the DFS residue plus this
        iteration's already-tested still-extendable nodes; the latter
        are marked in ``strategy_meta["tested"]`` (with the iteration
        number) so a resume — which must itself use
        iterative-deepening, enforced at checkpoint validation —
        treats them as interior-only and never re-classifies them.
        Checkpoints parked by BFS/best-first carry only untested
        nodes, so this loop resumes them from their shallowest depth.
        """
        tracer = self.tracer
        tracing = tracer.enabled
        memo: Optional[dict] = {} if self.dedup else None
        explored = 0

        def entry_of(node) -> Optional[dict]:
            if memo is None:
                return None
            key = engine.env_key(node)
            if key is None:
                return None
            entry = memo.get(key)
            if entry is None:
                entry = {}
                try:
                    memo[key] = entry
                except TypeError:
                    return None
                if profile is not None:
                    profile.bump("dedup.states")
            return entry

        def g_of(node, entry):
            if entry is not None and "g" in entry:
                if profile is not None:
                    profile.bump("dedup.hits")
                return entry["g"]
            gu = engine.g(node)
            if entry is not None:
                entry["g"] = gu
            return gu

        def edges_of(node, fu, gu, entry):
            if entry is not None and "edges" in entry:
                if profile is not None:
                    profile.bump("dedup.hits")
                return entry["edges"]
            edges = engine.edges(node, fu, gu)
            if entry is not None:
                entry["edges"] = edges
            return edges

        def limit_of(node, fu, gu, entry):
            if entry is not None and "limit" in entry:
                if profile is not None:
                    profile.bump("dedup.hits")
                return entry["limit"]
            limit = engine.limit(node, fu, gu)
            if entry is not None:
                entry["limit"] = limit
            return limit

        def ext_of(node, fu, gu, entry):
            if entry is not None and "ext" in entry:
                if profile is not None:
                    profile.bump("dedup.hits")
                return entry["ext"]
            ext = engine.extendable(node, fu, gu)
            if entry is not None:
                entry["ext"] = ext
            return ext

        # persistent seeds: (depth, node, fu, tested); each iteration
        # restarts its DFS from here (classic deepening rework)
        if resume_from is None:
            node, fu = engine.root()
            seeds = [(0, node, fu, False)]
            start_iteration = 0
        else:
            checkpoint = self._coerce_checkpoint(resume_from)
            self._validate_checkpoint(checkpoint, max_depth)
            tested_keys = {
                tuple(tuple(e) for e in key)
                for key in checkpoint.meta.get("tested", [])}
            raw = engine.seeds(checkpoint, result)
            explored = checkpoint.nodes_explored
            if not raw:
                result.nodes_explored = explored
                return result
            seeds = []
            for depth, node, fu in raw:
                key = tuple(tuple(e) for e in
                            _trace_key(engine.trace(node)))
                seeds.append((depth, node, fu, key in tested_keys))
            start_iteration = int(checkpoint.meta.get(
                "iteration", min(d for d, _n, _f, _t in seeds)))
        session = 0
        with tracer.span("solver.explore", category="solver",
                         track="solver", depth=max_depth,
                         max_nodes=max_nodes,
                         resumed=resume_from is not None,
                         limit_depth=self.limit_depth) as root:
            for iteration in range(start_iteration, max_depth + 1):
                goal_tested = 0
                alive: list = []      # tested this iteration, extendable
                held: list = []       # seeds sitting this iteration out
                stack: list = []
                for sd in seeds:
                    d, node, fu, tested = sd
                    if d > iteration or (tested and d == iteration):
                        held.append(sd)
                    else:
                        stack.append((d, node, fu))
                stack.reverse()

                def park(reason: str) -> None:
                    result.truncated = True
                    result.truncation_reason = reason
                    tested_marks: list = []
                    for d, node, fu in stack:
                        result.unvisited.append(engine.trace(node))
                    for d, node, fu in alive:
                        trace = engine.trace(node)
                        result.unvisited.append(trace)
                        tested_marks.append(_trace_key(trace))
                    for d, node, fu, tested in held:
                        trace = engine.trace(node)
                        result.unvisited.append(trace)
                        if tested:
                            tested_marks.append(_trace_key(trace))
                    result.strategy_meta = {
                        "strategy": "iterative-deepening",
                        "iteration": iteration,
                        "tested": tested_marks,
                    }
                    if tracing:
                        tracer.event(
                            "solver.truncate", category="solver",
                            track="solver", reason=reason,
                            parked=len(result.unvisited))

                truncated = False
                while stack:
                    d, node, fu = stack.pop()
                    entry = entry_of(node)
                    if d < iteration:
                        # interior rework: re-derive the children on
                        # the way down to this iteration's depth
                        gu = g_of(node, entry)
                        kids = [(engine.child(node, edge), fv)
                                for edge, fv in
                                edges_of(node, fu, gu, entry)]
                        if profile is not None:
                            profile.bump(
                                "strategy.iterative-deepening.rework")
                        for cnode, fv in reversed(kids):
                            stack.append((d + 1, cnode, fv))
                        continue
                    reason = ""
                    if session >= max_nodes:
                        reason = (f"node budget ({max_nodes}) "
                                  f"exhausted at depth {iteration}")
                    elif deadline is not None and \
                            time.monotonic() > deadline:
                        reason = (f"wall-clock budget "
                                  f"({budget_seconds}s) exhausted "
                                  f"at depth {iteration}")
                    if reason:
                        stack.append((d, node, fu))
                        park(reason)
                        truncated = True
                        break
                    explored += 1
                    session += 1
                    goal_tested += 1
                    gu = g_of(node, entry)
                    limit = limit_of(node, fu, gu, entry)
                    trace = engine.trace(node)
                    if limit:
                        result.finite_solutions.append(trace)
                        if tracing:
                            tracer.event(
                                "solver.accept", category="solver",
                                track="solver", node=repr(trace),
                                depth=d)
                    if iteration < max_depth:
                        kids = edges_of(node, fu, gu, entry)
                        if kids:
                            alive.append((d, node, fu))
                        elif not limit:
                            result.dead_ends.append(trace)
                            if tracing:
                                tracer.event(
                                    "solver.dead_end",
                                    category="solver", track="solver",
                                    node=repr(trace), depth=d)
                    else:
                        if ext_of(node, fu, gu, entry):
                            result.frontier.append(trace)
                        elif not limit:
                            result.dead_ends.append(trace)
                    if limit and watch is not None:
                        stop = watch(trace)
                        if stop:
                            park(stop)
                            truncated = True
                            break
                if truncated:
                    break
                if not alive and not held:
                    # no deeper nodes exist and no seed waits for a
                    # later iteration: the tree is exhausted
                    break
            result.nodes_explored = explored
            if tracing:
                metrics.counter("solver.nodes_expanded").inc(session)
                metrics.counter("solver.finite_solutions").inc(
                    len(result.finite_solutions))
                metrics.counter("solver.dead_ends").inc(
                    len(result.dead_ends))
                metrics.gauge("solver.frontier_size").set(
                    len(result.frontier))
                root.annotate(nodes=explored,
                              solutions=len(result.finite_solutions),
                              truncated=result.truncated)
        return self._finish_run(result, cache_key, metrics, profile,
                                tracing)

    # -- compiled engine ------------------------------------------------------

    def _explore_compiled(self, compiled, result: SolverResult,
                          max_depth: int, max_nodes: int,
                          budget_seconds: Optional[float],
                          deadline: Optional[float],
                          resume_from: Optional[object],
                          metrics: Optional[MetricsRegistry],
                          profile: Optional[object],
                          cache_key: Optional[dict]) -> SolverResult:
        """The :meth:`explore` BFS over the packed representation.

        Same traversal, same truncation points, same tracer events and
        profile sites as the reference loop — only the representation
        differs.  A node is ``(packed, env, f(u), parent g(u), last
        cid)``: the packed trace, its per-channel environment, the
        left value carried from the parent's scan, and what is needed
        to re-evaluate ``g`` incrementally.  The right side is
        evaluated for a whole level in one batch (chunked to the node
        budget so truncation points stay deterministic; with a
        wall-clock deadline the evaluation is per-node, as the
        reference's per-node clock checks are), components whose read
        set excludes the appended channel reuse the parent's value,
        and ``f(v) ⊑ g(u)`` is a compiled prefix test on flat tuples.
        Packed traces are unpacked only at the API boundary — same
        event objects in the same BFS order as the reference path, so
        digests, checkpoints and cache payloads are bit-identical.
        """
        tracer = self.tracer
        tracing = tracer.enabled
        table = compiled.table
        actions = compiled.actions
        lhs, rhs, leq = compiled.lhs, compiled.rhs, compiled.leq
        # loop-invariant lookups hoisted out of the per-node work;
        # acts carries the raw message so the one-slot environment
        # surgery below needs no table call per candidate
        lhs_after = lhs.after
        rhs_after = rhs.after
        acts = tuple((pair, pair[0], table.messages[pair[1]], event)
                     for pair, _cid, event in actions)
        fin_packed: list[tuple] = []
        frontier_packed: list[tuple] = []
        dead_packed: list[tuple] = []
        parked_packed: list[tuple] = []
        pending: dict[int, list[tuple]] = {}
        explored = 0
        if resume_from is None:
            start_depth = 0
            root_env = compiled.root_env
            if profile is not None:
                t0 = time.perf_counter_ns()
                root_f = lhs.eval(root_env)
                profile.add("lhs.apply.root",
                            time.perf_counter_ns() - t0)
            else:
                root_f = lhs.eval(root_env)
            level: list[tuple] = [((), root_env, root_f, None, -1)]
        else:
            checkpoint = self._coerce_checkpoint(resume_from)
            self._validate_checkpoint(checkpoint, max_depth)
            pending = self._resume_seeds_packed(
                checkpoint, result, compiled)
            explored = checkpoint.nodes_explored
            if not pending:
                result.nodes_explored = explored
                return result
            start_depth = min(pending)
            level = pending.pop(start_depth)
        session_explored = 0
        with tracer.span("solver.explore", category="solver",
                         track="solver", depth=max_depth,
                         max_nodes=max_nodes,
                         resumed=resume_from is not None,
                         limit_depth=self.limit_depth) as root:
            for depth in range(start_depth, max_depth + 1):
                with tracer.span("solver.level", category="solver",
                                 track="solver", depth=depth,
                                 width=len(level)):
                    if profile is not None:
                        level_t0 = time.perf_counter_ns()
                        level_explored = session_explored
                        level_accepted = len(fin_packed)
                        level_dead = len(dead_packed)
                    next_level: list[tuple] = pending.pop(depth + 1, [])
                    width = len(level)
                    budget_left = max_nodes - session_explored
                    n_ready = (width if budget_left >= width
                               else max(budget_left, 0))
                    gs = None
                    if deadline is None and n_ready:
                        # batched g over the level: one pass instead
                        # of a per-node call, chunked to the node
                        # budget so exactly the nodes the reference
                        # would visit are evaluated
                        ready = (level if n_ready == width
                                 else level[:n_ready])
                        if profile is not None:
                            t0 = time.perf_counter_ns()
                            gs = [rhs.eval(env) if pgu is None
                                  else rhs_after[cid](env, pgu)
                                  for (_p, env, _f, pgu, cid) in ready]
                            profile.add("rhs.apply",
                                        time.perf_counter_ns() - t0,
                                        calls=n_ready)
                        else:
                            gs = [rhs.eval(env) if pgu is None
                                  else rhs_after[cid](env, pgu)
                                  for (_p, env, _f, pgu, cid) in ready]
                    for i in range(width):
                        reason = ""
                        if i >= n_ready:
                            reason = (f"node budget ({max_nodes}) "
                                      f"exhausted at depth {depth}")
                        elif deadline is not None and \
                                time.monotonic() > deadline:
                            reason = (f"wall-clock budget "
                                      f"({budget_seconds}s) exhausted "
                                      f"at depth {depth}")
                        if reason:
                            result.truncated = True
                            result.truncation_reason = reason
                            parked_packed.extend(
                                n[0] for n in level[i:])
                            parked_packed.extend(
                                n[0] for n in next_level)
                            if tracing:
                                tracer.event(
                                    "solver.truncate",
                                    category="solver", track="solver",
                                    reason=reason,
                                    parked=len(parked_packed))
                            break
                        packed, env, fu, pgu, cid = level[i]
                        explored += 1
                        session_explored += 1
                        if gs is not None:
                            gu = gs[i]
                        elif profile is not None:
                            t0 = time.perf_counter_ns()
                            gu = (rhs.eval(env) if pgu is None
                                  else rhs_after[cid](env, pgu))
                            profile.add("rhs.apply",
                                        time.perf_counter_ns() - t0)
                        else:
                            gu = (rhs.eval(env) if pgu is None
                                  else rhs_after[cid](env, pgu))
                        if profile is not None:
                            t0 = time.perf_counter_ns()
                            limit = fu == gu
                            profile.add("limit_report",
                                        time.perf_counter_ns() - t0)
                        else:
                            # the limit condition f(u) = g(u): exact
                            # equality, because both values are finite
                            limit = fu == gu
                        u_repr = (repr(table.unpack(packed))
                                  if tracing else "")
                        if depth < max_depth:
                            t0 = (time.perf_counter_ns()
                                  if profile is not None else 0)
                            kids: Optional[list[tuple]] = []
                            pruned = 0
                            for pair, acid, msg, event in acts:
                                env_v = (env[:acid]
                                         + (env[acid] + (msg,),)
                                         + env[acid + 1:])
                                fv = lhs_after[acid](env_v, fu)
                                if leq(fv, gu):
                                    kids.append(
                                        (packed + (pair,), env_v, fv,
                                         gu, acid))
                                else:
                                    pruned += 1
                                    if metrics is not None:
                                        tracer.event(
                                            "solver.prune",
                                            category="solver",
                                            track="solver",
                                            node=u_repr,
                                            candidate=repr(event),
                                            reason="f(v) ⋢ g(u)")
                            if metrics is not None:
                                metrics.counter(
                                    "solver.candidates_proposed").inc(
                                        len(actions))
                                metrics.counter(
                                    "solver.candidates_pruned").inc(
                                        pruned)
                                metrics.histogram(
                                    "solver.branching").record(
                                        len(kids))
                            if profile is not None:
                                profile.add(
                                    "lhs.apply.expand",
                                    time.perf_counter_ns() - t0,
                                    calls=len(actions))
                                profile.note("proposed", len(actions))
                                profile.note("pruned", pruned)
                        else:
                            kids = None
                        if limit:
                            fin_packed.append(packed)
                            if tracing:
                                tracer.event(
                                    "solver.accept",
                                    category="solver", track="solver",
                                    node=u_repr, depth=depth)
                        if kids is None:
                            # at the bound: frontier if extendable
                            # (short-circuit probe, g(u) reused)
                            t0 = (time.perf_counter_ns()
                                  if profile is not None else 0)
                            tried = 0
                            hit = False
                            for pair, acid, msg, _event in acts:
                                env_v = (env[:acid]
                                         + (env[acid] + (msg,),)
                                         + env[acid + 1:])
                                tried += 1
                                if leq(lhs_after[acid](env_v, fu), gu):
                                    hit = True
                                    break
                            if profile is not None:
                                profile.add(
                                    "lhs.apply.probe",
                                    time.perf_counter_ns() - t0,
                                    calls=tried)
                            if hit:
                                frontier_packed.append(packed)
                            elif not limit:
                                dead_packed.append(packed)
                            continue
                        if not kids and not limit:
                            dead_packed.append(packed)
                            if tracing:
                                tracer.event(
                                    "solver.dead_end",
                                    category="solver", track="solver",
                                    node=u_repr, depth=depth)
                        next_level.extend(kids)
                    if tracing:
                        metrics.gauge("solver.level_width").set(
                            len(next_level))
                        profile.note(
                            "expanded",
                            session_explored - level_explored)
                        profile.note(
                            "accepted", len(fin_packed) - level_accepted)
                        profile.note(
                            "dead_ends", len(dead_packed) - level_dead)
                        profile.end_level(
                            depth, len(level),
                            time.perf_counter_ns() - level_t0)
                    level = next_level
                if result.truncated or not level:
                    break
            result.nodes_explored = explored
            # unpack at the API boundary: the same Event objects in
            # the same BFS order the reference path would append, so
            # everything downstream is bit-identical
            unpack = table.unpack
            result.finite_solutions.extend(
                unpack(p) for p in fin_packed)
            result.frontier.extend(unpack(p) for p in frontier_packed)
            result.dead_ends.extend(unpack(p) for p in dead_packed)
            result.unvisited.extend(unpack(p) for p in parked_packed)
            if tracing:
                metrics.counter("solver.nodes_expanded").inc(
                    session_explored)
                metrics.counter("solver.finite_solutions").inc(
                    len(result.finite_solutions))
                metrics.counter("solver.dead_ends").inc(
                    len(result.dead_ends))
                metrics.gauge("solver.frontier_size").set(
                    len(result.frontier))
                root.annotate(nodes=explored,
                              solutions=len(result.finite_solutions),
                              truncated=result.truncated)
        if cache_key is not None and self._cacheable(result):
            if profile is not None:
                t0 = time.perf_counter_ns()
                self.cache.put("solver", cache_key,
                               result.to_payload())
                profile.add("cache.put",
                            time.perf_counter_ns() - t0)
            else:
                self.cache.put("solver", cache_key,
                               result.to_payload())
            if tracing:
                tracer.event(
                    "cache.write", category="cache", track="solver",
                    key=self.cache.key_digest(cache_key)[:16])
        if tracing:
            profile.to_metrics(metrics)
            result.metrics = metrics.summary()
            result.profile = profile.summary()
        return result

    def _resume_seeds_packed(self, checkpoint, result: SolverResult,
                             compiled) -> dict[int, list[tuple]]:
        """Checkpoint resume for the compiled engine.

        Carried traces are replayed exactly as in
        :meth:`_resume_seeds` — witness-path validation through the
        live description, on the reference path, so a corrupt
        checkpoint is caught identically — and the unvisited seeds
        are then packed, with their ``f`` values computed by the
        compiled closures.
        """
        result.finite_solutions.extend(
            self._walk_path(key) for key in checkpoint.finite_solutions)
        result.frontier.extend(
            self._walk_path(key) for key in checkpoint.frontier)
        result.dead_ends.extend(
            self._walk_path(key) for key in checkpoint.dead_ends)
        table = compiled.table
        lhs = compiled.lhs
        seeds: dict[int, list[tuple]] = {}
        for key in checkpoint.unvisited:
            u = self._walk_path(key)
            packed = table.pack(u)
            env = table.env_of(packed)
            seeds.setdefault(len(packed), []).append(
                (packed, env, lhs.eval(env), None, -1))
        return seeds

    # -- checkpoint / resume --------------------------------------------------

    @staticmethod
    def _coerce_checkpoint(resume_from: object):
        """Accept a SolverCheckpoint, its dict form, or a JSON path."""
        from repro.cache.checkpoint import SolverCheckpoint

        if isinstance(resume_from, SolverCheckpoint):
            return resume_from
        if isinstance(resume_from, dict):
            return SolverCheckpoint.from_dict(resume_from)
        if isinstance(resume_from, (str, bytes)) or hasattr(
                resume_from, "__fspath__"):
            return SolverCheckpoint.load(str(resume_from))
        raise TypeError(
            "resume_from must be a SolverCheckpoint, its dict form, "
            f"or a path to its JSON (got {type(resume_from).__name__})")

    def _validate_checkpoint(self, checkpoint, max_depth: int) -> None:
        """A checkpoint only resumes the exploration it snapshot."""
        if checkpoint.depth != max_depth:
            raise ValueError(
                f"checkpoint was taken at depth {checkpoint.depth}, "
                f"cannot resume at depth {max_depth}")
        if checkpoint.limit_depth != self.limit_depth:
            raise ValueError(
                f"checkpoint used limit_depth "
                f"{checkpoint.limit_depth}, this solver uses "
                f"{self.limit_depth}")
        mine = getattr(self.description, "name", "")
        if checkpoint.description and mine and \
                checkpoint.description != mine:
            raise ValueError(
                f"checkpoint is of description "
                f"{checkpoint.description!r}, this solver explores "
                f"{mine!r}")
        parked_by = checkpoint.meta.get("strategy", "")
        if parked_by == "iterative-deepening" and \
                self.strategy != "iterative-deepening":
            # a deepening checkpoint parks nodes whose limit condition
            # was already checked (marked in meta); any other strategy
            # would re-classify them and double-count
            raise ValueError(
                "checkpoint was parked by an iterative-deepening "
                f"exploration and must be resumed with it (this "
                f"solver uses strategy {self.strategy!r})")

    def _resume_seeds(self, checkpoint, result: SolverResult
                      ) -> dict[int, list[tuple[Trace, object]]]:
        """Rebuild a checkpoint's carried traces into ``result`` and
        return the BFS seeds.

        Every trace key is replayed as a witness path (each step must
        be an admissible extension), so a checkpoint that does not
        describe this description's §3.3 tree raises
        :class:`~repro.obs.replay.ReplayDivergence` instead of
        silently seeding garbage.  For the unvisited seeds the carried
        ``f(u)`` values are recomputed — the price of keeping
        checkpoints pure JSON — and the seeds are grouped by depth
        (= trace length) for re-entry into the level loop.
        """
        result.finite_solutions.extend(
            self._walk_path(key) for key in checkpoint.finite_solutions)
        result.frontier.extend(
            self._walk_path(key) for key in checkpoint.frontier)
        result.dead_ends.extend(
            self._walk_path(key) for key in checkpoint.dead_ends)
        f = self.description.lhs
        seeds: dict[int, list[tuple[Trace, object]]] = {}
        for key in checkpoint.unvisited:
            u = self._walk_path(key)
            seeds.setdefault(u.length(), []).append((u, f.apply(u)))
        return seeds

    def _result_from_payload(self, payload: dict
                             ) -> Optional[SolverResult]:
        """Rebuild a cached :class:`SolverResult`, or ``None`` when
        the payload cannot be resolved against the live candidate
        generator (then the caller treats the entry as a miss).

        Rebuilding matches each stored event key against the candidate
        events by ``(channel name, message repr)`` — no admissibility
        re-checks (that would re-run the work the cache is skipping) —
        and then verifies the rebuilt result's digest against the
        stored one, so a drifted generator or an ambiguous ``repr``
        degrades to a miss, never to a wrong answer.
        """
        try:
            result = SolverResult(
                finite_solutions=[
                    self._rebuild_trace(k)
                    for k in payload["finite_solutions"]],
                frontier=[self._rebuild_trace(k)
                          for k in payload["frontier"]],
                dead_ends=[self._rebuild_trace(k)
                           for k in payload["dead_ends"]],
                unvisited=[self._rebuild_trace(k)
                           for k in payload.get("unvisited", [])],
                nodes_explored=int(payload["nodes_explored"]),
                depth=int(payload["depth"]),
                truncated=bool(payload["truncated"]),
                truncation_reason=str(
                    payload.get("truncation_reason", "")),
                limit_depth=int(payload.get("limit_depth", 0)),
                description_name=str(
                    payload.get("description_name", "")),
            )
        except (KeyError, TypeError, ValueError, LookupError):
            return None
        if result.digest() != payload.get("digest"):
            return None
        return result

    def _rebuild_trace(self, key: list) -> Trace:
        """A stored trace key back into a live :class:`Trace` by
        matching candidate events (no admissibility checks); raises
        ``LookupError`` when some step has no matching candidate."""
        u = Trace.empty()
        for channel_name, message_repr in key:
            matched = None
            for event in self._candidate_events(u):
                if event.channel.name == channel_name and \
                        repr(event.message) == message_repr:
                    matched = event
                    break
            if matched is None:
                raise LookupError(
                    f"no candidate event matches "
                    f"({channel_name}, {message_repr}) at {u!r}")
            u = u.append(matched)
        return u

    # -- witness paths (flight-recorder view of §3.3) -----------------------

    def witness_schedule(self, trace: Trace) -> Schedule:
        """Encode a finite trace as a witness path of the §3.3 tree.

        A node of the tree *is* its path from ``⊥`` — the decision
        sequence of the search, exactly as an operational run is its
        oracle decision sequence.  The returned
        :class:`~repro.obs.recorder.Schedule` stores that path in its
        ``path`` stream; :meth:`replay_witness` re-walks it, checking
        each extension's admissibility, so a solver result can ship
        machine-checkable evidence for every solution it claims.
        """
        schedule = Schedule()
        schedule.path = [[e.channel.name, repr(e.message)]
                         for e in trace]
        schedule.meta["kind"] = "solver-path"
        schedule.meta["description"] = getattr(
            self.description, "name", "")
        schedule.meta["limit_holds"] = bool(
            self.description.limit_holds(trace, self.limit_depth))
        return schedule

    def replay_witness(self, schedule: Schedule) -> Trace:
        """Re-walk a witness path, verifying every step is a tree edge.

        Each recorded event must be an admissible one-step extension
        (``f(v) ⊑ g(u)``) of the trace built so far; the first
        recorded event with no matching admissible extension raises
        :class:`~repro.obs.replay.ReplayDivergence` with the path
        index and the live candidate set.  Returns the reconstructed
        node (whose membership in the tree is thereby witnessed).
        """
        return self._walk_path(schedule.path)

    def _walk_path(self, path: list) -> Trace:
        """Re-walk a raw JSON path (``[[channel, message_repr], …]``),
        verifying every step is a tree edge — the engine behind both
        :meth:`replay_witness` and checkpoint resume."""
        u = Trace.empty()
        for index, (channel_name, message_repr) in enumerate(path):
            matched = None
            live = []
            for v in self.children(u):
                last = v.item(v.length() - 1)
                key = [last.channel.name, repr(last.message)]
                live.append(key)
                if key == [channel_name, message_repr]:
                    matched = v
                    break
            if matched is None:
                raise ReplayDivergence(
                    "path", index,
                    "recorded event is not an admissible extension",
                    recorded=[channel_name, message_repr],
                    actual=live)
            u = matched
        return u

    def iter_paths(self, max_depth: int) -> Iterator[Trace]:
        """Depth-first enumeration of all maximal-at-bound tree paths."""

        def go(u: Trace, depth: int) -> Iterator[Trace]:
            if depth == max_depth:
                yield u
                return
            extended = False
            for v in self.children(u):
                extended = True
                yield from go(v, depth + 1)
            if not extended:
                yield u

        yield from go(Trace.empty(), 0)

    # -- queries --------------------------------------------------------------

    def query(self, predicate, max_depth: int, mode: str = "exists",
              max_nodes: int = 200_000,
              budget_seconds: Optional[float] = None,
              resume_from: Optional[object] = None) -> QueryResult:
        """Ask a question about the finite smooth solutions instead of
        enumerating them.

        ``mode="exists"``: does some finite smooth solution within
        ``max_depth`` satisfy ``predicate``?  ``mode="all"``: do they
        all?  The exploration short-circuits the moment the question
        is settled — at the first satisfying solution (``exists``) or
        the first violating one (``all``) — so with a solution-seeking
        strategy (best-first + rhs-distance) the answer typically
        costs a fraction of the full enumeration's node budget.  On
        complete runs the answer provably agrees with
        enumerate-then-filter: the watch only reorders *when* the
        search stops, never which nodes are solutions (pinned by
        ``tests/core/test_query.py``).

        ``predicate`` is a ``Trace -> bool`` callable or the textual
        form :func:`repro.core.search.parse_predicate` understands.
        Returns a :class:`~repro.core.search.QueryResult`; ``holds``
        is ``None`` when a resource guard fired before the question
        was settled.  A positive ``exists`` / negative ``all`` answer
        ships the settling trace plus its replayable
        :meth:`witness_schedule` certificate.
        """
        if isinstance(predicate, str):
            predicate = parse_predicate(predicate)
        if mode not in ("exists", "all"):
            raise ValueError(
                f"unknown query mode {mode!r}; known: exists, all")
        source = (getattr(predicate, "source", None)
                  or getattr(predicate, "__name__", None)
                  or repr(predicate))
        found: list[Trace] = []

        if mode == "exists":
            def watch(trace: Trace) -> str:
                if predicate(trace):
                    found.append(trace)
                    return "query: witness found (exists)"
                return ""
        else:
            def watch(trace: Trace) -> str:
                if not predicate(trace):
                    found.append(trace)
                    return "query: counterexample found (all)"
                return ""

        result = self.explore(max_depth, max_nodes=max_nodes,
                              budget_seconds=budget_seconds,
                              resume_from=resume_from, _watch=watch)
        witness = found[0] if found else None
        if witness is None:
            # a cache hit (or a checkpoint of a completed run) never
            # ran the watch: settle from the enumerated solutions
            for trace in result.finite_solutions:
                if predicate(trace) == (mode == "exists"):
                    witness = trace
                    break
        if witness is not None:
            holds: Optional[bool] = (mode == "exists")
        elif result.truncated:
            holds = None
        else:
            holds = (mode == "all")
        certificate = (self.witness_schedule(witness)
                       if witness is not None else None)
        return QueryResult(
            mode=mode, predicate=source, holds=holds,
            witness=witness, certificate=certificate,
            nodes_explored=result.nodes_explored,
            strategy=self.strategy, result=result,
            meta={"short_circuited":
                  result.truncation_reason.startswith("query")},
        )


class _ReferenceEngine:
    """Strategy-loop adapter over the reference representation.

    Nodes are live :class:`Trace` objects; values are whatever the
    description's sides produce.  All evaluation is attributed to the
    same profile sites as the legacy loops (``rhs.apply``,
    ``limit_report``, ``lhs.apply.expand``/``probe``/``root``), so the
    memo-discipline pins in ``tests/core/test_solver_memo.py`` apply
    unchanged.
    """

    __slots__ = ("solver", "metrics", "profile", "names", "_name_set")

    def __init__(self, solver: "SmoothSolutionSolver", metrics,
                 profile) -> None:
        self.solver = solver
        self.metrics = metrics
        self.profile = profile
        self.names = tuple(c.name
                           for c in solver._channel_universe())
        self._name_set = frozenset(self.names)

    def root(self):
        solver = self.solver
        trace = Trace.empty()
        if self.profile is not None:
            t0 = time.perf_counter_ns()
            fu = solver.description.lhs.apply(trace)
            self.profile.add("lhs.apply.root",
                             time.perf_counter_ns() - t0)
        else:
            fu = solver.description.lhs.apply(trace)
        return trace, fu

    def g(self, node: Trace):
        solver = self.solver
        if self.profile is not None:
            t0 = time.perf_counter_ns()
            gu = solver.description.rhs.apply(node)
            self.profile.add("rhs.apply",
                             time.perf_counter_ns() - t0)
            return gu
        return solver.description.rhs.apply(node)

    def limit(self, node: Trace, fu, gu) -> bool:
        solver = self.solver
        if self.profile is not None:
            t0 = time.perf_counter_ns()
            holds = solver.description.limit_report(
                node, solver.limit_depth,
                lhs_value=fu, rhs_value=gu).holds
            self.profile.add("limit_report",
                             time.perf_counter_ns() - t0)
            return holds
        return solver.description.limit_report(
            node, solver.limit_depth,
            lhs_value=fu, rhs_value=gu).holds

    def edges(self, node: Trace, fu, gu) -> list:
        """The admissible extensions as ``(event, f(v))`` pairs —
        node-independent given the per-channel projection, which is
        what makes them memoizable under dedup."""
        solver = self.solver
        f = solver.description.lhs
        profile = self.profile
        t0 = (time.perf_counter_ns() if profile is not None else 0)
        events = solver._candidate_events(node, gu)
        out: list = []
        pruned = 0
        for event in events:
            v = node.append(event)
            fv = f.apply(v)
            if solver.description._leq(fv, gu, solver.limit_depth):
                out.append((event, fv))
            else:
                pruned += 1
                if self.metrics is not None:
                    solver.tracer.event(
                        "solver.prune", category="solver",
                        track="solver", node=repr(node),
                        candidate=repr(event), reason="f(v) ⋢ g(u)")
        if self.metrics is not None:
            self.metrics.counter(
                "solver.candidates_proposed").inc(len(events))
            self.metrics.counter(
                "solver.candidates_pruned").inc(pruned)
            self.metrics.histogram(
                "solver.branching").record(len(out))
        if profile is not None:
            profile.add("lhs.apply.expand",
                        time.perf_counter_ns() - t0,
                        calls=len(events))
            profile.note("proposed", len(events))
            profile.note("pruned", pruned)
        return out

    def child(self, node: Trace, edge) -> Trace:
        return node.append(edge)

    def extendable(self, node: Trace, fu, gu) -> bool:
        return self.solver._extendable(node, gu, self.profile)

    def trace(self, node: Trace) -> Trace:
        return node

    def env_key(self, node: Trace):
        """The per-channel projection of the trace — the paper's
        ``b(t)`` — as a hashable key; ``None`` when some message is
        unhashable (that node just skips the memo)."""
        per: dict = {}
        for e in node:
            per.setdefault(e.channel.name, []).append(e.message)
        extra = sorted(n for n in per if n not in self._name_set)
        key = (tuple(tuple(per.get(n, ())) for n in self.names)
               + tuple((n, tuple(per[n])) for n in extra))
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def f_lens(self, value) -> tuple:
        return component_lengths(value)

    def g_lens(self, value) -> tuple:
        return component_lengths(value)

    def counts(self, node: Trace) -> tuple:
        per = {n: 0 for n in self.names}
        for e in node:
            per[e.channel.name] = per.get(e.channel.name, 0) + 1
        return tuple(per[n] for n in sorted(per))

    def seeds(self, checkpoint, result: SolverResult) -> list:
        pending = self.solver._resume_seeds(checkpoint, result)
        out = []
        for depth in sorted(pending):
            for u, fu in pending[depth]:
                out.append((depth, u, fu))
        return out


class _CompiledEngine:
    """Strategy-loop adapter over the packed representation.

    Nodes are ``(packed, env)`` pairs — the interned trace and its
    per-channel message environment; values are the compiled sides'
    flat tuples.  The environment *is* the per-channel projection, so
    it doubles as the dedup key with no extra work.  Feature values
    (lengths, counts) land on the same integers as the reference
    engine's, which keeps pop order — and therefore even truncated
    best-first runs — identical across engines.
    """

    __slots__ = ("solver", "compiled", "metrics", "profile", "table",
                 "lhs", "rhs", "leq", "lhs_after", "acts")

    def __init__(self, solver: "SmoothSolutionSolver", compiled,
                 metrics, profile) -> None:
        self.solver = solver
        self.compiled = compiled
        self.metrics = metrics
        self.profile = profile
        self.table = compiled.table
        self.lhs = compiled.lhs
        self.rhs = compiled.rhs
        self.leq = compiled.leq
        self.lhs_after = compiled.lhs.after
        self.acts = tuple(
            (pair, pair[0], self.table.messages[pair[1]], event)
            for pair, _cid, event in compiled.actions)

    def root(self):
        env = self.compiled.root_env
        if self.profile is not None:
            t0 = time.perf_counter_ns()
            fu = self.lhs.eval(env)
            self.profile.add("lhs.apply.root",
                             time.perf_counter_ns() - t0)
        else:
            fu = self.lhs.eval(env)
        return ((), env), fu

    def g(self, node):
        env = node[1]
        if self.profile is not None:
            t0 = time.perf_counter_ns()
            gu = self.rhs.eval(env)
            self.profile.add("rhs.apply",
                             time.perf_counter_ns() - t0)
            return gu
        return self.rhs.eval(env)

    def limit(self, node, fu, gu) -> bool:
        if self.profile is not None:
            t0 = time.perf_counter_ns()
            holds = fu == gu
            self.profile.add("limit_report",
                             time.perf_counter_ns() - t0)
            return holds
        return fu == gu

    def edges(self, node, fu, gu) -> list:
        packed, env = node
        profile = self.profile
        t0 = (time.perf_counter_ns() if profile is not None else 0)
        out: list = []
        pruned = 0
        leq = self.leq
        lhs_after = self.lhs_after
        for pair, acid, msg, event in self.acts:
            env_v = (env[:acid] + (env[acid] + (msg,),)
                     + env[acid + 1:])
            fv = lhs_after[acid](env_v, fu)
            if leq(fv, gu):
                out.append(((pair, acid, msg), fv))
            else:
                pruned += 1
                if self.metrics is not None:
                    self.solver.tracer.event(
                        "solver.prune", category="solver",
                        track="solver",
                        node=repr(self.table.unpack(packed)),
                        candidate=repr(event), reason="f(v) ⋢ g(u)")
        if self.metrics is not None:
            self.metrics.counter(
                "solver.candidates_proposed").inc(len(self.acts))
            self.metrics.counter(
                "solver.candidates_pruned").inc(pruned)
            self.metrics.histogram(
                "solver.branching").record(len(out))
        if profile is not None:
            profile.add("lhs.apply.expand",
                        time.perf_counter_ns() - t0,
                        calls=len(self.acts))
            profile.note("proposed", len(self.acts))
            profile.note("pruned", pruned)
        return out

    def child(self, node, edge):
        packed, env = node
        pair, acid, msg = edge
        env_v = (env[:acid] + (env[acid] + (msg,),)
                 + env[acid + 1:])
        return (packed + (pair,), env_v)

    def extendable(self, node, fu, gu) -> bool:
        _packed, env = node
        profile = self.profile
        t0 = (time.perf_counter_ns() if profile is not None else 0)
        tried = 0
        hit = False
        leq = self.leq
        lhs_after = self.lhs_after
        for _pair, acid, msg, _event in self.acts:
            env_v = (env[:acid] + (env[acid] + (msg,),)
                     + env[acid + 1:])
            tried += 1
            if leq(lhs_after[acid](env_v, fu), gu):
                hit = True
                break
        if profile is not None:
            profile.add("lhs.apply.probe",
                        time.perf_counter_ns() - t0, calls=tried)
        return hit

    def trace(self, node) -> Trace:
        return self.table.unpack(node[0])

    def env_key(self, node):
        return node[1]

    def f_lens(self, value) -> tuple:
        if self.lhs.is_product:
            return tuple(len(c) for c in value)
        return (len(value),)

    def g_lens(self, value) -> tuple:
        if self.rhs.is_product:
            return tuple(len(c) for c in value)
        return (len(value),)

    def counts(self, node) -> tuple:
        return tuple(len(msgs) for msgs in node[1])

    def seeds(self, checkpoint, result: SolverResult) -> list:
        pending = self.solver._resume_seeds_packed(
            checkpoint, result, self.compiled)
        out = []
        for depth in sorted(pending):
            for packed, env, fu, _pgu, _cid in pending[depth]:
                out.append((depth, (packed, env), fu))
        return out


def solve(description: Description, channels: Iterable[Channel],
          max_depth: int,
          limit_depth: int = DEFAULT_DEPTH,
          tracer: Optional[Tracer] = None,
          cache: Optional[object] = None,
          compiled: Optional[bool] = None,
          strategy: str = "bfs",
          heuristic: str = "rhs-distance",
          dedup: bool = False) -> SolverResult:
    """One-call convenience: explore over the channels' alphabets.

    With ``cache`` (a :class:`repro.cache.CacheStore`), the
    exploration consults the persistent result store first and stores
    its result back — a repeated ``solve`` of the same description /
    alphabet / budgets is a disk read, digest-identical to the
    computed one.  ``compiled`` selects the exploration engine (see
    :class:`SmoothSolutionSolver`): ``None`` auto-detects, ``False``
    forces the reference path, ``True`` demands the compiled one.
    ``strategy`` / ``heuristic`` / ``dedup`` select the exploration
    order (see :mod:`repro.core.search`); every strategy finds the
    same solution set wherever it completes.
    """
    solver = SmoothSolutionSolver.over_channels(
        description, channels, limit_depth=limit_depth, tracer=tracer,
        cache=cache, compiled=compiled, strategy=strategy,
        heuristic=heuristic, dedup=dedup
    )
    return solver.explore(max_depth)


def solve_query(description: Description,
                channels: Iterable[Channel],
                predicate, max_depth: int, mode: str = "exists",
                limit_depth: int = DEFAULT_DEPTH,
                max_nodes: int = 200_000,
                budget_seconds: Optional[float] = None,
                tracer: Optional[Tracer] = None,
                cache: Optional[object] = None,
                compiled: Optional[bool] = None,
                strategy: str = "best-first",
                heuristic: str = "rhs-distance",
                dedup: bool = False) -> "QueryResult":
    """One-call query: "does a finite smooth solution matching
    ``predicate`` exist within ``max_depth``?" (``mode="exists"``) or
    "do all of them match?" (``mode="all"``) — short-circuiting at the
    first witness / counterexample instead of enumerating the full
    solution set.  See :meth:`SmoothSolutionSolver.query`.  Defaults
    to best-first exploration under the rhs-distance heuristic, which
    pops solution-shaped nodes first — the combination the EXT-SEARCH
    benchmark pins as expanding measurably fewer nodes than ``solve``.
    """
    solver = SmoothSolutionSolver.over_channels(
        description, channels, limit_depth=limit_depth, tracer=tracer,
        cache=cache, compiled=compiled, strategy=strategy,
        heuristic=heuristic, dedup=dedup
    )
    return solver.query(predicate, max_depth, mode=mode,
                        max_nodes=max_nodes,
                        budget_seconds=budget_seconds)


def rhs_guided_candidates(channels: Iterable[Channel],
                          description: Description,
                          probe_depth: int = 32) -> CandidateFn:
    """Candidates drawn from what the right side currently allows.

    For a node ``u`` the admissible extensions satisfy ``f(v) ⊑ g(u)``;
    when ``f`` observes single channels, any new event's message must
    already appear in the corresponding component of ``g(u)``.  This
    generator proposes, per channel, the messages occurring in ``g(u)``
    (flattened across tuple components) — a finite set even when the
    channel alphabet is infinite.  It may over-approximate (harmless:
    inadmissible candidates are pruned by the ``f(v) ⊑ g(u)`` test) but
    never misses an admissible output event of the §2.3 kind.
    """
    channel_list = sorted(channels)

    def candidates(u: Trace, gu: object = None) -> Iterable[Event]:
        # ``explore`` computed g(u) for this exact node already (the
        # one-g-per-node discipline); only standalone callers pay for
        # a fresh evaluation
        if gu is None:
            gu = description.rhs.apply(u)
        messages = _flatten_messages(gu, probe_depth)
        for c in channel_list:
            for m in messages:
                if c.admits(m):
                    yield Event(c, m)

    candidates.accepts_gu = True
    candidates.cache_key = {
        "kind": "rhs-guided",
        "channels": [c.name for c in channel_list],
        "probe_depth": probe_depth,
        "description": getattr(description, "name", ""),
    }
    return candidates


def _flatten_messages(value: object, probe_depth: int) -> list:
    """Collect message values occurring in a codomain value."""
    from repro.seq.finite import Seq

    out: list = []
    if isinstance(value, tuple):
        for v in value:
            out.extend(_flatten_messages(v, probe_depth))
        return _dedup(out)
    if isinstance(value, Seq):
        out.extend(value.take(probe_depth).items)
        return _dedup(out)
    if isinstance(value, Trace):
        out.extend(
            e.message for e in value.take(probe_depth)
        )
        return _dedup(out)
    out.append(value)
    return _dedup(out)


def _dedup(items: list) -> list:
    """Order-preserving dedup on ``(type, value)`` identity.

    Plain hash equality would collapse ``True``/``1``/``1.0`` into one
    candidate message (they are equal and hash alike), silently
    shrinking the proposed event set for mixed-type alphabets; keying
    on the concrete type keeps distinct messages distinct.
    """
    seen = set()
    result = []
    for x in items:
        try:
            key = (type(x), x)
            if key in seen:
                continue
            seen.add(key)
        except TypeError:
            if any(type(y) is type(x) and y == x for y in result):
                continue
        result.append(x)
    return result
