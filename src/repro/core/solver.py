"""Operational enumeration of smooth solutions (§3.3).

The paper generalizes Kleene iteration to a *tree*: the root is ``⊥``;
a node ``u`` has a son ``v`` iff ``u pre v`` and ``f(v) ⊑ g(u)``.  Every
node of the tree automatically satisfies the smoothness condition (the
path from the root witnesses it), so

* the **finite smooth solutions** are exactly the nodes that also satisfy
  the limit condition ``f(s) = g(s)``, and
* the **infinite smooth solutions** are the lubs of infinite paths whose
  limit condition holds in the limit.

The solver explores this tree breadth-first to a depth bound.  One-step
extensions are proposed by a *candidate generator* — by default every
``(channel, message)`` pair from the channels' finite alphabets; for
channels with infinite alphabets (the naturals on ``d`` in §2.3) the
caller supplies a generator, typically derived from ``g(u)`` itself
(an output can only extend the trace if the right side already allows
it, so the elements of ``g(u)`` bound the useful candidates).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import DEFAULT_DEPTH, Description
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Schedule, stable_digest
from repro.obs.replay import ReplayDivergence
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.traces.trace import Trace

#: A candidate generator: finite trace ``u`` ↦ events that may extend it.
CandidateFn = Callable[[Trace], Iterable[Event]]


class CandidateError(RuntimeError):
    """A user-supplied candidate generator raised; names the trace at
    which it failed so the misbehaving case is reproducible."""

    def __init__(self, trace: Trace, original: BaseException):
        super().__init__(
            f"candidate generator failed at trace {trace!r}: "
            f"{type(original).__name__}: {original}"
        )
        self.trace = trace
        self.original = original


def alphabet_candidates(channels: Iterable[Channel]) -> CandidateFn:
    """The default candidate generator: all events over finite alphabets.

    Raises ``ValueError`` at construction if some channel has no finite
    alphabet — then a custom generator is required.
    """
    events: list[Event] = []
    for c in sorted(channels):
        if c.alphabet is None:
            raise ValueError(
                f"channel {c.name!r} has no finite alphabet; supply a "
                "custom candidate generator"
            )
        events.extend(Event(c, m) for m in sorted(c.alphabet, key=repr))

    def candidates(u: Trace) -> Iterable[Event]:
        del u
        return events

    # content identity for the persistent result cache: the generator
    # is fully determined by its event alphabet
    candidates.cache_key = {
        "kind": "alphabet",
        "events": [[e.channel.name, repr(e.message)] for e in events],
    }
    # the published constant alphabet is what makes the generator
    # *compilable*: the solver's packed hot path interns exactly these
    # events (per-node generators have no such attribute and keep the
    # solver on the reference path)
    candidates.constant_events = tuple(events)
    return candidates


@dataclass
class SolverResult:
    """Outcome of a bounded tree exploration.

    Attributes:
        finite_solutions: nodes satisfying the limit condition — exact
            smooth solutions (their smoothness is witnessed by the path).
        frontier: traces at the depth bound that still have admissible
            extensions; each is a prefix of zero or more infinite (or
            deeper finite) smooth solutions.
        dead_ends: nodes with no admissible extension and a failing
            limit condition — communication histories after which the
            description is stuck but not quiescent.
        unvisited: nodes parked by a truncation guard before they were
            ever examined — their limit condition was never checked and
            they may or may not have admissible extensions, so they are
            deliberately *not* on ``frontier`` (which promises
            admissible extensions).  They are exactly the seeds a
            resumed exploration continues from; see :meth:`checkpoint`.
        nodes_explored: total tree nodes visited (cumulative across a
            checkpoint/resume chain).
        depth: the exploration bound used.
        truncated: the exploration hit a resource guard (node budget or
            wall-clock budget) before covering the tree to ``depth``;
            the result is a sound but partial under-approximation, and
            unexamined nodes are parked on ``unvisited``.
        truncation_reason: which guard fired, for diagnostics.
        limit_depth: the limit-check depth the exploration used
            (carried for checkpointing; not part of the digest).
        description_name: the explored description's name (carried for
            checkpointing; not part of the digest).
        metrics: per-run metrics summary (nodes, branching, prunes, …)
            when the solver ran with tracing enabled; empty otherwise.
    """

    finite_solutions: list[Trace] = field(default_factory=list)
    frontier: list[Trace] = field(default_factory=list)
    dead_ends: list[Trace] = field(default_factory=list)
    nodes_explored: int = 0
    depth: int = 0
    truncated: bool = False
    truncation_reason: str = ""
    metrics: dict = field(default_factory=dict)
    unvisited: list[Trace] = field(default_factory=list)
    limit_depth: int = 0
    description_name: str = ""
    #: per-site cost attribution (:class:`repro.obs.profile
    #: .SolverProfile` summary) when the solver ran with tracing
    #: enabled; empty otherwise.  Counters are deterministic, the ns
    #: columns are wall-clock — neither enters the digest or the
    #: cache payload.
    profile: dict = field(default_factory=dict)

    def solution_set(self) -> set[Trace]:
        return set(self.finite_solutions)

    def digest(self) -> str:
        """Stable content hash of the exploration's outcome.

        Covers the solution/frontier/dead-end/unvisited sets
        (order-normalized) and the exploration shape (nodes, depth,
        truncation) — not metrics or wall-clock.  Two explorations
        with equal digests found the same portion of the §3.3 tree, so
        "re-running the solver reproduces the result" is a one-line
        assertion.  Truncation-parked nodes hash under their own
        ``unvisited`` key, *not* under ``frontier``: the frontier
        invariant (admissible extensions exist) was never established
        for them, and resume correctness depends on the distinction.
        """
        return stable_digest({
            "finite_solutions": sorted(
                _trace_key(t) for t in self.finite_solutions),
            "frontier": sorted(_trace_key(t) for t in self.frontier),
            "dead_ends": sorted(_trace_key(t) for t in self.dead_ends),
            "unvisited": sorted(_trace_key(t) for t in self.unvisited),
            "nodes_explored": self.nodes_explored,
            "depth": self.depth,
            "truncated": self.truncated,
        })

    def checkpoint(self) -> "SolverCheckpoint":
        """Serialize this (typically truncated) result as a resumable
        pure-JSON checkpoint.

        The checkpoint carries every classified set plus the unvisited
        seeds as canonical trace keys, and the exploration shape
        (depth, limit depth, node count, description name).  Feed it
        to :meth:`SmoothSolutionSolver.explore` as ``resume_from=`` to
        continue the Kleene chain; a truncate-then-resume pair is
        digest-equal to the straight run.
        """
        from repro.cache.checkpoint import SolverCheckpoint

        return SolverCheckpoint(
            description=self.description_name,
            depth=self.depth,
            limit_depth=self.limit_depth,
            nodes_explored=self.nodes_explored,
            truncation_reason=self.truncation_reason,
            finite_solutions=[_trace_key(t)
                              for t in self.finite_solutions],
            frontier=[_trace_key(t) for t in self.frontier],
            dead_ends=[_trace_key(t) for t in self.dead_ends],
            unvisited=[_trace_key(t) for t in self.unvisited],
        )

    def to_payload(self) -> dict:
        """JSON-ready form for the persistent result cache."""
        return {
            "finite_solutions": [_trace_key(t)
                                 for t in self.finite_solutions],
            "frontier": [_trace_key(t) for t in self.frontier],
            "dead_ends": [_trace_key(t) for t in self.dead_ends],
            "unvisited": [_trace_key(t) for t in self.unvisited],
            "nodes_explored": self.nodes_explored,
            "depth": self.depth,
            "truncated": self.truncated,
            "truncation_reason": self.truncation_reason,
            "limit_depth": self.limit_depth,
            "description_name": self.description_name,
            "digest": self.digest(),
        }


def _trace_key(t: Trace) -> list:
    """JSON-ready canonical form of a finite trace."""
    return [[e.channel.name, repr(e.message)] for e in t]


class SmoothSolutionSolver:
    """Bounded breadth-first exploration of the §3.3 tree."""

    def __init__(self, description: Description,
                 candidates: CandidateFn,
                 limit_depth: int = DEFAULT_DEPTH,
                 tracer: Optional[Tracer] = None,
                 cache: Optional[object] = None,
                 compiled: Optional[bool] = None):
        self.description = description
        self.candidates = candidates
        self.limit_depth = limit_depth
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: a :class:`repro.cache.CacheStore` (or None); when set,
        #: :meth:`explore` consults it before searching and stores
        #: completed results after
        self.cache = cache
        #: compiled hot path: ``None`` (default) auto-detects — use
        #: the packed representation when the description and
        #: candidate generator compile (see :mod:`repro.core
        #: .compiled`), else the reference path.  ``False`` forces the
        #: reference path; ``True`` demands compilation and makes
        #: :meth:`explore` raise if it is unavailable.
        self.compiled = compiled

    @classmethod
    def over_channels(cls, description: Description,
                      channels: Iterable[Channel],
                      limit_depth: int = DEFAULT_DEPTH,
                      tracer: Optional[Tracer] = None,
                      cache: Optional[object] = None,
                      compiled: Optional[bool] = None
                      ) -> "SmoothSolutionSolver":
        return cls(description, alphabet_candidates(channels),
                   limit_depth=limit_depth, tracer=tracer,
                   cache=cache, compiled=compiled)

    # -- tree structure ------------------------------------------------------

    def children(self, u: Trace) -> Iterator[Trace]:
        """Admissible one-step extensions: ``v`` with ``f(v) ⊑ g(u)``."""
        f = self.description.lhs
        gu = self.description.rhs.apply(u)
        for event in self._candidate_events(u):
            v = u.append(event)
            fv = f.apply(v)
            if self.description._leq(fv, gu, self.limit_depth):
                yield v

    def _candidate_events(self, u: Trace) -> list[Event]:
        """Run the candidate generator, wrapping its failures."""
        try:
            return list(self.candidates(u))
        except CandidateError:
            raise
        except Exception as exc:
            raise CandidateError(u, exc) from exc

    def is_node(self, u: Trace) -> bool:
        """Is the finite trace ``u`` a node of the tree?

        Equivalent to: the path ``⊥ … u`` exists, i.e. every pre-pair
        along ``u`` satisfies the smoothness condition.
        """
        return self.description.smoothness_holds(
            u, depth=max(u.length(), 1)
        )

    # -- exploration ----------------------------------------------------------

    def explore(self, max_depth: int,
                max_nodes: int = 200_000,
                budget_seconds: Optional[float] = None,
                resume_from: Optional[object] = None) -> SolverResult:
        """Breadth-first exploration to ``max_depth``.

        Resource guards keep runaway alphabets and hostile candidate
        generators from running unbounded: at most ``max_nodes`` nodes
        are expanded *per call* (so a resumed run gets a fresh
        budget), and an optional ``budget_seconds`` wall-clock budget
        caps the search in time.  When a guard fires the partial
        result is returned with ``truncated=True`` — never-examined
        nodes are parked on ``result.unvisited`` (not the frontier,
        whose invariant they were never checked against) — instead of
        raising; a degraded answer beats no answer for diagnosis.

        ``resume_from`` continues a truncated exploration: pass a
        :class:`~repro.cache.checkpoint.SolverCheckpoint` (or its dict
        / a path to its JSON) produced by
        :meth:`SolverResult.checkpoint`.  Every carried trace is
        replayed as a witness path through the live description (so
        checkpoints stay pure JSON and corrupted ones are caught, and
        the carried ``f(u)`` values are recomputed), then the BFS is
        re-seeded from the unvisited nodes at their recorded depths.
        Invariant: truncate-then-resume is digest-equal to the
        straight run.

        A candidate generator that raises aborts the search with a
        :class:`CandidateError` naming the trace it choked on.

        With a ``cache`` store attached (and no ``resume_from``), the
        exploration first consults the persistent result cache and
        returns the rebuilt result on a hit; completed (and
        deterministically node-budget-truncated) results are stored
        back.  Wall-clock-truncated results are never cached — where
        the clock fires is not a function of the inputs.

        With a tracer attached the exploration additionally emits
        ``solver.*`` spans/events (per-level spans, prune / accept /
        dead-end / truncate events, ``cache.hit``/``cache.miss``) and
        fills ``result.metrics``.

        Hot-path discipline: per node ``u`` the right side ``g(u)`` is
        evaluated exactly once (shared between the limit condition and
        every candidate's admissibility test), the left side ``f(u)``
        is carried over from the parent's admissibility scan (each node
        was once a candidate), and the limit condition is checked
        exactly once.  The frontier-extendability probe at the depth
        bound short-circuits at the first admissible candidate instead
        of re-running the full scan.

        When the description and candidate generator lie in the
        compilable finite fragment (see :mod:`repro.core.compiled`),
        the same BFS runs over interned channels/messages and flat
        packed traces with batched per-level ``g`` evaluation — an
        order of magnitude faster, and bit-identical at this API
        boundary: results, digests, checkpoints and cache payloads
        match the reference path exactly (pinned by
        ``tests/core/test_compiled_solver.py``).  The ``compiled``
        constructor flag selects the engine explicitly.
        """
        deadline = (None if budget_seconds is None
                    else time.monotonic() + budget_seconds)
        tracer = self.tracer
        tracing = tracer.enabled
        profile = None
        if tracing:
            from repro.obs.profile import SolverProfile

            profile = SolverProfile()
        cache_key = None
        if self.cache is not None and resume_from is None:
            from repro.cache.keys import solver_cache_key

            cache_key = solver_cache_key(
                self.description, self.candidates, max_depth,
                self.limit_depth, max_nodes, budget_seconds)
            if profile is not None:
                t0 = time.perf_counter_ns()
                hit = self.cache.get("solver", cache_key)
                profile.add("cache.get",
                            time.perf_counter_ns() - t0)
            else:
                hit = self.cache.get("solver", cache_key)
            if hit is not None:
                rebuilt = self._result_from_payload(hit)
                if rebuilt is not None:
                    if tracing:
                        tracer.event(
                            "cache.hit", category="cache",
                            track="solver",
                            key=self.cache.key_digest(cache_key)[:16],
                            nodes_skipped=rebuilt.nodes_explored)
                        rebuilt.profile = profile.summary()
                    return rebuilt
            if tracing:
                tracer.event(
                    "cache.miss", category="cache", track="solver",
                    key=self.cache.key_digest(cache_key)[:16])
        metrics = MetricsRegistry() if tracing else None
        result = SolverResult(
            depth=max_depth, limit_depth=self.limit_depth,
            description_name=getattr(self.description, "name", ""))
        compiled = None
        if self.compiled is not False:
            from repro.core.compiled import compile_description

            if profile is not None:
                t0 = time.perf_counter_ns()
                compiled = compile_description(
                    self.description, self.candidates)
                profile.add("compile.build",
                            time.perf_counter_ns() - t0)
            else:
                compiled = compile_description(
                    self.description, self.candidates)
            if compiled is None and self.compiled is True:
                raise ValueError(
                    "compiled=True, but this description/candidate "
                    "pair is outside the compilable fragment (see "
                    "repro.core.compiled for the preconditions)")
        if compiled is not None:
            from repro.core.compiled import CompiledEvalError

            try:
                return self._explore_compiled(
                    compiled, result, max_depth, max_nodes,
                    budget_seconds, deadline, resume_from, metrics,
                    profile, cache_key)
            except CompiledEvalError as exc:
                # a compiled closure left the finite fragment mid-run
                # (possible only for exotic ops that slipped past the
                # compile-time probe): restart cleanly on the
                # always-correct reference path
                if tracing:
                    tracer.event(
                        "solver.compiled_fallback", category="solver",
                        track="solver", reason=str(exc))
                fallback = SmoothSolutionSolver(
                    self.description, self.candidates,
                    limit_depth=self.limit_depth, tracer=self.tracer,
                    cache=self.cache, compiled=False)
                return fallback.explore(
                    max_depth, max_nodes=max_nodes,
                    budget_seconds=budget_seconds,
                    resume_from=resume_from)
        # level entries are ``(u, f(u))``: f was computed when u was a
        # candidate of its parent (or re-derived from the checkpoint),
        # so it rides along instead of being recomputed per node
        pending: dict[int, list[tuple[Trace, object]]] = {}
        explored = 0
        if resume_from is None:
            root_trace = Trace.empty()
            start_depth = 0
            if profile is not None:
                t0 = time.perf_counter_ns()
                root_f = self.description.lhs.apply(root_trace)
                profile.add("lhs.apply.root",
                            time.perf_counter_ns() - t0)
            else:
                root_f = self.description.lhs.apply(root_trace)
            level: list[tuple[Trace, object]] = [
                (root_trace, root_f)]
        else:
            checkpoint = self._coerce_checkpoint(resume_from)
            self._validate_checkpoint(checkpoint, max_depth)
            pending = self._resume_seeds(checkpoint, result)
            explored = checkpoint.nodes_explored
            if not pending:
                # checkpoint of a complete exploration: nothing left
                result.nodes_explored = explored
                return result
            start_depth = min(pending)
            level = pending.pop(start_depth)
        session_explored = 0
        with tracer.span("solver.explore", category="solver",
                         track="solver", depth=max_depth,
                         max_nodes=max_nodes,
                         resumed=resume_from is not None,
                         limit_depth=self.limit_depth) as root:
            for depth in range(start_depth, max_depth + 1):
                with tracer.span("solver.level", category="solver",
                                 track="solver", depth=depth,
                                 width=len(level)):
                    if profile is not None:
                        level_t0 = time.perf_counter_ns()
                        level_explored = session_explored
                        level_accepted = len(result.finite_solutions)
                        level_dead = len(result.dead_ends)
                    # children of already-explored nodes carried over
                    # by a checkpoint come first, preserving BFS order
                    next_level: list[tuple[Trace, object]] = \
                        pending.pop(depth + 1, [])
                    for i, (u, fu) in enumerate(level):
                        reason = ""
                        if session_explored >= max_nodes:
                            reason = (f"node budget ({max_nodes}) "
                                      f"exhausted at depth {depth}")
                        elif deadline is not None and \
                                time.monotonic() > deadline:
                            reason = (f"wall-clock budget "
                                      f"({budget_seconds}s) exhausted "
                                      f"at depth {depth}")
                        if reason:
                            self._truncate(result, level[i:],
                                           next_level, reason)
                            if tracing:
                                tracer.event(
                                    "solver.truncate",
                                    category="solver", track="solver",
                                    reason=reason,
                                    parked=len(result.unvisited))
                            break
                        explored += 1
                        session_explored += 1
                        if profile is not None:
                            t0 = time.perf_counter_ns()
                            gu = self.description.rhs.apply(u)
                            t1 = time.perf_counter_ns()
                            limit = self.description.limit_report(
                                u, self.limit_depth,
                                lhs_value=fu, rhs_value=gu).holds
                            t2 = time.perf_counter_ns()
                            profile.add("rhs.apply", t1 - t0)
                            profile.add("limit_report", t2 - t1)
                        else:
                            gu = self.description.rhs.apply(u)
                            limit = self.description.limit_report(
                                u, self.limit_depth,
                                lhs_value=fu, rhs_value=gu).holds
                        if depth < max_depth:
                            kids = self._expand(u, gu, metrics,
                                                profile)
                        else:
                            kids = None
                        if limit:
                            result.finite_solutions.append(u)
                            if tracing:
                                tracer.event(
                                    "solver.accept",
                                    category="solver", track="solver",
                                    node=repr(u), depth=depth)
                        if kids is None:
                            # at the bound: frontier if extendable
                            if self._extendable(u, gu, profile):
                                result.frontier.append(u)
                            elif not limit:
                                result.dead_ends.append(u)
                            continue
                        if not kids and not limit:
                            result.dead_ends.append(u)
                            if tracing:
                                tracer.event(
                                    "solver.dead_end",
                                    category="solver", track="solver",
                                    node=repr(u), depth=depth)
                        next_level.extend(kids)
                    if tracing:
                        metrics.gauge("solver.level_width").set(
                            len(next_level))
                        profile.note(
                            "expanded",
                            session_explored - level_explored)
                        profile.note(
                            "accepted",
                            len(result.finite_solutions)
                            - level_accepted)
                        profile.note(
                            "dead_ends",
                            len(result.dead_ends) - level_dead)
                        profile.end_level(
                            depth, len(level),
                            time.perf_counter_ns() - level_t0)
                    level = next_level
                if result.truncated or not level:
                    break
            result.nodes_explored = explored
            if tracing:
                metrics.counter("solver.nodes_expanded").inc(
                    session_explored)
                metrics.counter("solver.finite_solutions").inc(
                    len(result.finite_solutions))
                metrics.counter("solver.dead_ends").inc(
                    len(result.dead_ends))
                metrics.gauge("solver.frontier_size").set(
                    len(result.frontier))
                root.annotate(nodes=explored,
                              solutions=len(result.finite_solutions),
                              truncated=result.truncated)
        if cache_key is not None and self._cacheable(result):
            if profile is not None:
                t0 = time.perf_counter_ns()
                self.cache.put("solver", cache_key,
                               result.to_payload())
                profile.add("cache.put",
                            time.perf_counter_ns() - t0)
            else:
                self.cache.put("solver", cache_key,
                               result.to_payload())
            if tracing:
                tracer.event(
                    "cache.write", category="cache", track="solver",
                    key=self.cache.key_digest(cache_key)[:16])
        if tracing:
            profile.to_metrics(metrics)
            result.metrics = metrics.summary()
            result.profile = profile.summary()
        return result

    @staticmethod
    def _cacheable(result: SolverResult) -> bool:
        """Is this result a pure function of the cache key?  Complete
        and node-budget-truncated explorations are (the traversal is
        deterministic); wall-clock truncations are not — where the
        clock fires depends on the machine, not the inputs."""
        return not (result.truncated
                    and "wall-clock" in result.truncation_reason)

    def _expand(self, u: Trace, gu: object,
                metrics: Optional[MetricsRegistry],
                profile: Optional[object] = None
                ) -> list[tuple[Trace, object]]:
        """The :meth:`children` computation against a precomputed
        ``g(u)``, returning ``(v, f(v))`` pairs so each child's left
        side is evaluated once and reused when the child is explored.
        With ``metrics`` attached, also narrated: one ``solver.prune``
        event per inadmissible candidate, branching and prune counts
        into ``metrics``; with ``profile`` attached the candidate
        scan's f-evaluation count and wall time are attributed to the
        ``lhs.apply.expand`` site."""
        f = self.description.lhs
        t0 = (time.perf_counter_ns() if profile is not None else 0)
        events = self._candidate_events(u)
        kids: list[tuple[Trace, object]] = []
        pruned = 0
        for event in events:
            v = u.append(event)
            fv = f.apply(v)
            if self.description._leq(fv, gu, self.limit_depth):
                kids.append((v, fv))
            else:
                pruned += 1
                if metrics is not None:
                    self.tracer.event(
                        "solver.prune", category="solver",
                        track="solver", node=repr(u),
                        candidate=repr(event), reason="f(v) ⋢ g(u)")
        if metrics is not None:
            metrics.counter("solver.candidates_proposed").inc(
                len(events))
            metrics.counter("solver.candidates_pruned").inc(pruned)
            metrics.histogram("solver.branching").record(len(kids))
        if profile is not None:
            profile.add("lhs.apply.expand",
                        time.perf_counter_ns() - t0,
                        calls=len(events))
            profile.note("proposed", len(events))
            profile.note("pruned", pruned)
        return kids

    def _extendable(self, u: Trace, gu: object,
                    profile: Optional[object] = None) -> bool:
        """Does ``u`` have at least one admissible extension?  The
        frontier probe: short-circuits at the first hit and reuses the
        caller's ``g(u)``.  With ``profile``, the f evaluations spent
        probing are attributed to ``lhs.apply.probe``."""
        f = self.description.lhs
        t0 = (time.perf_counter_ns() if profile is not None else 0)
        tried = 0
        hit = False
        for event in self._candidate_events(u):
            v = u.append(event)
            tried += 1
            if self.description._leq(f.apply(v), gu,
                                     self.limit_depth):
                hit = True
                break
        if profile is not None:
            profile.add("lhs.apply.probe",
                        time.perf_counter_ns() - t0, calls=tried)
        return hit

    @staticmethod
    def _truncate(result: SolverResult,
                  unvisited: list[tuple[Trace, object]],
                  next_level: list[tuple[Trace, object]],
                  reason: str) -> None:
        """Mark ``result`` partial; park unexamined nodes.

        Parked nodes go on ``result.unvisited``, never the frontier:
        the frontier's documented invariant is "still has admissible
        extensions", which was never checked for these nodes (nor was
        their limit condition).  Keeping the buckets apart is what
        makes resume sound — unvisited nodes are re-seeded and fully
        classified, frontier nodes are carried over as-is.
        """
        result.truncated = True
        result.truncation_reason = reason
        result.unvisited.extend(u for u, _ in unvisited)
        result.unvisited.extend(v for v, _ in next_level)

    # -- compiled engine ------------------------------------------------------

    def _explore_compiled(self, compiled, result: SolverResult,
                          max_depth: int, max_nodes: int,
                          budget_seconds: Optional[float],
                          deadline: Optional[float],
                          resume_from: Optional[object],
                          metrics: Optional[MetricsRegistry],
                          profile: Optional[object],
                          cache_key: Optional[dict]) -> SolverResult:
        """The :meth:`explore` BFS over the packed representation.

        Same traversal, same truncation points, same tracer events and
        profile sites as the reference loop — only the representation
        differs.  A node is ``(packed, env, f(u), parent g(u), last
        cid)``: the packed trace, its per-channel environment, the
        left value carried from the parent's scan, and what is needed
        to re-evaluate ``g`` incrementally.  The right side is
        evaluated for a whole level in one batch (chunked to the node
        budget so truncation points stay deterministic; with a
        wall-clock deadline the evaluation is per-node, as the
        reference's per-node clock checks are), components whose read
        set excludes the appended channel reuse the parent's value,
        and ``f(v) ⊑ g(u)`` is a compiled prefix test on flat tuples.
        Packed traces are unpacked only at the API boundary — same
        event objects in the same BFS order as the reference path, so
        digests, checkpoints and cache payloads are bit-identical.
        """
        tracer = self.tracer
        tracing = tracer.enabled
        table = compiled.table
        actions = compiled.actions
        lhs, rhs, leq = compiled.lhs, compiled.rhs, compiled.leq
        # loop-invariant lookups hoisted out of the per-node work;
        # acts carries the raw message so the one-slot environment
        # surgery below needs no table call per candidate
        lhs_after = lhs.after
        rhs_after = rhs.after
        acts = tuple((pair, pair[0], table.messages[pair[1]], event)
                     for pair, _cid, event in actions)
        fin_packed: list[tuple] = []
        frontier_packed: list[tuple] = []
        dead_packed: list[tuple] = []
        parked_packed: list[tuple] = []
        pending: dict[int, list[tuple]] = {}
        explored = 0
        if resume_from is None:
            start_depth = 0
            root_env = compiled.root_env
            if profile is not None:
                t0 = time.perf_counter_ns()
                root_f = lhs.eval(root_env)
                profile.add("lhs.apply.root",
                            time.perf_counter_ns() - t0)
            else:
                root_f = lhs.eval(root_env)
            level: list[tuple] = [((), root_env, root_f, None, -1)]
        else:
            checkpoint = self._coerce_checkpoint(resume_from)
            self._validate_checkpoint(checkpoint, max_depth)
            pending = self._resume_seeds_packed(
                checkpoint, result, compiled)
            explored = checkpoint.nodes_explored
            if not pending:
                result.nodes_explored = explored
                return result
            start_depth = min(pending)
            level = pending.pop(start_depth)
        session_explored = 0
        with tracer.span("solver.explore", category="solver",
                         track="solver", depth=max_depth,
                         max_nodes=max_nodes,
                         resumed=resume_from is not None,
                         limit_depth=self.limit_depth) as root:
            for depth in range(start_depth, max_depth + 1):
                with tracer.span("solver.level", category="solver",
                                 track="solver", depth=depth,
                                 width=len(level)):
                    if profile is not None:
                        level_t0 = time.perf_counter_ns()
                        level_explored = session_explored
                        level_accepted = len(fin_packed)
                        level_dead = len(dead_packed)
                    next_level: list[tuple] = pending.pop(depth + 1, [])
                    width = len(level)
                    budget_left = max_nodes - session_explored
                    n_ready = (width if budget_left >= width
                               else max(budget_left, 0))
                    gs = None
                    if deadline is None and n_ready:
                        # batched g over the level: one pass instead
                        # of a per-node call, chunked to the node
                        # budget so exactly the nodes the reference
                        # would visit are evaluated
                        ready = (level if n_ready == width
                                 else level[:n_ready])
                        if profile is not None:
                            t0 = time.perf_counter_ns()
                            gs = [rhs.eval(env) if pgu is None
                                  else rhs_after[cid](env, pgu)
                                  for (_p, env, _f, pgu, cid) in ready]
                            profile.add("rhs.apply",
                                        time.perf_counter_ns() - t0,
                                        calls=n_ready)
                        else:
                            gs = [rhs.eval(env) if pgu is None
                                  else rhs_after[cid](env, pgu)
                                  for (_p, env, _f, pgu, cid) in ready]
                    for i in range(width):
                        reason = ""
                        if i >= n_ready:
                            reason = (f"node budget ({max_nodes}) "
                                      f"exhausted at depth {depth}")
                        elif deadline is not None and \
                                time.monotonic() > deadline:
                            reason = (f"wall-clock budget "
                                      f"({budget_seconds}s) exhausted "
                                      f"at depth {depth}")
                        if reason:
                            result.truncated = True
                            result.truncation_reason = reason
                            parked_packed.extend(
                                n[0] for n in level[i:])
                            parked_packed.extend(
                                n[0] for n in next_level)
                            if tracing:
                                tracer.event(
                                    "solver.truncate",
                                    category="solver", track="solver",
                                    reason=reason,
                                    parked=len(parked_packed))
                            break
                        packed, env, fu, pgu, cid = level[i]
                        explored += 1
                        session_explored += 1
                        if gs is not None:
                            gu = gs[i]
                        elif profile is not None:
                            t0 = time.perf_counter_ns()
                            gu = (rhs.eval(env) if pgu is None
                                  else rhs_after[cid](env, pgu))
                            profile.add("rhs.apply",
                                        time.perf_counter_ns() - t0)
                        else:
                            gu = (rhs.eval(env) if pgu is None
                                  else rhs_after[cid](env, pgu))
                        if profile is not None:
                            t0 = time.perf_counter_ns()
                            limit = fu == gu
                            profile.add("limit_report",
                                        time.perf_counter_ns() - t0)
                        else:
                            # the limit condition f(u) = g(u): exact
                            # equality, because both values are finite
                            limit = fu == gu
                        u_repr = (repr(table.unpack(packed))
                                  if tracing else "")
                        if depth < max_depth:
                            t0 = (time.perf_counter_ns()
                                  if profile is not None else 0)
                            kids: Optional[list[tuple]] = []
                            pruned = 0
                            for pair, acid, msg, event in acts:
                                env_v = (env[:acid]
                                         + (env[acid] + (msg,),)
                                         + env[acid + 1:])
                                fv = lhs_after[acid](env_v, fu)
                                if leq(fv, gu):
                                    kids.append(
                                        (packed + (pair,), env_v, fv,
                                         gu, acid))
                                else:
                                    pruned += 1
                                    if metrics is not None:
                                        tracer.event(
                                            "solver.prune",
                                            category="solver",
                                            track="solver",
                                            node=u_repr,
                                            candidate=repr(event),
                                            reason="f(v) ⋢ g(u)")
                            if metrics is not None:
                                metrics.counter(
                                    "solver.candidates_proposed").inc(
                                        len(actions))
                                metrics.counter(
                                    "solver.candidates_pruned").inc(
                                        pruned)
                                metrics.histogram(
                                    "solver.branching").record(
                                        len(kids))
                            if profile is not None:
                                profile.add(
                                    "lhs.apply.expand",
                                    time.perf_counter_ns() - t0,
                                    calls=len(actions))
                                profile.note("proposed", len(actions))
                                profile.note("pruned", pruned)
                        else:
                            kids = None
                        if limit:
                            fin_packed.append(packed)
                            if tracing:
                                tracer.event(
                                    "solver.accept",
                                    category="solver", track="solver",
                                    node=u_repr, depth=depth)
                        if kids is None:
                            # at the bound: frontier if extendable
                            # (short-circuit probe, g(u) reused)
                            t0 = (time.perf_counter_ns()
                                  if profile is not None else 0)
                            tried = 0
                            hit = False
                            for pair, acid, msg, _event in acts:
                                env_v = (env[:acid]
                                         + (env[acid] + (msg,),)
                                         + env[acid + 1:])
                                tried += 1
                                if leq(lhs_after[acid](env_v, fu), gu):
                                    hit = True
                                    break
                            if profile is not None:
                                profile.add(
                                    "lhs.apply.probe",
                                    time.perf_counter_ns() - t0,
                                    calls=tried)
                            if hit:
                                frontier_packed.append(packed)
                            elif not limit:
                                dead_packed.append(packed)
                            continue
                        if not kids and not limit:
                            dead_packed.append(packed)
                            if tracing:
                                tracer.event(
                                    "solver.dead_end",
                                    category="solver", track="solver",
                                    node=u_repr, depth=depth)
                        next_level.extend(kids)
                    if tracing:
                        metrics.gauge("solver.level_width").set(
                            len(next_level))
                        profile.note(
                            "expanded",
                            session_explored - level_explored)
                        profile.note(
                            "accepted", len(fin_packed) - level_accepted)
                        profile.note(
                            "dead_ends", len(dead_packed) - level_dead)
                        profile.end_level(
                            depth, len(level),
                            time.perf_counter_ns() - level_t0)
                    level = next_level
                if result.truncated or not level:
                    break
            result.nodes_explored = explored
            # unpack at the API boundary: the same Event objects in
            # the same BFS order the reference path would append, so
            # everything downstream is bit-identical
            unpack = table.unpack
            result.finite_solutions.extend(
                unpack(p) for p in fin_packed)
            result.frontier.extend(unpack(p) for p in frontier_packed)
            result.dead_ends.extend(unpack(p) for p in dead_packed)
            result.unvisited.extend(unpack(p) for p in parked_packed)
            if tracing:
                metrics.counter("solver.nodes_expanded").inc(
                    session_explored)
                metrics.counter("solver.finite_solutions").inc(
                    len(result.finite_solutions))
                metrics.counter("solver.dead_ends").inc(
                    len(result.dead_ends))
                metrics.gauge("solver.frontier_size").set(
                    len(result.frontier))
                root.annotate(nodes=explored,
                              solutions=len(result.finite_solutions),
                              truncated=result.truncated)
        if cache_key is not None and self._cacheable(result):
            if profile is not None:
                t0 = time.perf_counter_ns()
                self.cache.put("solver", cache_key,
                               result.to_payload())
                profile.add("cache.put",
                            time.perf_counter_ns() - t0)
            else:
                self.cache.put("solver", cache_key,
                               result.to_payload())
            if tracing:
                tracer.event(
                    "cache.write", category="cache", track="solver",
                    key=self.cache.key_digest(cache_key)[:16])
        if tracing:
            profile.to_metrics(metrics)
            result.metrics = metrics.summary()
            result.profile = profile.summary()
        return result

    def _resume_seeds_packed(self, checkpoint, result: SolverResult,
                             compiled) -> dict[int, list[tuple]]:
        """Checkpoint resume for the compiled engine.

        Carried traces are replayed exactly as in
        :meth:`_resume_seeds` — witness-path validation through the
        live description, on the reference path, so a corrupt
        checkpoint is caught identically — and the unvisited seeds
        are then packed, with their ``f`` values computed by the
        compiled closures.
        """
        result.finite_solutions.extend(
            self._walk_path(key) for key in checkpoint.finite_solutions)
        result.frontier.extend(
            self._walk_path(key) for key in checkpoint.frontier)
        result.dead_ends.extend(
            self._walk_path(key) for key in checkpoint.dead_ends)
        table = compiled.table
        lhs = compiled.lhs
        seeds: dict[int, list[tuple]] = {}
        for key in checkpoint.unvisited:
            u = self._walk_path(key)
            packed = table.pack(u)
            env = table.env_of(packed)
            seeds.setdefault(len(packed), []).append(
                (packed, env, lhs.eval(env), None, -1))
        return seeds

    # -- checkpoint / resume --------------------------------------------------

    @staticmethod
    def _coerce_checkpoint(resume_from: object):
        """Accept a SolverCheckpoint, its dict form, or a JSON path."""
        from repro.cache.checkpoint import SolverCheckpoint

        if isinstance(resume_from, SolverCheckpoint):
            return resume_from
        if isinstance(resume_from, dict):
            return SolverCheckpoint.from_dict(resume_from)
        if isinstance(resume_from, (str, bytes)) or hasattr(
                resume_from, "__fspath__"):
            return SolverCheckpoint.load(str(resume_from))
        raise TypeError(
            "resume_from must be a SolverCheckpoint, its dict form, "
            f"or a path to its JSON (got {type(resume_from).__name__})")

    def _validate_checkpoint(self, checkpoint, max_depth: int) -> None:
        """A checkpoint only resumes the exploration it snapshot."""
        if checkpoint.depth != max_depth:
            raise ValueError(
                f"checkpoint was taken at depth {checkpoint.depth}, "
                f"cannot resume at depth {max_depth}")
        if checkpoint.limit_depth != self.limit_depth:
            raise ValueError(
                f"checkpoint used limit_depth "
                f"{checkpoint.limit_depth}, this solver uses "
                f"{self.limit_depth}")
        mine = getattr(self.description, "name", "")
        if checkpoint.description and mine and \
                checkpoint.description != mine:
            raise ValueError(
                f"checkpoint is of description "
                f"{checkpoint.description!r}, this solver explores "
                f"{mine!r}")

    def _resume_seeds(self, checkpoint, result: SolverResult
                      ) -> dict[int, list[tuple[Trace, object]]]:
        """Rebuild a checkpoint's carried traces into ``result`` and
        return the BFS seeds.

        Every trace key is replayed as a witness path (each step must
        be an admissible extension), so a checkpoint that does not
        describe this description's §3.3 tree raises
        :class:`~repro.obs.replay.ReplayDivergence` instead of
        silently seeding garbage.  For the unvisited seeds the carried
        ``f(u)`` values are recomputed — the price of keeping
        checkpoints pure JSON — and the seeds are grouped by depth
        (= trace length) for re-entry into the level loop.
        """
        result.finite_solutions.extend(
            self._walk_path(key) for key in checkpoint.finite_solutions)
        result.frontier.extend(
            self._walk_path(key) for key in checkpoint.frontier)
        result.dead_ends.extend(
            self._walk_path(key) for key in checkpoint.dead_ends)
        f = self.description.lhs
        seeds: dict[int, list[tuple[Trace, object]]] = {}
        for key in checkpoint.unvisited:
            u = self._walk_path(key)
            seeds.setdefault(u.length(), []).append((u, f.apply(u)))
        return seeds

    def _result_from_payload(self, payload: dict
                             ) -> Optional[SolverResult]:
        """Rebuild a cached :class:`SolverResult`, or ``None`` when
        the payload cannot be resolved against the live candidate
        generator (then the caller treats the entry as a miss).

        Rebuilding matches each stored event key against the candidate
        events by ``(channel name, message repr)`` — no admissibility
        re-checks (that would re-run the work the cache is skipping) —
        and then verifies the rebuilt result's digest against the
        stored one, so a drifted generator or an ambiguous ``repr``
        degrades to a miss, never to a wrong answer.
        """
        try:
            result = SolverResult(
                finite_solutions=[
                    self._rebuild_trace(k)
                    for k in payload["finite_solutions"]],
                frontier=[self._rebuild_trace(k)
                          for k in payload["frontier"]],
                dead_ends=[self._rebuild_trace(k)
                           for k in payload["dead_ends"]],
                unvisited=[self._rebuild_trace(k)
                           for k in payload.get("unvisited", [])],
                nodes_explored=int(payload["nodes_explored"]),
                depth=int(payload["depth"]),
                truncated=bool(payload["truncated"]),
                truncation_reason=str(
                    payload.get("truncation_reason", "")),
                limit_depth=int(payload.get("limit_depth", 0)),
                description_name=str(
                    payload.get("description_name", "")),
            )
        except (KeyError, TypeError, ValueError, LookupError):
            return None
        if result.digest() != payload.get("digest"):
            return None
        return result

    def _rebuild_trace(self, key: list) -> Trace:
        """A stored trace key back into a live :class:`Trace` by
        matching candidate events (no admissibility checks); raises
        ``LookupError`` when some step has no matching candidate."""
        u = Trace.empty()
        for channel_name, message_repr in key:
            matched = None
            for event in self._candidate_events(u):
                if event.channel.name == channel_name and \
                        repr(event.message) == message_repr:
                    matched = event
                    break
            if matched is None:
                raise LookupError(
                    f"no candidate event matches "
                    f"({channel_name}, {message_repr}) at {u!r}")
            u = u.append(matched)
        return u

    # -- witness paths (flight-recorder view of §3.3) -----------------------

    def witness_schedule(self, trace: Trace) -> Schedule:
        """Encode a finite trace as a witness path of the §3.3 tree.

        A node of the tree *is* its path from ``⊥`` — the decision
        sequence of the search, exactly as an operational run is its
        oracle decision sequence.  The returned
        :class:`~repro.obs.recorder.Schedule` stores that path in its
        ``path`` stream; :meth:`replay_witness` re-walks it, checking
        each extension's admissibility, so a solver result can ship
        machine-checkable evidence for every solution it claims.
        """
        schedule = Schedule()
        schedule.path = [[e.channel.name, repr(e.message)]
                         for e in trace]
        schedule.meta["kind"] = "solver-path"
        schedule.meta["description"] = getattr(
            self.description, "name", "")
        schedule.meta["limit_holds"] = bool(
            self.description.limit_holds(trace, self.limit_depth))
        return schedule

    def replay_witness(self, schedule: Schedule) -> Trace:
        """Re-walk a witness path, verifying every step is a tree edge.

        Each recorded event must be an admissible one-step extension
        (``f(v) ⊑ g(u)``) of the trace built so far; the first
        recorded event with no matching admissible extension raises
        :class:`~repro.obs.replay.ReplayDivergence` with the path
        index and the live candidate set.  Returns the reconstructed
        node (whose membership in the tree is thereby witnessed).
        """
        return self._walk_path(schedule.path)

    def _walk_path(self, path: list) -> Trace:
        """Re-walk a raw JSON path (``[[channel, message_repr], …]``),
        verifying every step is a tree edge — the engine behind both
        :meth:`replay_witness` and checkpoint resume."""
        u = Trace.empty()
        for index, (channel_name, message_repr) in enumerate(path):
            matched = None
            live = []
            for v in self.children(u):
                last = v.item(v.length() - 1)
                key = [last.channel.name, repr(last.message)]
                live.append(key)
                if key == [channel_name, message_repr]:
                    matched = v
                    break
            if matched is None:
                raise ReplayDivergence(
                    "path", index,
                    "recorded event is not an admissible extension",
                    recorded=[channel_name, message_repr],
                    actual=live)
            u = matched
        return u

    def iter_paths(self, max_depth: int) -> Iterator[Trace]:
        """Depth-first enumeration of all maximal-at-bound tree paths."""

        def go(u: Trace, depth: int) -> Iterator[Trace]:
            if depth == max_depth:
                yield u
                return
            extended = False
            for v in self.children(u):
                extended = True
                yield from go(v, depth + 1)
            if not extended:
                yield u

        yield from go(Trace.empty(), 0)


def solve(description: Description, channels: Iterable[Channel],
          max_depth: int,
          limit_depth: int = DEFAULT_DEPTH,
          tracer: Optional[Tracer] = None,
          cache: Optional[object] = None,
          compiled: Optional[bool] = None) -> SolverResult:
    """One-call convenience: explore over the channels' alphabets.

    With ``cache`` (a :class:`repro.cache.CacheStore`), the
    exploration consults the persistent result store first and stores
    its result back — a repeated ``solve`` of the same description /
    alphabet / budgets is a disk read, digest-identical to the
    computed one.  ``compiled`` selects the exploration engine (see
    :class:`SmoothSolutionSolver`): ``None`` auto-detects, ``False``
    forces the reference path, ``True`` demands the compiled one.
    """
    solver = SmoothSolutionSolver.over_channels(
        description, channels, limit_depth=limit_depth, tracer=tracer,
        cache=cache, compiled=compiled
    )
    return solver.explore(max_depth)


def rhs_guided_candidates(channels: Iterable[Channel],
                          description: Description,
                          probe_depth: int = 32) -> CandidateFn:
    """Candidates drawn from what the right side currently allows.

    For a node ``u`` the admissible extensions satisfy ``f(v) ⊑ g(u)``;
    when ``f`` observes single channels, any new event's message must
    already appear in the corresponding component of ``g(u)``.  This
    generator proposes, per channel, the messages occurring in ``g(u)``
    (flattened across tuple components) — a finite set even when the
    channel alphabet is infinite.  It may over-approximate (harmless:
    inadmissible candidates are pruned by the ``f(v) ⊑ g(u)`` test) but
    never misses an admissible output event of the §2.3 kind.
    """
    channel_list = sorted(channels)

    def candidates(u: Trace) -> Iterable[Event]:
        gu = description.rhs.apply(u)
        messages = _flatten_messages(gu, probe_depth)
        for c in channel_list:
            for m in messages:
                if c.admits(m):
                    yield Event(c, m)

    candidates.cache_key = {
        "kind": "rhs-guided",
        "channels": [c.name for c in channel_list],
        "probe_depth": probe_depth,
        "description": getattr(description, "name", ""),
    }
    return candidates


def _flatten_messages(value: object, probe_depth: int) -> list:
    """Collect message values occurring in a codomain value."""
    from repro.seq.finite import Seq

    out: list = []
    if isinstance(value, tuple):
        for v in value:
            out.extend(_flatten_messages(v, probe_depth))
        return _dedup(out)
    if isinstance(value, Seq):
        out.extend(value.take(probe_depth).items)
        return _dedup(out)
    if isinstance(value, Trace):
        out.extend(
            e.message for e in value.take(probe_depth)
        )
        return _dedup(out)
    out.append(value)
    return _dedup(out)


def _dedup(items: list) -> list:
    seen = set()
    result = []
    for x in items:
        try:
            key = x
            if key in seen:
                continue
            seen.add(key)
        except TypeError:
            if x in result:
                continue
        result.append(x)
    return result
