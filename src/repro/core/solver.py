"""Operational enumeration of smooth solutions (§3.3).

The paper generalizes Kleene iteration to a *tree*: the root is ``⊥``;
a node ``u`` has a son ``v`` iff ``u pre v`` and ``f(v) ⊑ g(u)``.  Every
node of the tree automatically satisfies the smoothness condition (the
path from the root witnesses it), so

* the **finite smooth solutions** are exactly the nodes that also satisfy
  the limit condition ``f(s) = g(s)``, and
* the **infinite smooth solutions** are the lubs of infinite paths whose
  limit condition holds in the limit.

The solver explores this tree breadth-first to a depth bound.  One-step
extensions are proposed by a *candidate generator* — by default every
``(channel, message)`` pair from the channels' finite alphabets; for
channels with infinite alphabets (the naturals on ``d`` in §2.3) the
caller supplies a generator, typically derived from ``g(u)`` itself
(an output can only extend the trace if the right side already allows
it, so the elements of ``g(u)`` bound the useful candidates).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import DEFAULT_DEPTH, Description
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Schedule, stable_digest
from repro.obs.replay import ReplayDivergence
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.traces.trace import Trace

#: A candidate generator: finite trace ``u`` ↦ events that may extend it.
CandidateFn = Callable[[Trace], Iterable[Event]]


class CandidateError(RuntimeError):
    """A user-supplied candidate generator raised; names the trace at
    which it failed so the misbehaving case is reproducible."""

    def __init__(self, trace: Trace, original: BaseException):
        super().__init__(
            f"candidate generator failed at trace {trace!r}: "
            f"{type(original).__name__}: {original}"
        )
        self.trace = trace
        self.original = original


def alphabet_candidates(channels: Iterable[Channel]) -> CandidateFn:
    """The default candidate generator: all events over finite alphabets.

    Raises ``ValueError`` at construction if some channel has no finite
    alphabet — then a custom generator is required.
    """
    events: list[Event] = []
    for c in sorted(channels):
        if c.alphabet is None:
            raise ValueError(
                f"channel {c.name!r} has no finite alphabet; supply a "
                "custom candidate generator"
            )
        events.extend(Event(c, m) for m in sorted(c.alphabet, key=repr))

    def candidates(u: Trace) -> Iterable[Event]:
        del u
        return events

    return candidates


@dataclass
class SolverResult:
    """Outcome of a bounded tree exploration.

    Attributes:
        finite_solutions: nodes satisfying the limit condition — exact
            smooth solutions (their smoothness is witnessed by the path).
        frontier: traces at the depth bound that still have admissible
            extensions; each is a prefix of zero or more infinite (or
            deeper finite) smooth solutions.
        dead_ends: nodes with no admissible extension and a failing
            limit condition — communication histories after which the
            description is stuck but not quiescent.
        nodes_explored: total tree nodes visited.
        depth: the exploration bound used.
        truncated: the exploration hit a resource guard (node budget or
            wall-clock budget) before covering the tree to ``depth``;
            the result is a sound but partial under-approximation, and
            unvisited nodes are parked on the frontier.
        truncation_reason: which guard fired, for diagnostics.
        metrics: per-run metrics summary (nodes, branching, prunes, …)
            when the solver ran with tracing enabled; empty otherwise.
    """

    finite_solutions: list[Trace] = field(default_factory=list)
    frontier: list[Trace] = field(default_factory=list)
    dead_ends: list[Trace] = field(default_factory=list)
    nodes_explored: int = 0
    depth: int = 0
    truncated: bool = False
    truncation_reason: str = ""
    metrics: dict = field(default_factory=dict)

    def solution_set(self) -> set[Trace]:
        return set(self.finite_solutions)

    def digest(self) -> str:
        """Stable content hash of the exploration's outcome.

        Covers the solution/frontier/dead-end sets (order-normalized)
        and the exploration shape (nodes, depth, truncation) — not
        metrics or wall-clock.  Two explorations with equal digests
        found the same portion of the §3.3 tree, so "re-running the
        solver reproduces the result" is a one-line assertion.
        """
        return stable_digest({
            "finite_solutions": sorted(
                _trace_key(t) for t in self.finite_solutions),
            "frontier": sorted(_trace_key(t) for t in self.frontier),
            "dead_ends": sorted(_trace_key(t) for t in self.dead_ends),
            "nodes_explored": self.nodes_explored,
            "depth": self.depth,
            "truncated": self.truncated,
        })


def _trace_key(t: Trace) -> list:
    """JSON-ready canonical form of a finite trace."""
    return [[e.channel.name, repr(e.message)] for e in t]


class SmoothSolutionSolver:
    """Bounded breadth-first exploration of the §3.3 tree."""

    def __init__(self, description: Description,
                 candidates: CandidateFn,
                 limit_depth: int = DEFAULT_DEPTH,
                 tracer: Optional[Tracer] = None):
        self.description = description
        self.candidates = candidates
        self.limit_depth = limit_depth
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @classmethod
    def over_channels(cls, description: Description,
                      channels: Iterable[Channel],
                      limit_depth: int = DEFAULT_DEPTH,
                      tracer: Optional[Tracer] = None
                      ) -> "SmoothSolutionSolver":
        return cls(description, alphabet_candidates(channels),
                   limit_depth=limit_depth, tracer=tracer)

    # -- tree structure ------------------------------------------------------

    def children(self, u: Trace) -> Iterator[Trace]:
        """Admissible one-step extensions: ``v`` with ``f(v) ⊑ g(u)``."""
        f = self.description.lhs
        gu = self.description.rhs.apply(u)
        for event in self._candidate_events(u):
            v = u.append(event)
            fv = f.apply(v)
            if self.description._leq(fv, gu, self.limit_depth):
                yield v

    def _candidate_events(self, u: Trace) -> list[Event]:
        """Run the candidate generator, wrapping its failures."""
        try:
            return list(self.candidates(u))
        except CandidateError:
            raise
        except Exception as exc:
            raise CandidateError(u, exc) from exc

    def is_node(self, u: Trace) -> bool:
        """Is the finite trace ``u`` a node of the tree?

        Equivalent to: the path ``⊥ … u`` exists, i.e. every pre-pair
        along ``u`` satisfies the smoothness condition.
        """
        return self.description.smoothness_holds(
            u, depth=max(u.length(), 1)
        )

    # -- exploration ----------------------------------------------------------

    def explore(self, max_depth: int,
                max_nodes: int = 200_000,
                budget_seconds: Optional[float] = None) -> SolverResult:
        """Breadth-first exploration to ``max_depth``.

        Resource guards keep runaway alphabets and hostile candidate
        generators from running unbounded: at most ``max_nodes`` nodes
        are expanded, and an optional ``budget_seconds`` wall-clock
        budget caps the search in time.  When a guard fires the partial
        result is returned with ``truncated=True`` (unvisited nodes are
        parked on the frontier) instead of raising — a degraded answer
        beats no answer for diagnosis.

        A candidate generator that raises aborts the search with a
        :class:`CandidateError` naming the trace it choked on.

        With a tracer attached the exploration additionally emits
        ``solver.*`` spans/events (per-level spans, prune / accept /
        dead-end / truncate events) and fills ``result.metrics``.

        Hot-path discipline: per node ``u`` the right side ``g(u)`` is
        evaluated exactly once (shared between the limit condition and
        every candidate's admissibility test), the left side ``f(u)``
        is carried over from the parent's admissibility scan (each node
        was once a candidate), and the limit condition is checked
        exactly once.  The frontier-extendability probe at the depth
        bound short-circuits at the first admissible candidate instead
        of re-running the full scan.
        """
        deadline = (None if budget_seconds is None
                    else time.monotonic() + budget_seconds)
        tracer = self.tracer
        tracing = tracer.enabled
        metrics = MetricsRegistry() if tracing else None
        result = SolverResult(depth=max_depth)
        root_trace = Trace.empty()
        # level entries are ``(u, f(u))``: f was computed when u was a
        # candidate of its parent, so it rides along instead of being
        # recomputed per node
        level: list[tuple[Trace, object]] = [
            (root_trace, self.description.lhs.apply(root_trace))]
        explored = 0
        with tracer.span("solver.explore", category="solver",
                         track="solver", depth=max_depth,
                         max_nodes=max_nodes,
                         limit_depth=self.limit_depth) as root:
            for depth in range(max_depth + 1):
                with tracer.span("solver.level", category="solver",
                                 track="solver", depth=depth,
                                 width=len(level)):
                    next_level: list[tuple[Trace, object]] = []
                    for i, (u, fu) in enumerate(level):
                        reason = ""
                        if explored >= max_nodes:
                            reason = (f"node budget ({max_nodes}) "
                                      f"exhausted at depth {depth}")
                        elif deadline is not None and \
                                time.monotonic() > deadline:
                            reason = (f"wall-clock budget "
                                      f"({budget_seconds}s) exhausted "
                                      f"at depth {depth}")
                        if reason:
                            self._truncate(result, level[i:],
                                           next_level, reason)
                            if tracing:
                                tracer.event(
                                    "solver.truncate",
                                    category="solver", track="solver",
                                    reason=reason,
                                    parked=len(result.frontier))
                            break
                        explored += 1
                        gu = self.description.rhs.apply(u)
                        limit = self.description.limit_report(
                            u, self.limit_depth,
                            lhs_value=fu, rhs_value=gu).holds
                        if depth < max_depth:
                            kids = self._expand(u, gu, metrics)
                        else:
                            kids = None
                        if limit:
                            result.finite_solutions.append(u)
                            if tracing:
                                tracer.event(
                                    "solver.accept",
                                    category="solver", track="solver",
                                    node=repr(u), depth=depth)
                        if kids is None:
                            # at the bound: frontier if extendable
                            if self._extendable(u, gu):
                                result.frontier.append(u)
                            elif not limit:
                                result.dead_ends.append(u)
                            continue
                        if not kids and not limit:
                            result.dead_ends.append(u)
                            if tracing:
                                tracer.event(
                                    "solver.dead_end",
                                    category="solver", track="solver",
                                    node=repr(u), depth=depth)
                        next_level.extend(kids)
                    if tracing:
                        metrics.gauge("solver.level_width").set(
                            len(next_level))
                    level = next_level
                if result.truncated or not level:
                    break
            result.nodes_explored = explored
            if tracing:
                metrics.counter("solver.nodes_expanded").inc(explored)
                metrics.counter("solver.finite_solutions").inc(
                    len(result.finite_solutions))
                metrics.counter("solver.dead_ends").inc(
                    len(result.dead_ends))
                metrics.gauge("solver.frontier_size").set(
                    len(result.frontier))
                result.metrics = metrics.summary()
                root.annotate(nodes=explored,
                              solutions=len(result.finite_solutions),
                              truncated=result.truncated)
        return result

    def _expand(self, u: Trace, gu: object,
                metrics: Optional[MetricsRegistry]
                ) -> list[tuple[Trace, object]]:
        """The :meth:`children` computation against a precomputed
        ``g(u)``, returning ``(v, f(v))`` pairs so each child's left
        side is evaluated once and reused when the child is explored.
        With ``metrics`` attached, also narrated: one ``solver.prune``
        event per inadmissible candidate, branching and prune counts
        into ``metrics``."""
        f = self.description.lhs
        events = self._candidate_events(u)
        kids: list[tuple[Trace, object]] = []
        pruned = 0
        for event in events:
            v = u.append(event)
            fv = f.apply(v)
            if self.description._leq(fv, gu, self.limit_depth):
                kids.append((v, fv))
            else:
                pruned += 1
                if metrics is not None:
                    self.tracer.event(
                        "solver.prune", category="solver",
                        track="solver", node=repr(u),
                        candidate=repr(event), reason="f(v) ⋢ g(u)")
        if metrics is not None:
            metrics.counter("solver.candidates_proposed").inc(
                len(events))
            metrics.counter("solver.candidates_pruned").inc(pruned)
            metrics.histogram("solver.branching").record(len(kids))
        return kids

    def _extendable(self, u: Trace, gu: object) -> bool:
        """Does ``u`` have at least one admissible extension?  The
        frontier probe: short-circuits at the first hit and reuses the
        caller's ``g(u)``."""
        f = self.description.lhs
        for event in self._candidate_events(u):
            v = u.append(event)
            if self.description._leq(f.apply(v), gu,
                                     self.limit_depth):
                return True
        return False

    @staticmethod
    def _truncate(result: SolverResult,
                  unvisited: list[tuple[Trace, object]],
                  next_level: list[tuple[Trace, object]],
                  reason: str) -> None:
        """Mark ``result`` partial; park unexpanded nodes as frontier."""
        result.truncated = True
        result.truncation_reason = reason
        result.frontier.extend(u for u, _ in unvisited)
        result.frontier.extend(v for v, _ in next_level)

    # -- witness paths (flight-recorder view of §3.3) -----------------------

    def witness_schedule(self, trace: Trace) -> Schedule:
        """Encode a finite trace as a witness path of the §3.3 tree.

        A node of the tree *is* its path from ``⊥`` — the decision
        sequence of the search, exactly as an operational run is its
        oracle decision sequence.  The returned
        :class:`~repro.obs.recorder.Schedule` stores that path in its
        ``path`` stream; :meth:`replay_witness` re-walks it, checking
        each extension's admissibility, so a solver result can ship
        machine-checkable evidence for every solution it claims.
        """
        schedule = Schedule()
        schedule.path = [[e.channel.name, repr(e.message)]
                         for e in trace]
        schedule.meta["kind"] = "solver-path"
        schedule.meta["description"] = getattr(
            self.description, "name", "")
        schedule.meta["limit_holds"] = bool(
            self.description.limit_holds(trace, self.limit_depth))
        return schedule

    def replay_witness(self, schedule: Schedule) -> Trace:
        """Re-walk a witness path, verifying every step is a tree edge.

        Each recorded event must be an admissible one-step extension
        (``f(v) ⊑ g(u)``) of the trace built so far; the first
        recorded event with no matching admissible extension raises
        :class:`~repro.obs.replay.ReplayDivergence` with the path
        index and the live candidate set.  Returns the reconstructed
        node (whose membership in the tree is thereby witnessed).
        """
        u = Trace.empty()
        for index, (channel_name, message_repr) in enumerate(
                schedule.path):
            matched = None
            live = []
            for v in self.children(u):
                last = v.item(v.length() - 1)
                key = [last.channel.name, repr(last.message)]
                live.append(key)
                if key == [channel_name, message_repr]:
                    matched = v
                    break
            if matched is None:
                raise ReplayDivergence(
                    "path", index,
                    "recorded event is not an admissible extension",
                    recorded=[channel_name, message_repr],
                    actual=live)
            u = matched
        return u

    def iter_paths(self, max_depth: int) -> Iterator[Trace]:
        """Depth-first enumeration of all maximal-at-bound tree paths."""

        def go(u: Trace, depth: int) -> Iterator[Trace]:
            if depth == max_depth:
                yield u
                return
            extended = False
            for v in self.children(u):
                extended = True
                yield from go(v, depth + 1)
            if not extended:
                yield u

        yield from go(Trace.empty(), 0)


def solve(description: Description, channels: Iterable[Channel],
          max_depth: int,
          limit_depth: int = DEFAULT_DEPTH,
          tracer: Optional[Tracer] = None) -> SolverResult:
    """One-call convenience: explore over the channels' alphabets."""
    solver = SmoothSolutionSolver.over_channels(
        description, channels, limit_depth=limit_depth, tracer=tracer
    )
    return solver.explore(max_depth)


def rhs_guided_candidates(channels: Iterable[Channel],
                          description: Description,
                          probe_depth: int = 32) -> CandidateFn:
    """Candidates drawn from what the right side currently allows.

    For a node ``u`` the admissible extensions satisfy ``f(v) ⊑ g(u)``;
    when ``f`` observes single channels, any new event's message must
    already appear in the corresponding component of ``g(u)``.  This
    generator proposes, per channel, the messages occurring in ``g(u)``
    (flattened across tuple components) — a finite set even when the
    channel alphabet is infinite.  It may over-approximate (harmless:
    inadmissible candidates are pruned by the ``f(v) ⊑ g(u)`` test) but
    never misses an admissible output event of the §2.3 kind.
    """
    channel_list = sorted(channels)

    def candidates(u: Trace) -> Iterable[Event]:
        gu = description.rhs.apply(u)
        messages = _flatten_messages(gu, probe_depth)
        for c in channel_list:
            for m in messages:
                if c.admits(m):
                    yield Event(c, m)

    return candidates


def _flatten_messages(value: object, probe_depth: int) -> list:
    """Collect message values occurring in a codomain value."""
    from repro.seq.finite import Seq

    out: list = []
    if isinstance(value, tuple):
        for v in value:
            out.extend(_flatten_messages(v, probe_depth))
        return _dedup(out)
    if isinstance(value, Seq):
        out.extend(value.take(probe_depth).items)
        return _dedup(out)
    if isinstance(value, Trace):
        out.extend(
            e.message for e in value.take(probe_depth)
        )
        return _dedup(out)
    out.append(value)
    return _dedup(out)


def _dedup(items: list) -> list:
    seen = set()
    result = []
    for x in items:
        try:
            key = x
            if key in seen:
                continue
            seen.add(key)
        except TypeError:
            if x in result:
                continue
        result.append(x)
    return result
