"""The Composition Theorem (§5, Theorem 2).

If component process ``i`` of a network is described by ``fᵢ ⟵ gᵢ``
where both sides satisfy the description constraint *dc* — they depend
only on the traces of process ``i``, i.e. ``fᵢ(t) = fᵢ(tᵢ)`` — then the
tuple ``f ⟵ g`` describes the network: ``t`` is a smooth solution of
``f ⟵ g`` iff every projection ``tᵢ`` is a smooth solution of
``fᵢ ⟵ gᵢ``.

In this implementation *dc* holds by construction whenever a component's
description mentions only its incident channels (the support machinery of
:mod:`repro.functions.base` makes that checkable), and the sublemma's
two directions are exposed as separate checks so the test suite can
verify the theorem on concrete networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence as PySeq

from repro.channels.channel import Channel
from repro.core.description import (
    DEFAULT_DEPTH,
    Description,
    DescriptionSystem,
    combine,
)
from repro.traces.trace import Trace


@dataclass(frozen=True)
class Component:
    """A network component: incident channels plus its description."""

    name: str
    channels: frozenset[Channel]
    description: Description

    def satisfies_dc(self) -> bool:
        """The §5 description constraint, via support containment."""
        return self.description.satisfies_dc(self.channels)

    def project(self, t: Trace) -> Trace:
        """``tᵢ``: the projection of a network trace on this component."""
        return t.project(self.channels)


class ComposedNetwork:
    """A network assembled from described components (Theorem 2)."""

    def __init__(self, components: Iterable[Component],
                 name: str = "network"):
        self.components = list(components)
        self.name = name
        if not self.components:
            raise ValueError("a network needs at least one component")
        for c in self.components:
            if not c.satisfies_dc():
                raise ValueError(
                    f"component {c.name!r} violates the description "
                    "constraint dc: its description mentions channels "
                    "outside its incident set"
                )

    @property
    def channels(self) -> frozenset[Channel]:
        """Union of the components' incident channels."""
        out: frozenset[Channel] = frozenset()
        for c in self.components:
            out |= c.channels
        return out

    def network_description(self) -> Description:
        """The tuple description ``f ⟵ g`` of Theorem 2."""
        return combine(
            [c.description for c in self.components], name=self.name
        )

    def system(self) -> DescriptionSystem:
        return DescriptionSystem(
            (c.description for c in self.components),
            self.channels, name=self.name,
        )

    # -- the sublemma, both directions, checkable -------------------------

    def componentwise_smooth(self, t: Trace,
                             depth: int = DEFAULT_DEPTH) -> bool:
        """``∀ i :: tᵢ`` is a smooth solution of ``fᵢ ⟵ gᵢ``."""
        return all(
            c.description.is_smooth_solution(c.project(t), depth)
            for c in self.components
        )

    def network_smooth(self, t: Trace,
                       depth: int = DEFAULT_DEPTH) -> bool:
        """``t`` is a smooth solution of the combined ``f ⟵ g``."""
        return self.network_description().is_smooth_solution(t, depth)

    def sublemma_agrees(self, t: Trace,
                        depth: int = DEFAULT_DEPTH) -> bool:
        """Check the sublemma's equivalence on a concrete trace."""
        return self.network_smooth(t, depth) == \
            self.componentwise_smooth(t, depth)

    def is_network_trace(self, t: Trace,
                         depth: int = DEFAULT_DEPTH) -> bool:
        """The network-trace definition of §3.1.2, via Theorem 2:

        ``t`` is a network trace iff every projection is a component
        trace, which (descriptions being faithful) is the componentwise
        smoothness above.
        """
        return self.componentwise_smooth(t, depth)


def pipeline(components: PySeq[Component],
             name: str = "pipeline") -> ComposedNetwork:
    """Convenience constructor for a linear chain of components."""
    return ComposedNetwork(components, name=name)
