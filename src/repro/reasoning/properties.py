"""Safety and progress properties of process behaviours (§2.3).

The paper advertises equational descriptions as a vehicle for proving
*safety* ("appearance of ``2×n`` in the output is preceded by ``n``")
and *progress* ("every natural number appears in the output
eventually") properties.  This module gives those two shapes a first-
class form:

* a :class:`SafetyProperty` is a prefix-closed predicate on finite
  traces — if it holds of a trace it holds of every prefix.  Safety
  properties are checked on *all* reachable histories (every node of
  the §3.3 tree) and, by admissibility, transfer to infinite smooth
  solutions from their prefixes.
* a :class:`ProgressProperty` is a monotone *goal*: once a finite
  prefix satisfies it, every extension does.  Progress is checked on
  quiescent solutions (or deep prefixes of infinite ones) — it need
  not hold along the way, only eventually.

Combinators build the common shapes: event invariants, precedence
(``b``-events must be preceded by matching ``a``-events), message
appearance, and boolean combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.traces.trace import Trace

TracePredicate = Callable[[Trace], bool]


@dataclass(frozen=True)
class SafetyProperty:
    """A prefix-closed predicate on finite traces."""

    name: str
    holds: TracePredicate

    def __call__(self, t: Trace) -> bool:
        return self.holds(t)

    def conjoin(self, other: "SafetyProperty") -> "SafetyProperty":
        return SafetyProperty(
            f"({self.name} ∧ {other.name})",
            lambda t: self.holds(t) and other.holds(t),
        )

    def __and__(self, other: "SafetyProperty") -> "SafetyProperty":
        return self.conjoin(other)


@dataclass(frozen=True)
class ProgressProperty:
    """A monotone goal: satisfied prefixes stay satisfied."""

    name: str
    satisfied: TracePredicate

    def __call__(self, t: Trace) -> bool:
        return self.satisfied(t)

    def conjoin(self, other: "ProgressProperty") -> "ProgressProperty":
        return ProgressProperty(
            f"({self.name} ∧ {other.name})",
            lambda t: self.satisfied(t) and other.satisfied(t),
        )

    def __and__(self, other: "ProgressProperty") -> "ProgressProperty":
        return self.conjoin(other)


# ---------------------------------------------------------------------------
# Safety combinators
# ---------------------------------------------------------------------------

def always(name: str, event_ok: Callable[[Event], bool]
           ) -> SafetyProperty:
    """Every event of the trace satisfies ``event_ok``."""
    return SafetyProperty(
        name, lambda t: all(event_ok(e) for e in t)
    )


def never_message(channel: Channel, message: Any) -> SafetyProperty:
    """The message never appears on the channel."""
    return always(
        f"never ({channel.name},{message!r})",
        lambda e: not (e.channel == channel and e.message == message),
    )


def precedes(name: str,
             trigger: Callable[[Event], Optional[Any]],
             required: Callable[[Any], Callable[[Event], bool]]
             ) -> SafetyProperty:
    """Every trigger event is preceded by a required event.

    ``trigger(e)`` returns a key (or ``None`` if ``e`` is not a
    trigger); ``required(key)`` yields the predicate an *earlier* event
    must satisfy.  Each trigger consumes one earlier event, so repeated
    triggers need repeated justifications (multiset semantics).
    """

    def holds(t: Trace) -> bool:
        events = list(t)
        used = [False] * len(events)
        for i, e in enumerate(events):
            key = trigger(e)
            if key is None:
                continue
            needed = required(key)
            for j in range(i):
                if not used[j] and needed(events[j]):
                    used[j] = True
                    break
            else:
                return False
        return True

    return SafetyProperty(name, holds)


def outputs_justified_by_inputs(inputs: Iterable[Channel],
                                outputs: Iterable[Channel]
                                ) -> SafetyProperty:
    """Every output message was previously received on some input.

    The dfm/merge safety property: no invented outputs.
    """
    input_set = frozenset(inputs)
    output_set = frozenset(outputs)
    return precedes(
        "outputs justified by inputs",
        lambda e: e.message if e.channel in output_set else None,
        lambda message: (
            lambda e: e.channel in input_set and e.message == message
        ),
    )


def counting_bound(name: str, channel: Channel,
                   bound: Callable[[Trace], int]) -> SafetyProperty:
    """The number of events on ``channel`` never exceeds ``bound(t)``."""
    return SafetyProperty(
        name, lambda t: t.count_on(channel) <= bound(t)
    )


# ---------------------------------------------------------------------------
# Progress combinators
# ---------------------------------------------------------------------------

def eventually_message(channel: Channel, message: Any
                       ) -> ProgressProperty:
    """The message appears on the channel."""
    return ProgressProperty(
        f"eventually ({channel.name},{message!r})",
        lambda t: any(
            e.channel == channel and e.message == message for e in t
        ),
    )


def eventually_all(name: str, channel: Channel,
                   messages: Iterable[Any]) -> ProgressProperty:
    """All of the given messages appear on the channel."""
    wanted = list(messages)

    def satisfied(t: Trace) -> bool:
        seen = set()
        for e in t:
            if e.channel == channel:
                seen.add(e.message)
        return all(m in seen for m in wanted)

    return ProgressProperty(name, satisfied)


def eventually_count(channel: Channel, n: int) -> ProgressProperty:
    """At least ``n`` events appear on the channel."""
    return ProgressProperty(
        f"#({channel.name}) ≥ {n}",
        lambda t: t.count_on(channel) >= n,
    )
