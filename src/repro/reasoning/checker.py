"""Bounded model checking of safety and progress over descriptions.

Safety is checked over the §3.3 tree: every node is a reachable
communication history, so a safety property holds of the process iff it
holds at every node (and, being prefix-closed and admissible, of every
infinite smooth solution too).  A violation comes with the offending
history — a genuine counterexample trace.

Progress is checked against solutions: a quiescent (finite) solution
must satisfy the goal outright; an infinite solution must satisfy it by
some prefix within the horizon.  Combined with the smooth-solution
induction rule (§8.4) these cover the reasoning patterns §2.3 sketches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.description import DEFAULT_DEPTH, Description
from repro.core.solver import SmoothSolutionSolver
from repro.reasoning.properties import ProgressProperty, SafetyProperty
from repro.traces.trace import Trace


@dataclass
class SafetyReport:
    """Outcome of a bounded safety check."""

    property_name: str
    nodes_checked: int
    depth: int
    counterexample: Optional[Trace] = None

    @property
    def holds(self) -> bool:
        return self.counterexample is None

    def __str__(self) -> str:
        if self.holds:
            return (
                f"safety {self.property_name!r} holds on "
                f"{self.nodes_checked} reachable histories "
                f"(depth {self.depth})"
            )
        return (
            f"safety {self.property_name!r} VIOLATED by "
            f"{self.counterexample!r}"
        )


@dataclass
class ProgressReport:
    """Outcome of a progress check on one solution."""

    property_name: str
    satisfied_at: Optional[int]
    horizon: int

    @property
    def holds(self) -> bool:
        return self.satisfied_at is not None

    def __str__(self) -> str:
        if self.holds:
            return (
                f"progress {self.property_name!r} reached at prefix "
                f"{self.satisfied_at}"
            )
        return (
            f"progress {self.property_name!r} NOT reached within "
            f"horizon {self.horizon}"
        )


def check_safety(solver: SmoothSolutionSolver,
                 prop: SafetyProperty,
                 max_depth: int) -> SafetyReport:
    """Verify the property on every tree node up to ``max_depth``."""
    nodes = 0
    level = [Trace.empty()]
    for _ in range(max_depth + 1):
        next_level = []
        for u in level:
            nodes += 1
            if not prop(u):
                return SafetyReport(
                    property_name=prop.name,
                    nodes_checked=nodes,
                    depth=max_depth,
                    counterexample=u,
                )
            next_level.extend(solver.children(u))
        level = next_level
        if not level:
            break
    return SafetyReport(
        property_name=prop.name, nodes_checked=nodes,
        depth=max_depth,
    )


def check_safety_on_description(description: Description,
                                channels,
                                prop: SafetyProperty,
                                max_depth: int) -> SafetyReport:
    """Convenience: build the solver over channel alphabets."""
    solver = SmoothSolutionSolver.over_channels(description, channels)
    return check_safety(solver, prop, max_depth)


def check_progress(solution: Trace, prop: ProgressProperty,
                   horizon: int = DEFAULT_DEPTH) -> ProgressReport:
    """Find the earliest prefix of ``solution`` satisfying the goal."""
    for n in range(horizon + 1):
        prefix = solution.take(n)
        if prop(prefix):
            return ProgressReport(
                property_name=prop.name, satisfied_at=n,
                horizon=horizon,
            )
        if prefix.length() < n:
            break  # solution exhausted
    return ProgressReport(
        property_name=prop.name, satisfied_at=None, horizon=horizon,
    )


def check_progress_on_quiescent(solutions, prop: ProgressProperty
                                ) -> list[ProgressReport]:
    """Progress on each finite (quiescent) solution: the goal must hold
    of the solution itself."""
    reports = []
    for s in solutions:
        n = s.length()
        reports.append(ProgressReport(
            property_name=prop.name,
            satisfied_at=n if prop(s) else None,
            horizon=n,
        ))
    return reports
