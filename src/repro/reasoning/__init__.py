"""Equational reasoning: safety and progress properties (§2.3, §8.4)."""

from repro.reasoning.checker import (
    ProgressReport,
    SafetyReport,
    check_progress,
    check_progress_on_quiescent,
    check_safety,
    check_safety_on_description,
)
from repro.reasoning.properties import (
    ProgressProperty,
    SafetyProperty,
    always,
    counting_bound,
    eventually_all,
    eventually_count,
    eventually_message,
    never_message,
    outputs_justified_by_inputs,
    precedes,
)

__all__ = [
    "ProgressProperty",
    "ProgressReport",
    "SafetyProperty",
    "SafetyReport",
    "always",
    "check_progress",
    "check_progress_on_quiescent",
    "check_safety",
    "check_safety_on_description",
    "counting_bound",
    "eventually_all",
    "eventually_count",
    "eventually_message",
    "never_message",
    "outputs_justified_by_inputs",
    "precedes",
]
