"""Command-line demo runner: ``python -m repro <command>``.

Commands:

* ``summary``        — library overview and experiment index;
* ``dfm``            — classify a few dfm histories and enumerate;
* ``anomaly``        — run the Brock–Ackermann analysis;
* ``fig3``           — the §2.3 x/y/z verdicts;
* ``zoo``            — one-line membership sample per catalog process;
* ``trace``          — record an instrumented run of an example and
  write a Chrome-trace-event timeline (open it in
  https://ui.perfetto.dev) plus, optionally, a JSONL event log;
* ``record``         — flight-record a scenario run (every oracle
  decision and fault RNG draw) into a schedule JSON;
* ``replay``         — re-execute a recorded schedule bit-for-bit and
  verify the run digest (exit 0 iff it matches); also replays a
  fleet quarantine bundle (a directory or its ``cell.json``),
  checking the recorded infrastructure failure reproduces;
* ``diff``           — first-divergence report between two recorded
  schedules and their (lenient) replays;
* ``shrink``         — delta-debug a failing schedule to a locally
  minimal one that preserves the verdict;
* ``grid``           — run a registered conformance scenario's full
  ``plans × seeds`` grid, optionally farmed over supervised worker
  processes (``--workers N``, with per-cell deadlines
  ``--cell-timeout``, bounded ``--retries``, ``--quarantine-dir``
  bundles for poison cells and a ``--chaos kill-worker:p``
  self-test) and optionally backed by the persistent result cache
  (``--cache`` / ``--cache-dir``); exit status reflects *genuine*
  non-conformance only — infrastructure losses degrade the report
  instead;
* ``solve``          — run the §3.3 solver on a scenario's
  specification, optionally resuming a truncated exploration from a
  checkpoint JSON (``--resume``) and/or writing one
  (``--checkpoint-out``); exits 0 iff the exploration completed;
* ``top``            — run a grid with live telemetry streaming and a
  refreshing TTY scoreboard (cells done, retries, quarantines, cache
  hit-rate, ETA), then the final report; optionally writes the HTML
  flight-deck artifact;
* ``bench-append``   — extract the tracked rows from a
  ``BENCH_core.json`` snapshot and append a git-SHA-keyed entry to
  the ``BENCH_history.jsonl`` trajectory;
* ``bench-check``    — gate a fresh snapshot against the committed
  trajectory: exits 1 when a tracked row (solver depth-6 memoization,
  warm-grid speedup, fleet overhead, recorder overhead) regresses
  beyond its per-row tolerance.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

#: Examples the ``trace`` command knows how to record.
TRACE_EXAMPLES = ("alternating_bit", "dfm")

#: Scenarios the flight-recorder commands know how to (re)build.
RECORD_SCENARIOS = ("alternating_bit", "dfm")


def cmd_summary() -> int:
    from repro import __version__
    from repro.report import render_table

    print(f"repro {__version__} — Equational Reasoning About "
          "Nondeterministic Processes (Misra, PODC 1989)")
    print()
    rows = [
        ("F1", "Figure 1 / §2.1", "two-copy loop, Kahn fixpoints"),
        ("F2", "Figure 2 / §2.2", "discriminated fair merge"),
        ("F3", "Figure 3 / §2.3", "doubling network, x/y/z"),
        ("F4", "Figure 4 / §2.4", "Brock–Ackermann anomaly"),
        ("F5", "Figure 5 / §4.5", "implication via random bit"),
        ("F6", "Figure 6 / §4.6", "fork via oracle"),
        ("F7", "Figure 7 / §4.10", "fair merge via tagging"),
        ("E1–E6", "§4 catalog", "CHAOS … random number"),
        ("T2/T4/T56", "§5–§7", "composition, fixpoint, elimination"),
        ("S33/S84", "§3.3/§8.4", "solver, induction"),
    ]
    print(render_table(["id", "paper artifact", "what"], rows))
    print("\nRegenerate: pytest benchmarks/ --benchmark-only -s")
    return 0


def cmd_dfm() -> int:
    from repro.channels import Channel
    from repro.core import Description, combine, solve
    from repro.functions import chan, even_of, odd_of
    from repro.report import render_solver_result, render_verdict
    from repro.traces import Trace

    b = Channel("b", alphabet={0, 2})
    c = Channel("c", alphabet={1, 3})
    d = Channel("d", alphabet={0, 1, 2, 3})
    dfm = combine([
        Description(even_of(chan(d)), chan(b)),
        Description(odd_of(chan(d)), chan(c)),
    ], name="dfm")
    for t in [
        Trace.from_pairs([(b, 0), (d, 0)]),
        Trace.from_pairs([(d, 0)]),
    ]:
        print(render_verdict(dfm.check(t)))
        print()
    print(render_solver_result(solve(dfm, [b, c, d], max_depth=4)))
    return 0


def cmd_anomaly() -> int:
    from repro.anomaly import analyse

    analysis = analyse()
    print("equation solutions:",
          [list(s) for s in analysis.equation_solutions])
    print("smooth solutions:  ",
          [list(s) for s in analysis.smooth_solutions])
    print("operational:       ",
          sorted(list(s) for s in analysis.operational_outputs))
    print("anomaly resolved:  ", analysis.resolved)
    return 0 if analysis.resolved else 1


def cmd_fig3() -> int:
    from repro.channels import Channel, Event
    from repro.core import Description, combine
    from repro.functions import (
        affine_of,
        chan,
        even_of,
        odd_of,
        prepend_of,
        scale_of,
    )
    from repro.seq import misra_x, misra_y, misra_z
    from repro.traces import Trace

    d = Channel("d")
    desc = combine([
        Description(even_of(chan(d)),
                    prepend_of(0, scale_of(2, chan(d)))),
        Description(odd_of(chan(d)), affine_of(2, 1, chan(d))),
    ], name="fig3")

    def d_trace(seq):
        def gen():
            i = 0
            while True:
                try:
                    yield Event(d, seq.item(i))
                except IndexError:
                    return
                i += 1

        return Trace.lazy(gen())

    for name, seq in [("x", misra_x()), ("y", misra_y()),
                      ("z", misra_z())]:
        verdict = desc.check(d_trace(seq), depth=40)
        print(f"{name}: solves={verdict.is_solution} "
              f"smooth={verdict.is_smooth}")
    return 0


def cmd_zoo() -> int:
    from repro.processes import chaos, random_bit
    from repro.traces import Trace

    p = chaos.make()
    print(f"CHAOS traces to depth 2: {len(p.traces_upto(2))}")
    p = random_bit.make()
    print(f"RandomBit traces: "
          f"{sorted(repr(t) for t in p.traces_upto(2))}")
    print("(run examples/process_zoo.py for the full tour)")
    return 0


def _examples_dir() -> pathlib.Path:
    """The repo's ``examples/`` directory (checkout layout)."""
    return pathlib.Path(__file__).resolve().parents[2] / "examples"


def _make_cache(enabled: bool, cache_dir: str | None,
                fsync: bool = False):
    """A :class:`repro.cache.CacheStore`, or ``None`` when disabled.

    Caching is opt-in on every command (``--cache``): a demo runner
    should not silently grow a dot-directory in the working tree.
    """
    if not enabled:
        return None
    from repro.cache import DEFAULT_CACHE_DIR, CacheStore

    return CacheStore(cache_dir or DEFAULT_CACHE_DIR, fsync=fsync)


def cmd_trace(example: str, out: str | None, jsonl: str | None,
              seed: int, max_steps: int, use_cache: bool = False,
              cache_dir: str | None = None) -> int:
    """Record an instrumented run and export its Perfetto timeline.

    ``alternating_bit`` exercises all three instrumented layers: a
    fault-injected supervised protocol run (scheduler / runtime /
    fault spans) followed by a solver check of the delivered trace
    against the service specification (solver spans).  ``dfm`` records
    the §2.2 solver exploration plus an operational dfm network run.
    """
    from repro.obs import JsonlSink, RingBufferSink, Tracer, \
        write_chrome_trace
    from repro.report import render_metrics

    ring = RingBufferSink(capacity=500_000)
    sinks = [ring]
    if jsonl:
        sinks.append(JsonlSink(jsonl))
    tracer = Tracer(sinks)
    store = _make_cache(use_cache, cache_dir)

    if example == "alternating_bit":
        examples = _examples_dir()
        if not examples.is_dir():
            print(f"examples directory not found at {examples}",
                  file=sys.stderr)
            return 1
        sys.path.insert(0, str(examples))
        from alternating_bit import (
            FAULTY_CHANNELS,
            MESSAGES,
            OUT,
            direct_agents,
            fair_loss_plan,
            service_spec,
        )
        from repro.core import SmoothSolutionSolver
        from repro.faults import run_conformance

        spec = service_spec(MESSAGES).combined()
        report = run_conformance(
            "abp-direct", direct_agents(MESSAGES), FAULTY_CHANNELS,
            spec, {"fair-loss": lambda: fair_loss_plan(seed=seed)},
            seeds=[seed], observe={OUT}, max_steps=max_steps,
            watchdog_limit=600, tracer=tracer, cache=store,
        )
        case = report.cases[0]
        print(f"{case}  [{case.elapsed_s * 1e3:.1f}ms]")
        solver = SmoothSolutionSolver.over_channels(
            spec, [OUT], tracer=tracer, cache=store)
        result = solver.explore(len(MESSAGES) + 1)
        print(f"solver: {result.nodes_explored} nodes, "
              f"{len(result.finite_solutions)} finite solution(s)")
        print(render_metrics(case.metrics, title="run metrics"))
    elif example == "dfm":
        from repro.channels import Channel
        from repro.core import Description, SmoothSolutionSolver, \
            combine
        from repro.functions import chan, even_of, odd_of
        from repro.kahn.agents import dfm_agent, source_agent
        from repro.kahn.scheduler import RandomOracle, run_network

        b = Channel("b", alphabet={0, 2})
        c = Channel("c", alphabet={1, 3})
        d = Channel("d", alphabet={0, 1, 2, 3})
        dfm = combine([
            Description(even_of(chan(d)), chan(b)),
            Description(odd_of(chan(d)), chan(c)),
        ], name="dfm")
        solver = SmoothSolutionSolver.over_channels(
            dfm, [b, c, d], tracer=tracer, cache=store)
        result = solver.explore(4)
        print(f"solver: {result.nodes_explored} nodes, "
              f"{len(result.finite_solutions)} finite solution(s)")
        run = run_network(
            {"eb": source_agent(b, [0, 2]),
             "dfm": dfm_agent(b, c, d)},
            [b, c, d], RandomOracle(seed), max_steps=max_steps,
            tracer=tracer,
        )
        print(f"network: {run.steps} steps, "
              f"quiescent={run.quiescent}")
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown trace example {example!r}", file=sys.stderr)
        return 1

    tracer.close()
    out = out or f"{example}.perfetto.json"
    n = write_chrome_trace(ring.records, out,
                           process_name=f"repro:{example}")
    print(f"wrote {n} trace events to {out}"
          + (f" (+ JSONL log at {jsonl})" if jsonl else ""))
    print("open in https://ui.perfetto.dev (or chrome://tracing)")
    if store is not None:
        counts = store.counters()
        print("cache: " + ", ".join(f"{k} {v}"
                                    for k, v in counts.items()))
    return 0


# -- flight-recorder scenarios ----------------------------------------------
#
# A scenario bundles everything needed to *rebuild* a recorded run
# from its schedule's meta alone: the agents, the channels, the spec
# and fresh identically-seeded plan factories.  ``record`` stamps the
# scenario name into ``meta["scenario"]``; ``replay``/``shrink`` read
# it back, so a schedule JSON is a self-contained repro.


def _import_example(name: str):
    examples = _examples_dir()
    if not examples.is_dir():
        raise FileNotFoundError(
            f"examples directory not found at {examples}")
    if str(examples) not in sys.path:
        sys.path.insert(0, str(examples))
    import importlib
    return importlib.import_module(name)


def _abp_plans(seed: int) -> dict:
    abp = _import_example("alternating_bit")
    return {
        "no-faults": abp.no_faults,
        "fair-loss": lambda: abp.fair_loss_plan(seed=seed),
        "heavy-loss": lambda: abp.fair_loss_plan(seed=seed, p=0.5),
        "loss+dup": lambda: abp.loss_and_duplication_plan(seed=seed),
        "black-hole": abp.unfair_loss_plan,
    }


def _dfm_network():
    from repro.channels import Channel
    from repro.kahn.agents import dfm_agent, source_agent

    b = Channel("b", alphabet={0, 2})
    c = Channel("c", alphabet={1, 3})
    d = Channel("d", alphabet={0, 1, 2, 3})

    def make_agents():
        return {"eb": source_agent(b, [0, 2, 0, 2]),
                "dfm": dfm_agent(b, c, d)}

    return make_agents, [b, c, d]


def _dfm_plan(plan_name: str, seed: int):
    if plan_name == "none":
        return None
    if plan_name == "drop":
        from repro.faults import DropFault, FaultPlan
        make_agents, channels = _dfm_network()
        b = channels[0]
        return FaultPlan(
            {b: DropFault(seed=seed, p=0.4,
                          max_consecutive_drops=2)},
            name="drop")
    raise KeyError(f"unknown dfm plan {plan_name!r} "
                   "(choices: none, drop)")


def cmd_record(scenario: str, plan_name: str | None, seed: int,
               max_steps: int, out: str | None) -> int:
    """Flight-record one scenario run; write the schedule JSON."""
    out = out or f"{scenario}.schedule.json"
    if scenario == "alternating_bit":
        abp = _import_example("alternating_bit")
        from repro.faults import run_conformance

        plan_name = plan_name or "fair-loss"
        plans = _abp_plans(seed)
        if plan_name not in plans:
            print(f"unknown plan {plan_name!r} "
                  f"(choices: {', '.join(sorted(plans))})",
                  file=sys.stderr)
            return 2
        limit = None if plan_name == "black-hole" else 50
        report = run_conformance(
            "abp-direct",
            abp.direct_agents(abp.MESSAGES, retransmit_limit=limit),
            abp.FAULTY_CHANNELS,
            abp.service_spec(abp.MESSAGES).combined(),
            {plan_name: plans[plan_name]}, seeds=[seed],
            observe={abp.OUT}, max_steps=max_steps,
            watchdog_limit=600,
        )
        case = report.cases[0]
        schedule = case.schedule
        schedule.meta["scenario"] = scenario
        schedule.meta["retransmit_limit"] = limit
        print(case)
    elif scenario == "dfm":
        from repro.kahn.scheduler import RandomOracle, run_network

        plan_name = plan_name or "none"
        make_agents, channels = _dfm_network()
        result = run_network(
            make_agents(), channels, RandomOracle(seed),
            max_steps=max_steps,
            fault_plan=_dfm_plan(plan_name, seed), record=True,
        )
        schedule = result.schedule
        schedule.meta.update(scenario=scenario, plan=plan_name,
                             seed=seed)
        print(f"dfm × seed {seed} × plan {plan_name}: "
              f"quiescent={result.quiescent} in {result.steps} steps")
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown scenario {scenario!r}", file=sys.stderr)
        return 2
    schedule.save(out)
    print(f"recorded {len(schedule)} decision(s) "
          f"(digest {schedule.meta['digest'][:16]}) to {out}")
    return 0


def _replay_schedule(schedule, lenient: bool, tracer=None):
    """Re-run a schedule per its ``meta['scenario']``.

    Returns ``(outcome, result, recorded_outcome)`` where outcome is
    None for scenarios without a conformance verdict.  ``tracer``
    instruments the replayed run — ``diff --explain`` and ``why``
    rebuild the happens-before graph from its event stream.
    """
    scenario = schedule.meta.get("scenario")
    fallback = None
    if lenient:
        from repro.kahn.scheduler import FirstOracle
        fallback = FirstOracle()
    if scenario == "alternating_bit":
        abp = _import_example("alternating_bit")
        from repro.faults import replay_conformance_case

        case = replay_conformance_case(
            schedule,
            abp.direct_agents(
                abp.MESSAGES,
                retransmit_limit=schedule.meta.get(
                    "retransmit_limit", 50)),
            abp.FAULTY_CHANNELS,
            abp.service_spec(abp.MESSAGES).combined(),
            _abp_plans(int(schedule.meta.get("seed", 11))),
            observe={abp.OUT}, tracer=tracer, fallback=fallback,
        )
        return case.outcome, case.result, schedule.meta.get("outcome")
    if scenario == "dfm":
        from repro.obs.replay import replay_network

        make_agents, channels = _dfm_network()
        plan = _dfm_plan(schedule.meta.get("plan", "none"),
                         int(schedule.meta.get("seed", 11)))
        report = replay_network(
            schedule, make_agents(), channels, fault_plan=plan,
            tracer=tracer, fallback=fallback,
        )
        return None, report.result, None
    raise KeyError(
        f"schedule has no replayable scenario "
        f"(meta['scenario'] = {scenario!r})")


def _replay_witness_schedule(schedule) -> int:
    """Replay a solver witness path (``kind == "solver-path"``).

    Re-walks the recorded path through the scenario's §3.3 tree,
    checking each step's admissibility, then re-evaluates the limit
    condition; exit 0 iff the walk succeeds and the limit verdict
    matches the recorded one."""
    from repro.core import SmoothSolutionSolver
    from repro.obs.replay import ReplayDivergence

    scenario = (schedule.meta.get("scenario")
                or schedule.meta.get("description"))
    try:
        spec, channels, _ = _solve_spec(scenario, None)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    solver = SmoothSolutionSolver.over_channels(spec, channels)
    try:
        trace = solver.replay_witness(schedule)
    except ReplayDivergence as exc:
        print(f"witness replay DIVERGED: {exc}")
        return 1
    limit = spec.limit_holds(trace, solver.limit_depth)
    recorded = schedule.meta.get("limit_holds")
    print(f"witness path re-walked: {trace}")
    print(f"limit condition: {limit} (recorded: {recorded})")
    ok = recorded is None or bool(recorded) == limit
    print("replay " + ("MATCHES the recording" if ok
                       else "DIVERGED from the recording"))
    return 0 if ok else 1


def _replay_bundle(path: pathlib.Path) -> int:
    """Replay a fleet quarantine bundle; exit 0 iff the recorded
    infrastructure failure reproduces under the recorded policy."""
    from repro.par import replay_quarantined_cell

    case, recorded, reproduced = replay_quarantined_cell(path)
    print(f"quarantined cell: {case.plan} × seed {case.seed}")
    print(f"recorded failure: {recorded.get('failure')} "
          f"({recorded.get('outcome')})")
    print(f"replayed outcome: {case.outcome} "
          f"after {case.attempts} attempt(s)")
    if case.detail:
        print(f"  {case.detail.splitlines()[0]}")
    print("replay " + ("REPRODUCES the recorded failure" if reproduced
                       else "DID NOT reproduce the recorded failure "
                            "(infrastructure issue gone?)"))
    return 0 if reproduced else 1


def cmd_replay(path: str, lenient: bool) -> int:
    """Replay a schedule JSON (exit 0 iff the run digest matches) or
    a quarantine bundle (exit 0 iff the failure reproduces)."""
    from repro.obs.recorder import Schedule
    from repro.report import render_schedule

    target = pathlib.Path(path)
    probe = target / "cell.json" if target.is_dir() else target
    try:
        import json

        head = json.loads(probe.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        head = None
    if isinstance(head, dict) and head.get("kind") == \
            "quarantined-cell":
        return _replay_bundle(probe)

    schedule = Schedule.load(path)
    print(render_schedule(schedule, max_decisions=4))
    if schedule.meta.get("kind") == "solver-path":
        return _replay_witness_schedule(schedule)
    outcome, result, recorded_outcome = _replay_schedule(
        schedule, lenient)
    expected = schedule.meta.get("digest", "")
    actual = result.digest()
    ok = actual == expected
    if outcome is not None:
        print(f"outcome: {outcome} "
              f"(recorded: {recorded_outcome})")
        ok = ok and outcome == recorded_outcome
    print(f"digest:  {actual[:16]} "
          f"(recorded: {expected[:16] or '<missing>'})")
    print("replay " + ("MATCHES the recording"
                       if ok else "DIVERGED from the recording"))
    return 0 if ok else 1


def _traced_replay_records(schedule) -> list:
    """Replay a schedule leniently under a fresh tracer; return the
    recorded event stream (the input to the happens-before graph)."""
    from repro.obs import RingBufferSink, Tracer

    ring = RingBufferSink(capacity=500_000)
    _replay_schedule(schedule, lenient=True,
                     tracer=Tracer([ring]))
    return list(ring.records)


def cmd_diff(path_a: str, path_b: str, explain: bool = False) -> int:
    """First-divergence report for two schedules and their replays.

    ``--explain`` additionally replays both schedules under a tracer,
    rebuilds their happens-before graphs, and walks back from the
    first divergent observable event to the earliest decision node
    that explains it (see :mod:`repro.obs.causality`).
    """
    from repro.obs.diff import diff_runs, diff_schedules
    from repro.obs.recorder import Schedule
    from repro.report import render_run_diff, render_schedule_diff

    a, b = Schedule.load(path_a), Schedule.load(path_b)
    sdiff = diff_schedules(a, b)
    print(render_schedule_diff(sdiff))
    try:
        _, result_a, _ = _replay_schedule(a, lenient=True)
        _, result_b, _ = _replay_schedule(b, lenient=True)
    except KeyError as exc:
        print(f"(replay diff skipped: {exc})")
        return 0 if sdiff.identical else 1
    rdiff = diff_runs(result_a, result_b)
    print(render_run_diff(rdiff))
    if explain:
        from repro.obs import explain_records

        expl = explain_records(_traced_replay_records(a),
                               _traced_replay_records(b))
        print()
        print(expl.describe())
    return 0 if sdiff.identical and rdiff.identical else 1


def cmd_why(path_a: str, path_b: str | None, dot_out: str | None,
            json_out: str | None, trace_out: str | None) -> int:
    """Causal 'why' for recorded runs.

    With one schedule: rebuild its happens-before graph and print the
    summary (size, digest, deliveries, critical path).  With two:
    print the divergence explanation — the minimal causal chain from
    the first divergent decision to the first divergent delivery.
    ``--dot`` / ``--json`` export the (first) graph; ``--trace``
    writes a Perfetto timeline with causal flow arrows layered on.
    """
    from repro.obs import CausalGraph, explain_divergence
    from repro.obs.recorder import Schedule
    from repro.report import render_causal_summary

    schedule_a = Schedule.load(path_a)
    try:
        records_a = _traced_replay_records(schedule_a)
    except KeyError as exc:
        print(f"cannot rebuild the run: {exc}", file=sys.stderr)
        return 2
    graph_a = CausalGraph.from_records(records_a)
    print(render_causal_summary(graph_a))
    exit_code = 0
    if path_b is not None:
        records_b = _traced_replay_records(Schedule.load(path_b))
        graph_b = CausalGraph.from_records(records_b)
        expl = explain_divergence(graph_a, graph_b)
        print()
        print(expl.describe())
        exit_code = 0 if expl.identical else 1
    if dot_out:
        with open(dot_out, "w", encoding="utf-8") as fh:
            fh.write(graph_a.to_dot(
                title=schedule_a.meta.get("scenario", "causal")))
        print(f"wrote causal graph DOT to {dot_out}")
    if json_out:
        import json

        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(graph_a.to_json(), fh, indent=2,
                      sort_keys=True)
        print(f"wrote causal graph JSON to {json_out}")
    if trace_out:
        from repro.obs import write_chrome_trace

        n = write_chrome_trace(
            records_a, trace_out,
            process_name=f"repro-why:{path_a}",
            flows=graph_a.flow_arrows())
        print(f"wrote {n} trace events (with flow arrows) "
              f"to {trace_out}")
    return exit_code


def cmd_shrink(path: str, out: str | None) -> int:
    """ddmin a failing schedule; write the minimal one."""
    from repro.obs.diff import shrink_schedule
    from repro.obs.recorder import Schedule

    schedule = Schedule.load(path)
    recorded_outcome = schedule.meta.get("outcome")
    recorded_digest = schedule.meta.get("digest")

    def verdict_preserved(candidate) -> bool:
        try:
            outcome, result, _ = _replay_schedule(candidate,
                                                  lenient=True)
        except Exception:
            return False
        if recorded_outcome is not None:
            return outcome == recorded_outcome
        return result.digest() == recorded_digest

    small = shrink_schedule(schedule, verdict_preserved)
    # the shrunk schedule describes a *different* (minimal) run that
    # reaches the same verdict: stamp that run's own digest so
    # ``replay --lenient`` of the minimal file verifies cleanly
    outcome, result, _ = _replay_schedule(small, lenient=True)
    small.meta["original_digest"] = recorded_digest
    small.meta["digest"] = result.digest()
    if outcome is not None:
        small.meta["outcome"] = outcome
    out = out or str(pathlib.Path(path).with_suffix(".min.json"))
    small.save(out)
    print(f"shrunk {len(schedule)} -> {len(small)} decision(s); "
          f"verdict {recorded_outcome or 'digest match'} preserved")
    print(f"wrote {out}")
    return 0


def _build_fleet_policy(cell_timeout: float | None,
                        retries: int | None,
                        quarantine_dir: str | None,
                        chaos: str | None, chaos_seed: int):
    """Shared ``grid``/``top`` fleet-option parsing.

    Returns a :class:`~repro.par.FleetPolicy` (or ``None`` when no
    fleet option was given); raises ``ValueError`` on a bad chaos
    spec so callers can turn it into exit status 2.
    """
    from repro import par

    if (cell_timeout is None and retries is None
            and quarantine_dir is None and chaos is None):
        return None
    chaos_spec = None
    if chaos is not None:
        chaos_spec = par.ChaosSpec.parse(chaos, seed=chaos_seed)
    return par.FleetPolicy(
        cell_timeout_s=cell_timeout,
        retries=retries if retries is not None else 2,
        quarantine_dir=quarantine_dir,
        chaos=chaos_spec,
    )


def _write_grid_artifacts(report, tracer, ring,
                          html_report: str | None,
                          metrics_out: str | None,
                          metrics_json: str | None,
                          trace_out: str | None,
                          scenario: str,
                          status=None) -> None:
    """Write the flight-deck artifacts a grid run was asked for."""
    from repro.obs.telemetry import grid_metrics_summary

    meta = {"scenario": scenario, "digest": report.digest()}
    if getattr(report, "degraded", False):
        meta["surviving_digest"] = report.surviving_digest()
    summary = grid_metrics_summary(report)
    if trace_out and ring is not None:
        from repro.obs import (
            CausalGraph,
            split_cells,
            write_chrome_trace,
        )

        # per-cell happens-before graphs supply the flow arrows; the
        # @plan×seed suffix stripped by split_cells is restored so the
        # arrows anchor to the merged timeline's suffixed tracks
        records = list(ring.records)
        flows = []
        for cell, cell_records in sorted(split_cells(records).items()):
            if not cell:
                continue
            suffix = f"@{cell}"
            for arrow in CausalGraph.from_records(
                    cell_records).flow_arrows():
                arrow["src_track"] += suffix
                arrow["dst_track"] += suffix
                flows.append(arrow)
        n = write_chrome_trace(records, trace_out,
                               process_name=f"repro-grid:{scenario}",
                               flows=flows)
        print(f"wrote {n} trace events ({len(flows)} flow arrows) "
              f"to {trace_out}")
    if metrics_out:
        from repro.obs import write_prometheus_text

        write_prometheus_text(summary, metrics_out)
        print(f"wrote Prometheus metrics to {metrics_out}")
    if metrics_json:
        from repro.obs import write_json_exposition

        write_json_exposition(summary, metrics_json, meta=meta)
        print(f"wrote JSON metrics to {metrics_json}")
    if html_report:
        from repro.obs.htmlreport import write_html_report

        snap = status.snapshot() if status is not None else None
        write_html_report(report, html_report,
                          metrics_summary=summary, status=snap,
                          meta=meta)
        print(f"wrote HTML flight-deck report to {html_report}")


def cmd_grid(scenario: str, workers: int, seeds: int,
             plan_names: list[str] | None, max_steps: int | None,
             no_record: bool, use_cache: bool = False,
             cache_dir: str | None = None,
             cache_stats: bool = False,
             cell_timeout: float | None = None,
             retries: int | None = None,
             quarantine_dir: str | None = None,
             chaos: str | None = None,
             chaos_seed: int = 0,
             html_report: str | None = None,
             metrics_out: str | None = None,
             metrics_json: str | None = None,
             trace_out: str | None = None) -> int:
    """Run a registered scenario's conformance grid, maybe in parallel.

    The scenario comes from the :mod:`repro.par` registry (the same
    registry the worker processes rebuild cells from), so the grid is
    parallelizable by construction.  Exit status is 0 iff every cell
    that *ran* conforms — livelocks and exhausted budgets count as
    failures here because the built-in scenarios all use fair fault
    plans; an empty grid (``--seeds 0``) conforms vacuously, and
    cells lost to the machinery (timeout / crash / quarantine under
    ``--chaos``) degrade the report without failing the exit status.

    With ``--cache``, cells already in the persistent store are served
    from disk instead of re-run — a warm rerun of the same grid prints
    the same report digest with every cell marked cached.

    ``--html-report`` / ``--metrics-out`` / ``--metrics-json`` /
    ``--trace`` write the flight-deck artifacts; asking for any of
    them attaches a tracer, so cells stream their telemetry live and
    the artifacts carry the merged per-cell metrics.
    """
    from repro import par
    from repro.report import render_conformance_report

    try:
        sc = par.get_scenario(scenario)
    except KeyError:
        print(f"unknown scenario {scenario!r} "
              f"(choices: {', '.join(par.scenario_names())})",
              file=sys.stderr)
        return 2
    plans = None
    if plan_names:
        missing = [p for p in plan_names if p not in sc.plans]
        if missing:
            print(f"unknown plan(s) {', '.join(missing)} "
                  f"(choices: {', '.join(sorted(sc.plans))})",
                  file=sys.stderr)
            return 2
        plans = {name: sc.plans[name] for name in plan_names}
    try:
        fleet = _build_fleet_policy(cell_timeout, retries,
                                    quarantine_dir, chaos, chaos_seed)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    artifacts = bool(html_report or metrics_out or metrics_json
                     or trace_out)
    tracer = None
    ring = None
    status = None
    if artifacts:
        from repro.obs import FleetStatus, RingBufferSink, Tracer

        ring = RingBufferSink(capacity=500_000)
        tracer = Tracer([ring])
        status = FleetStatus()
    store = _make_cache(use_cache, cache_dir)
    report = par.run_conformance_parallel(
        scenario, seeds=range(seeds), plans=plans,
        max_steps=max_steps, workers=workers,
        record=not no_record, cache=store, fleet=fleet,
        tracer=tracer, status=status,
    )
    print(render_conformance_report(report))
    cells = len(report.cases)
    line = (f"{cells} cells × workers={workers}: "
            f"{report.wall_clock_s:.3f}s wall")
    if store is not None:
        line += f"  ({len(report.cached_cases)} cached)"
    print(line)
    print(f"report digest {report.digest()}")
    if report.degraded:
        print(f"surviving digest {report.surviving_digest()}")
    if artifacts:
        _write_grid_artifacts(report, tracer, ring, html_report,
                              metrics_out, metrics_json, trace_out,
                              scenario, status=status)
    if store is not None and cache_stats:
        import json

        print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0 if not report.genuine_failures else 1


def cmd_top(scenario: str, workers: int, seeds: int,
            plan_names: list[str] | None, max_steps: int | None,
            interval: float, use_cache: bool, cache_dir: str | None,
            cell_timeout: float | None, retries: int | None,
            quarantine_dir: str | None, chaos: str | None,
            chaos_seed: int, html_report: str | None) -> int:
    """Run a grid with the live flight-deck scoreboard.

    The grid runs in a worker thread with a tracer attached (so cells
    stream records and metric deltas back as they execute) and a
    shared :class:`~repro.obs.telemetry.FleetStatus`; the main thread
    refreshes the scoreboard every ``interval`` seconds — redrawn in
    place on a TTY, one plain line per refresh otherwise (logs, CI) —
    until the grid settles, then prints the final report and digest.
    """
    import threading

    from repro import par
    from repro.obs import FleetStatus, RingBufferSink, Tracer
    from repro.report import (
        render_conformance_report,
        render_fleet_line,
        render_fleet_status,
    )

    try:
        sc = par.get_scenario(scenario)
    except KeyError:
        print(f"unknown scenario {scenario!r} "
              f"(choices: {', '.join(par.scenario_names())})",
              file=sys.stderr)
        return 2
    plans = None
    if plan_names:
        missing = [p for p in plan_names if p not in sc.plans]
        if missing:
            print(f"unknown plan(s) {', '.join(missing)} "
                  f"(choices: {', '.join(sorted(sc.plans))})",
                  file=sys.stderr)
            return 2
        plans = {name: sc.plans[name] for name in plan_names}
    try:
        fleet = _build_fleet_policy(cell_timeout, retries,
                                    quarantine_dir, chaos, chaos_seed)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    store = _make_cache(use_cache, cache_dir)
    status = FleetStatus()
    ring = RingBufferSink(capacity=500_000)
    tracer = Tracer([ring])
    box: dict = {}

    def run_grid() -> None:
        try:
            box["report"] = par.run_conformance_parallel(
                scenario, seeds=range(seeds), plans=plans,
                max_steps=max_steps, workers=workers, cache=store,
                fleet=fleet, tracer=tracer, status=status)
        except BaseException as exc:  # surface in the main thread
            box["error"] = exc

    thread = threading.Thread(target=run_grid, name="repro-top-grid",
                              daemon=True)
    thread.start()
    is_tty = sys.stdout.isatty()
    frame_lines = 0
    try:
        while True:
            snap = status.snapshot()
            if is_tty:
                text = render_fleet_status(snap)
                if frame_lines:
                    # redraw in place: cursor up over the previous
                    # frame
                    sys.stdout.write(f"\x1b[{frame_lines}F\x1b[J")
                print(text, flush=True)
                frame_lines = text.count("\n") + 1
            else:
                # piped/CI output: one plain line per refresh, no
                # cursor control
                print(render_fleet_line(snap), flush=True)
            if not thread.is_alive():
                break
            thread.join(timeout=max(0.05, interval))
    except KeyboardInterrupt:
        print("\ninterrupted — abandoning the grid", file=sys.stderr)
        return 130
    thread.join()
    if "error" in box:
        print(f"grid failed: {box['error']}", file=sys.stderr)
        return 1
    if not is_tty:
        # the loop's last refresh may predate the grid finishing;
        # close the log with one authoritative line
        print(render_fleet_line(status.snapshot()), flush=True)
    report = box["report"]
    print()
    print(render_conformance_report(report))
    print(f"report digest {report.digest()}")
    if report.degraded:
        print(f"surviving digest {report.surviving_digest()}")
    if html_report:
        _write_grid_artifacts(report, tracer, ring, html_report,
                              None, None, None, scenario,
                              status=status)
    return 0 if not report.genuine_failures else 1


def _git_sha() -> str:
    """Best-effort commit SHA for trajectory entries."""
    import os
    import subprocess

    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, timeout=10,
            cwd=pathlib.Path(__file__).resolve().parents[2])
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def cmd_bench_append(core: str, history: str,
                     sha: str | None) -> int:
    """Append a ``BENCH_core.json`` snapshot's tracked rows to the
    trajectory."""
    from repro.obs.bench import append_history, load_core

    try:
        payload = load_core(core)
    except (OSError, ValueError) as exc:
        print(f"cannot load {core!r}: {exc}", file=sys.stderr)
        return 2
    entry = append_history(payload, history,
                           sha=sha or _git_sha())
    rows = entry["rows"]
    print(f"appended {len(rows)} tracked row(s) for "
          f"{entry['sha'][:12]} to {history}")
    for key in sorted(rows):
        print(f"  {key} = {rows[key]:g}")
    if not rows:
        print("  (no tracked rows found — did the bench session "
              "include the tracked experiments?)", file=sys.stderr)
        return 1
    return 0


def cmd_bench_check(core: str, history: str, strict: bool,
                    window: int) -> int:
    """Gate a fresh snapshot against the committed trajectory."""
    from repro.obs.bench import check, load_core, load_history

    try:
        payload = load_core(core)
    except (OSError, ValueError) as exc:
        print(f"cannot load {core!r}: {exc}", file=sys.stderr)
        return 2
    result = check(payload, load_history(history), strict=strict,
                   window=window)
    print(result.describe())
    return 0 if result.ok else 1


#: Scenarios the ``solve`` command can build a specification for.
SOLVE_SCENARIOS = ("dfm", "alternating_bit")


def _solve_spec(scenario: str, depth: int | None):
    """Build a scenario's specification for the solver commands;
    returns ``(spec, channels, depth)``."""
    if scenario == "dfm":
        from repro.channels import Channel
        from repro.core import Description, combine
        from repro.functions import chan, even_of, odd_of

        b = Channel("b", alphabet={0, 2})
        c = Channel("c", alphabet={1, 3})
        d = Channel("d", alphabet={0, 1, 2, 3})
        spec = combine([
            Description(even_of(chan(d)), chan(b)),
            Description(odd_of(chan(d)), chan(c)),
        ], name="dfm")
        return spec, [b, c, d], 4 if depth is None else depth
    if scenario == "alternating_bit":
        abp = _import_example("alternating_bit")
        spec = abp.service_spec(abp.MESSAGES).combined()
        depth = len(abp.MESSAGES) + 1 if depth is None else depth
        return spec, [abp.OUT], depth
    raise ValueError(f"unknown scenario {scenario!r}")


def cmd_solve(scenario: str, depth: int | None, max_nodes: int,
              budget_seconds: float | None, resume: str | None,
              checkpoint_out: str | None, use_cache: bool,
              cache_dir: str | None, fsync: bool = False,
              profile: bool = False,
              profile_json: str | None = None,
              profile_folded: str | None = None,
              engine: str = "auto",
              strategy: str = "bfs",
              heuristic: str = "rhs-distance",
              dedup: bool = False) -> int:
    """Run the §3.3 solver on a scenario's specification.

    A truncated exploration (node or wall-clock budget) exits 1 and —
    with ``--checkpoint-out`` — leaves a pure-JSON checkpoint behind;
    rerunning with ``--resume <ckpt.json>`` continues the Kleene
    chain from the parked nodes and, once nothing is left unvisited,
    the result digest equals the straight run's.

    ``--profile`` attaches a tracer and prints the hot-site table
    (where ``f``/``g`` evaluation time goes); ``--profile-json``
    writes the full per-site/per-level profile and
    ``--profile-folded`` the collapsed stacks speedscope imports.

    ``--engine`` picks the exploration path: ``auto`` (default)
    compiles the hot path when the spec is in the compilable fragment,
    ``reference`` forces the uncompiled loop (the before side of
    before/after profiles), ``compiled`` demands compilation and
    fails loudly when it is unavailable.  All three produce the same
    digests.

    ``--strategy`` picks the exploration order (``bfs``,
    ``best-first`` with ``--heuristic``, ``iterative-deepening``) and
    ``--dedup`` turns on duplicate-state reduction; every combination
    produces the same digests wherever the search completes.
    """
    from repro.core import SmoothSolutionSolver
    from repro.report import render_solver_result

    try:
        spec, channels, depth = _solve_spec(scenario, depth)
    except ValueError as exc:  # pragma: no cover - argparse restricts
        print(str(exc), file=sys.stderr)
        return 2
    store = _make_cache(use_cache, cache_dir, fsync=fsync)
    profiling = bool(profile or profile_json or profile_folded)
    tracer = None
    ring = None
    if profiling:
        from repro.obs import RingBufferSink, Tracer

        ring = RingBufferSink(capacity=500_000)
        tracer = Tracer([ring])
    compiled = {"auto": None, "reference": False,
                "compiled": True}[engine]
    solver = SmoothSolutionSolver.over_channels(
        spec, channels, cache=store, tracer=tracer,
        compiled=compiled, strategy=strategy, heuristic=heuristic,
        dedup=dedup)
    resume_from = None
    if resume:
        from repro.cache import SolverCheckpoint

        try:
            resume_from = SolverCheckpoint.load(resume)
        except (OSError, ValueError) as exc:
            print(f"cannot load checkpoint {resume!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"resuming from {resume}: "
              f"{len(resume_from.unvisited)} unvisited node(s), "
              f"{resume_from.nodes_explored} already explored")
    result = solver.explore(depth, max_nodes=max_nodes,
                            budget_seconds=budget_seconds,
                            resume_from=resume_from)
    print(render_solver_result(result))
    print(f"result digest {result.digest()}")
    if profiling:
        from repro.obs import write_collapsed
        from repro.obs.profile import hotspots
        from repro.report import render_hotspots

        print(render_hotspots(hotspots(result.profile)))
        if profile_json:
            import json

            with open(profile_json, "w", encoding="utf-8") as fh:
                json.dump(result.profile, fh, indent=2,
                          sort_keys=True)
            print(f"wrote solver profile JSON to {profile_json}")
        if profile_folded:
            n = write_collapsed(ring.records, profile_folded)
            print(f"wrote {n} collapsed stack(s) to {profile_folded}")
    if checkpoint_out:
        ckpt = result.checkpoint()
        ckpt.save(checkpoint_out, fsync=fsync)
        print(f"wrote checkpoint to {checkpoint_out} "
              f"({len(ckpt.unvisited)} unvisited)")
    if store is not None:
        counts = store.counters()
        print("cache: " + ", ".join(f"{k} {v}"
                                    for k, v in counts.items()))
    return 1 if result.truncated else 0


def cmd_query(scenario: str, exists: str | None, all_pred: str | None,
              depth: int | None, max_nodes: int,
              budget_seconds: float | None, use_cache: bool,
              cache_dir: str | None, engine: str = "auto",
              strategy: str = "best-first",
              heuristic: str = "rhs-distance", dedup: bool = False,
              witness_out: str | None = None) -> int:
    """Ask a question about a scenario's smooth solutions instead of
    enumerating them.

    ``--exists P`` asks whether some finite smooth solution within the
    depth bound satisfies ``P``; ``--all P`` whether they all do.  The
    search short-circuits at the first witness / counterexample — with
    the default best-first + rhs-distance exploration it typically
    answers under a node budget where ``solve`` truncates.  Exit
    codes: 0 the question holds, 1 it does not, 2 unresolved at this
    budget (or bad arguments).

    ``--witness-out`` writes the settling trace's replayable schedule
    JSON (the same format ``replay`` understands for solver paths).
    """
    from repro.core import SmoothSolutionSolver
    from repro.core.search import PREDICATE_GRAMMAR

    if (exists is None) == (all_pred is None):
        print("exactly one of --exists P / --all P is required\n"
              + PREDICATE_GRAMMAR, file=sys.stderr)
        return 2
    mode = "exists" if exists is not None else "all"
    text = exists if exists is not None else all_pred
    try:
        spec, channels, depth = _solve_spec(scenario, depth)
    except ValueError as exc:  # pragma: no cover - argparse restricts
        print(str(exc), file=sys.stderr)
        return 2
    store = _make_cache(use_cache, cache_dir)
    compiled = {"auto": None, "reference": False,
                "compiled": True}[engine]
    solver = SmoothSolutionSolver.over_channels(
        spec, channels, cache=store, compiled=compiled,
        strategy=strategy, heuristic=heuristic, dedup=dedup)
    try:
        answer = solver.query(text, depth, mode=mode,
                              max_nodes=max_nodes,
                              budget_seconds=budget_seconds)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(answer.describe())
    if answer.result is not None and answer.result.truncated:
        print(f"  stopped: {answer.result.truncation_reason}")
    if witness_out and answer.certificate is not None:
        answer.certificate.meta["scenario"] = scenario
        answer.certificate.save(witness_out)
        print(f"wrote witness schedule to {witness_out}")
    if not answer.resolved:
        return 2
    return 0 if answer.holds else 1


def _add_cache_options(sub_parser) -> None:
    """``--cache/--no-cache`` (default off) and ``--cache-dir``."""
    sub_parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction,
        default=False,
        help="consult/populate the persistent result store "
             "(default: off)")
    sub_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="store location (default .repro-cache/)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="demo runner for the PODC'89 reproduction",
    )
    sub = parser.add_subparsers(dest="command")
    for name in ("summary", "dfm", "anomaly", "fig3", "zoo"):
        sub.add_parser(name)

    p_trace = sub.add_parser(
        "trace", help="record an instrumented run, export Perfetto")
    p_trace.add_argument(
        "example", nargs="?", choices=TRACE_EXAMPLES,
        default="alternating_bit",
        help="which example run to record",
    )
    p_trace.add_argument(
        "-o", "--out", default=None,
        help="output path (default <example>.perfetto.json)",
    )
    p_trace.add_argument(
        "--jsonl", default=None,
        help="also write a JSONL event log here",
    )
    p_trace.add_argument("--seed", type=int, default=11,
                         help="oracle/fault seed")
    p_trace.add_argument("--max-steps", type=int, default=4000,
                         help="runtime step budget")
    _add_cache_options(p_trace)

    p_record = sub.add_parser(
        "record", help="flight-record a scenario into a schedule JSON")
    p_record.add_argument("scenario", choices=RECORD_SCENARIOS)
    p_record.add_argument(
        "--plan", default=None,
        help="fault plan name (alternating_bit: no-faults, fair-loss,"
             " heavy-loss, loss+dup, black-hole; dfm: none, drop)")
    p_record.add_argument("--seed", type=int, default=11)
    p_record.add_argument("--max-steps", type=int, default=4000)
    p_record.add_argument(
        "-o", "--out", default=None,
        help="schedule path (default <scenario>.schedule.json)")

    p_replay = sub.add_parser(
        "replay", help="re-execute a schedule, verify the digest")
    p_replay.add_argument("schedule", help="schedule JSON path")
    p_replay.add_argument(
        "--lenient", action="store_true",
        help="fall back to a deterministic oracle past divergences")

    p_diff = sub.add_parser(
        "diff", help="first divergence between two schedules")
    p_diff.add_argument("schedule_a")
    p_diff.add_argument("schedule_b")
    p_diff.add_argument(
        "--explain", action="store_true",
        help="walk the happens-before graphs back to the earliest "
             "decision explaining the divergence")

    p_why = sub.add_parser(
        "why", help="causal view of recorded runs: happens-before "
                    "graph summary, or (with two schedules) the "
                    "divergence explanation")
    p_why.add_argument("schedule_a", help="schedule JSON path")
    p_why.add_argument(
        "schedule_b", nargs="?", default=None,
        help="second schedule: explain why the runs diverge")
    p_why.add_argument(
        "--dot", default=None, metavar="PATH", dest="dot_out",
        help="write the (first) run's causal graph as Graphviz DOT")
    p_why.add_argument(
        "--json", default=None, metavar="PATH", dest="json_out",
        help="write the (first) run's causal graph as JSON "
             "(nodes, edges, deliveries, digest, critical path)")
    p_why.add_argument(
        "--trace", default=None, metavar="PATH", dest="trace_out",
        help="write a Perfetto timeline of the (first) run with "
             "causal flow arrows")

    p_shrink = sub.add_parser(
        "shrink", help="ddmin a failing schedule to a minimal one")
    p_shrink.add_argument("schedule", help="schedule JSON path")
    p_shrink.add_argument(
        "-o", "--out", default=None,
        help="output path (default <schedule>.min.json)")

    p_grid = sub.add_parser(
        "grid", help="run a scenario's conformance grid "
                     "(parallel with --workers N)")
    p_grid.add_argument(
        "scenario", nargs="?", default="dfm",
        help="registered scenario name (e.g. dfm, alternating_bit)")
    p_grid.add_argument(
        "--workers", type=int, default=1,
        help="worker processes to farm cells over (default 1: serial)")
    p_grid.add_argument(
        "--seeds", type=int, default=4,
        help="number of oracle seeds, 0..N-1 (default 4)")
    p_grid.add_argument(
        "--plan", action="append", default=None, dest="plan_names",
        metavar="PLAN",
        help="restrict to this fault plan (repeatable; "
             "default: all of the scenario's plans)")
    p_grid.add_argument(
        "--max-steps", type=int, default=None,
        help="override the scenario's runtime step budget")
    p_grid.add_argument(
        "--no-record", action="store_true",
        help="skip flight-recording each cell's schedule")
    p_grid.add_argument(
        "--cell-timeout", type=float, default=None, metavar="S",
        help="per-cell wall-clock deadline in seconds: a cell past "
             "it has its worker killed and the attempt retried")
    p_grid.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="re-attempts per failed cell before quarantine "
             "(default 2 when the fleet is engaged)")
    p_grid.add_argument(
        "--quarantine-dir", default=None, metavar="PATH",
        help="write poison cells' re-executable bundles here "
             "(replay with: python -m repro replay <bundle>)")
    p_grid.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="fleet self-test fault injection, e.g. kill-worker:0.3 "
             "(workers randomly SIGKILL themselves; deterministic "
             "per --chaos-seed)")
    p_grid.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the chaos kill pattern (default 0)")
    _add_cache_options(p_grid)
    p_grid.add_argument(
        "--cache-stats", action="store_true",
        help="print the store's stats JSON after the grid")
    p_grid.add_argument(
        "--html-report", default=None, metavar="PATH",
        help="write a self-contained HTML flight-deck report here")
    p_grid.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the merged metrics in Prometheus text format")
    p_grid.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the merged metrics as a JSON exposition")
    p_grid.add_argument(
        "--trace", default=None, metavar="PATH", dest="trace_out",
        help="write the merged fleet timeline as a Chrome-trace/"
             "Perfetto JSON")

    p_top = sub.add_parser(
        "top", help="run a grid with a live fleet scoreboard "
                    "(streamed telemetry, ETA, cache hit-rate)")
    p_top.add_argument(
        "scenario", nargs="?", default="dfm",
        help="registered scenario name (e.g. dfm, alternating_bit)")
    p_top.add_argument(
        "--workers", type=int, default=2,
        help="worker processes to farm cells over (default 2)")
    p_top.add_argument(
        "--seeds", type=int, default=4,
        help="number of oracle seeds, 0..N-1 (default 4)")
    p_top.add_argument(
        "--plan", action="append", default=None, dest="plan_names",
        metavar="PLAN",
        help="restrict to this fault plan (repeatable)")
    p_top.add_argument(
        "--max-steps", type=int, default=None,
        help="override the scenario's runtime step budget")
    p_top.add_argument(
        "--interval", type=float, default=0.5, metavar="S",
        help="scoreboard refresh period in seconds (default 0.5)")
    p_top.add_argument(
        "--cell-timeout", type=float, default=None, metavar="S",
        help="per-cell wall-clock deadline in seconds")
    p_top.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="re-attempts per failed cell before quarantine")
    p_top.add_argument(
        "--quarantine-dir", default=None, metavar="PATH",
        help="write poison cells' re-executable bundles here")
    p_top.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="fleet self-test fault injection, e.g. kill-worker:0.3")
    p_top.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the chaos kill pattern (default 0)")
    _add_cache_options(p_top)
    p_top.add_argument(
        "--html-report", default=None, metavar="PATH",
        help="also write the HTML flight-deck report here")

    p_bappend = sub.add_parser(
        "bench-append",
        help="append BENCH_core.json's tracked rows to the "
             "benchmark trajectory")
    p_bappend.add_argument(
        "--core", default="BENCH_core.json", metavar="PATH",
        help="bench snapshot to read (default BENCH_core.json)")
    p_bappend.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="PATH",
        help="trajectory JSONL to append to "
             "(default BENCH_history.jsonl)")
    p_bappend.add_argument(
        "--sha", default=None,
        help="commit SHA for the entry (default: $GITHUB_SHA, then "
             "git rev-parse HEAD)")

    p_bcheck = sub.add_parser(
        "bench-check",
        help="gate a fresh BENCH_core.json against the committed "
             "trajectory (exit 1 on regression)")
    p_bcheck.add_argument(
        "--core", default="BENCH_core.json", metavar="PATH",
        help="bench snapshot to check (default BENCH_core.json)")
    p_bcheck.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="PATH",
        help="trajectory to compare against "
             "(default BENCH_history.jsonl)")
    p_bcheck.add_argument(
        "--strict", action="store_true",
        help="also fail when a tracked row is missing from the "
             "snapshot")
    p_bcheck.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="history entries forming the baseline median "
             "(default 5)")

    p_solve = sub.add_parser(
        "solve", help="run the §3.3 solver on a scenario's spec "
                      "(resume with --resume <ckpt.json>)")
    p_solve.add_argument(
        "scenario", nargs="?", choices=SOLVE_SCENARIOS,
        default="dfm", help="which specification to explore")
    p_solve.add_argument(
        "--depth", type=int, default=None,
        help="depth bound (default: scenario-specific)")
    p_solve.add_argument(
        "--max-nodes", type=int, default=200_000,
        help="node budget per call (a resumed run gets a fresh one)")
    p_solve.add_argument(
        "--budget-seconds", type=float, default=None,
        help="wall-clock budget (wall-truncated runs are not cached)")
    p_solve.add_argument(
        "--resume", default=None, metavar="CKPT",
        help="checkpoint JSON to continue from")
    p_solve.add_argument(
        "--checkpoint-out", default=None, metavar="PATH",
        help="write the (possibly exhausted) checkpoint JSON here")
    p_solve.add_argument(
        "--fsync", action="store_true",
        help="fsync checkpoint and cache writes (survive a machine "
             "crash, not just a killed process)")
    p_solve.add_argument(
        "--profile", action="store_true",
        help="attach a tracer and print the solver hot-site table")
    p_solve.add_argument(
        "--profile-json", default=None, metavar="PATH",
        help="write the per-site/per-level solver profile as JSON")
    p_solve.add_argument(
        "--profile-folded", default=None, metavar="PATH",
        help="write collapsed stacks (speedscope/flamegraph.pl "
             "importable)")
    p_solve.add_argument(
        "--engine", choices=("auto", "reference", "compiled"),
        default="auto",
        help="exploration path: auto-detect (default), force the "
             "reference loop, or demand the compiled hot path — "
             "digests are identical either way")
    p_solve.add_argument(
        "--strategy",
        choices=("bfs", "best-first", "iterative-deepening"),
        default="bfs",
        help="exploration order (default bfs); every strategy finds "
             "the same solution set wherever it completes")
    p_solve.add_argument(
        "--heuristic",
        choices=("depth", "rhs-distance", "channel-balance"),
        default="rhs-distance",
        help="best-first ranking (ignored by the other strategies)")
    p_solve.add_argument(
        "--dedup", action="store_true",
        help="duplicate-state reduction: share g/limit/expansion "
             "work between traces with equal per-channel projections")
    _add_cache_options(p_solve)

    p_query = sub.add_parser(
        "query",
        help="ask whether a smooth solution matching a predicate "
             "exists (--exists P) or all match (--all P) — "
             "short-circuits instead of enumerating")
    p_query.add_argument(
        "scenario", nargs="?", choices=SOLVE_SCENARIOS,
        default="dfm", help="which specification to query")
    p_query.add_argument(
        "--exists", default=None, metavar="PRED",
        help="does some finite smooth solution satisfy PRED? "
             "(e.g. 'on:b >= 1, length <= 6')")
    p_query.add_argument(
        "--all", dest="all_pred", default=None, metavar="PRED",
        help="do all finite smooth solutions satisfy PRED?")
    p_query.add_argument(
        "--depth", type=int, default=None,
        help="depth bound (default: scenario-specific)")
    p_query.add_argument(
        "--max-nodes", type=int, default=200_000,
        help="node budget (exit 2 when it fires unresolved)")
    p_query.add_argument(
        "--budget-seconds", type=float, default=None,
        help="wall-clock budget")
    p_query.add_argument(
        "--engine", choices=("auto", "reference", "compiled"),
        default="auto",
        help="exploration path (see solve --engine)")
    p_query.add_argument(
        "--strategy",
        choices=("bfs", "best-first", "iterative-deepening"),
        default="best-first",
        help="exploration order (default best-first: pops "
             "solution-shaped nodes first, so queries settle early)")
    p_query.add_argument(
        "--heuristic",
        choices=("depth", "rhs-distance", "channel-balance"),
        default="rhs-distance",
        help="best-first ranking (default rhs-distance)")
    p_query.add_argument(
        "--dedup", action="store_true",
        help="duplicate-state reduction (see solve --dedup)")
    p_query.add_argument(
        "--witness-out", default=None, metavar="PATH",
        help="write the witness/counterexample schedule JSON here")
    _add_cache_options(p_query)

    args = parser.parse_args(argv)
    if args.command == "trace":
        return cmd_trace(args.example, args.out, args.jsonl,
                         args.seed, args.max_steps,
                         args.cache, args.cache_dir)
    if args.command == "record":
        return cmd_record(args.scenario, args.plan, args.seed,
                          args.max_steps, args.out)
    if args.command == "replay":
        return cmd_replay(args.schedule, args.lenient)
    if args.command == "diff":
        return cmd_diff(args.schedule_a, args.schedule_b,
                        explain=args.explain)
    if args.command == "why":
        return cmd_why(args.schedule_a, args.schedule_b,
                       args.dot_out, args.json_out, args.trace_out)
    if args.command == "shrink":
        return cmd_shrink(args.schedule, args.out)
    if args.command == "grid":
        return cmd_grid(args.scenario, args.workers, args.seeds,
                        args.plan_names, args.max_steps,
                        args.no_record, args.cache, args.cache_dir,
                        args.cache_stats, args.cell_timeout,
                        args.retries, args.quarantine_dir,
                        args.chaos, args.chaos_seed,
                        args.html_report, args.metrics_out,
                        args.metrics_json, args.trace_out)
    if args.command == "top":
        return cmd_top(args.scenario, args.workers, args.seeds,
                       args.plan_names, args.max_steps,
                       args.interval, args.cache, args.cache_dir,
                       args.cell_timeout, args.retries,
                       args.quarantine_dir, args.chaos,
                       args.chaos_seed, args.html_report)
    if args.command == "bench-append":
        return cmd_bench_append(args.core, args.history, args.sha)
    if args.command == "bench-check":
        return cmd_bench_check(args.core, args.history, args.strict,
                               args.window)
    if args.command == "solve":
        return cmd_solve(args.scenario, args.depth, args.max_nodes,
                         args.budget_seconds, args.resume,
                         args.checkpoint_out, args.cache,
                         args.cache_dir, args.fsync,
                         args.profile, args.profile_json,
                         args.profile_folded, args.engine,
                         args.strategy, args.heuristic, args.dedup)
    if args.command == "query":
        return cmd_query(args.scenario, args.exists, args.all_pred,
                         args.depth, args.max_nodes,
                         args.budget_seconds, args.cache,
                         args.cache_dir, args.engine, args.strategy,
                         args.heuristic, args.dedup,
                         args.witness_out)
    dispatch = {
        "summary": cmd_summary,
        "dfm": cmd_dfm,
        "anomaly": cmd_anomaly,
        "fig3": cmd_fig3,
        "zoo": cmd_zoo,
        None: cmd_summary,
    }
    return dispatch[args.command]()


if __name__ == "__main__":
    sys.exit(main())
