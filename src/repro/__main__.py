"""Command-line demo runner: ``python -m repro <command>``.

Commands:

* ``summary``        — library overview and experiment index;
* ``dfm``            — classify a few dfm histories and enumerate;
* ``anomaly``        — run the Brock–Ackermann analysis;
* ``fig3``           — the §2.3 x/y/z verdicts;
* ``zoo``            — one-line membership sample per catalog process;
* ``trace``          — record an instrumented run of an example and
  write a Chrome-trace-event timeline (open it in
  https://ui.perfetto.dev) plus, optionally, a JSONL event log.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

#: Examples the ``trace`` command knows how to record.
TRACE_EXAMPLES = ("alternating_bit", "dfm")


def cmd_summary() -> int:
    from repro import __version__
    from repro.report import render_table

    print(f"repro {__version__} — Equational Reasoning About "
          "Nondeterministic Processes (Misra, PODC 1989)")
    print()
    rows = [
        ("F1", "Figure 1 / §2.1", "two-copy loop, Kahn fixpoints"),
        ("F2", "Figure 2 / §2.2", "discriminated fair merge"),
        ("F3", "Figure 3 / §2.3", "doubling network, x/y/z"),
        ("F4", "Figure 4 / §2.4", "Brock–Ackermann anomaly"),
        ("F5", "Figure 5 / §4.5", "implication via random bit"),
        ("F6", "Figure 6 / §4.6", "fork via oracle"),
        ("F7", "Figure 7 / §4.10", "fair merge via tagging"),
        ("E1–E6", "§4 catalog", "CHAOS … random number"),
        ("T2/T4/T56", "§5–§7", "composition, fixpoint, elimination"),
        ("S33/S84", "§3.3/§8.4", "solver, induction"),
    ]
    print(render_table(["id", "paper artifact", "what"], rows))
    print("\nRegenerate: pytest benchmarks/ --benchmark-only -s")
    return 0


def cmd_dfm() -> int:
    from repro.channels import Channel
    from repro.core import Description, combine, solve
    from repro.functions import chan, even_of, odd_of
    from repro.report import render_solver_result, render_verdict
    from repro.traces import Trace

    b = Channel("b", alphabet={0, 2})
    c = Channel("c", alphabet={1, 3})
    d = Channel("d", alphabet={0, 1, 2, 3})
    dfm = combine([
        Description(even_of(chan(d)), chan(b)),
        Description(odd_of(chan(d)), chan(c)),
    ], name="dfm")
    for t in [
        Trace.from_pairs([(b, 0), (d, 0)]),
        Trace.from_pairs([(d, 0)]),
    ]:
        print(render_verdict(dfm.check(t)))
        print()
    print(render_solver_result(solve(dfm, [b, c, d], max_depth=4)))
    return 0


def cmd_anomaly() -> int:
    from repro.anomaly import analyse

    analysis = analyse()
    print("equation solutions:",
          [list(s) for s in analysis.equation_solutions])
    print("smooth solutions:  ",
          [list(s) for s in analysis.smooth_solutions])
    print("operational:       ",
          sorted(list(s) for s in analysis.operational_outputs))
    print("anomaly resolved:  ", analysis.resolved)
    return 0 if analysis.resolved else 1


def cmd_fig3() -> int:
    from repro.channels import Channel, Event
    from repro.core import Description, combine
    from repro.functions import (
        affine_of,
        chan,
        even_of,
        odd_of,
        prepend_of,
        scale_of,
    )
    from repro.seq import misra_x, misra_y, misra_z
    from repro.traces import Trace

    d = Channel("d")
    desc = combine([
        Description(even_of(chan(d)),
                    prepend_of(0, scale_of(2, chan(d)))),
        Description(odd_of(chan(d)), affine_of(2, 1, chan(d))),
    ], name="fig3")

    def d_trace(seq):
        def gen():
            i = 0
            while True:
                try:
                    yield Event(d, seq.item(i))
                except IndexError:
                    return
                i += 1

        return Trace.lazy(gen())

    for name, seq in [("x", misra_x()), ("y", misra_y()),
                      ("z", misra_z())]:
        verdict = desc.check(d_trace(seq), depth=40)
        print(f"{name}: solves={verdict.is_solution} "
              f"smooth={verdict.is_smooth}")
    return 0


def cmd_zoo() -> int:
    from repro.processes import chaos, random_bit
    from repro.traces import Trace

    p = chaos.make()
    print(f"CHAOS traces to depth 2: {len(p.traces_upto(2))}")
    p = random_bit.make()
    print(f"RandomBit traces: "
          f"{sorted(repr(t) for t in p.traces_upto(2))}")
    print("(run examples/process_zoo.py for the full tour)")
    return 0


def _examples_dir() -> pathlib.Path:
    """The repo's ``examples/`` directory (checkout layout)."""
    return pathlib.Path(__file__).resolve().parents[2] / "examples"


def cmd_trace(example: str, out: str | None, jsonl: str | None,
              seed: int, max_steps: int) -> int:
    """Record an instrumented run and export its Perfetto timeline.

    ``alternating_bit`` exercises all three instrumented layers: a
    fault-injected supervised protocol run (scheduler / runtime /
    fault spans) followed by a solver check of the delivered trace
    against the service specification (solver spans).  ``dfm`` records
    the §2.2 solver exploration plus an operational dfm network run.
    """
    from repro.obs import JsonlSink, RingBufferSink, Tracer, \
        write_chrome_trace
    from repro.report import render_metrics

    ring = RingBufferSink(capacity=500_000)
    sinks = [ring]
    if jsonl:
        sinks.append(JsonlSink(jsonl))
    tracer = Tracer(sinks)

    if example == "alternating_bit":
        examples = _examples_dir()
        if not examples.is_dir():
            print(f"examples directory not found at {examples}",
                  file=sys.stderr)
            return 1
        sys.path.insert(0, str(examples))
        from alternating_bit import (
            FAULTY_CHANNELS,
            MESSAGES,
            OUT,
            direct_agents,
            fair_loss_plan,
            service_spec,
        )
        from repro.core import SmoothSolutionSolver
        from repro.faults import run_conformance

        spec = service_spec(MESSAGES).combined()
        report = run_conformance(
            "abp-direct", direct_agents(MESSAGES), FAULTY_CHANNELS,
            spec, {"fair-loss": lambda: fair_loss_plan(seed=seed)},
            seeds=[seed], observe={OUT}, max_steps=max_steps,
            watchdog_limit=600, tracer=tracer,
        )
        case = report.cases[0]
        print(f"{case}  [{case.elapsed_s * 1e3:.1f}ms]")
        solver = SmoothSolutionSolver.over_channels(
            spec, [OUT], tracer=tracer)
        result = solver.explore(len(MESSAGES) + 1)
        print(f"solver: {result.nodes_explored} nodes, "
              f"{len(result.finite_solutions)} finite solution(s)")
        print(render_metrics(case.metrics, title="run metrics"))
    elif example == "dfm":
        from repro.channels import Channel
        from repro.core import Description, SmoothSolutionSolver, \
            combine
        from repro.functions import chan, even_of, odd_of
        from repro.kahn.agents import dfm_agent, source_agent
        from repro.kahn.scheduler import RandomOracle, run_network

        b = Channel("b", alphabet={0, 2})
        c = Channel("c", alphabet={1, 3})
        d = Channel("d", alphabet={0, 1, 2, 3})
        dfm = combine([
            Description(even_of(chan(d)), chan(b)),
            Description(odd_of(chan(d)), chan(c)),
        ], name="dfm")
        solver = SmoothSolutionSolver.over_channels(
            dfm, [b, c, d], tracer=tracer)
        result = solver.explore(4)
        print(f"solver: {result.nodes_explored} nodes, "
              f"{len(result.finite_solutions)} finite solution(s)")
        run = run_network(
            {"eb": source_agent(b, [0, 2]),
             "dfm": dfm_agent(b, c, d)},
            [b, c, d], RandomOracle(seed), max_steps=max_steps,
            tracer=tracer,
        )
        print(f"network: {run.steps} steps, "
              f"quiescent={run.quiescent}")
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown trace example {example!r}", file=sys.stderr)
        return 1

    tracer.close()
    out = out or f"{example}.perfetto.json"
    n = write_chrome_trace(ring.records, out,
                           process_name=f"repro:{example}")
    print(f"wrote {n} trace events to {out}"
          + (f" (+ JSONL log at {jsonl})" if jsonl else ""))
    print("open in https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="demo runner for the PODC'89 reproduction",
    )
    parser.add_argument(
        "command",
        choices=["summary", "dfm", "anomaly", "fig3", "zoo", "trace"],
        nargs="?",
        default="summary",
    )
    parser.add_argument(
        "example", nargs="?", choices=TRACE_EXAMPLES,
        default="alternating_bit",
        help="for `trace`: which example run to record",
    )
    parser.add_argument(
        "-o", "--out", default=None,
        help="for `trace`: output path "
             "(default <example>.perfetto.json)",
    )
    parser.add_argument(
        "--jsonl", default=None,
        help="for `trace`: also write a JSONL event log here",
    )
    parser.add_argument("--seed", type=int, default=11,
                        help="for `trace`: oracle/fault seed")
    parser.add_argument("--max-steps", type=int, default=4000,
                        help="for `trace`: runtime step budget")
    args = parser.parse_args(argv)
    if args.command == "trace":
        return cmd_trace(args.example, args.out, args.jsonl,
                         args.seed, args.max_steps)
    dispatch = {
        "summary": cmd_summary,
        "dfm": cmd_dfm,
        "anomaly": cmd_anomaly,
        "fig3": cmd_fig3,
        "zoo": cmd_zoo,
    }
    return dispatch[args.command]()


if __name__ == "__main__":
    sys.exit(main())
