"""Command-line demo runner: ``python -m repro <command>``.

Commands:

* ``summary``        — library overview and experiment index;
* ``dfm``            — classify a few dfm histories and enumerate;
* ``anomaly``        — run the Brock–Ackermann analysis;
* ``fig3``           — the §2.3 x/y/z verdicts;
* ``zoo``            — one-line membership sample per catalog process.
"""

from __future__ import annotations

import argparse
import sys


def cmd_summary() -> int:
    from repro import __version__
    from repro.report import render_table

    print(f"repro {__version__} — Equational Reasoning About "
          "Nondeterministic Processes (Misra, PODC 1989)")
    print()
    rows = [
        ("F1", "Figure 1 / §2.1", "two-copy loop, Kahn fixpoints"),
        ("F2", "Figure 2 / §2.2", "discriminated fair merge"),
        ("F3", "Figure 3 / §2.3", "doubling network, x/y/z"),
        ("F4", "Figure 4 / §2.4", "Brock–Ackermann anomaly"),
        ("F5", "Figure 5 / §4.5", "implication via random bit"),
        ("F6", "Figure 6 / §4.6", "fork via oracle"),
        ("F7", "Figure 7 / §4.10", "fair merge via tagging"),
        ("E1–E6", "§4 catalog", "CHAOS … random number"),
        ("T2/T4/T56", "§5–§7", "composition, fixpoint, elimination"),
        ("S33/S84", "§3.3/§8.4", "solver, induction"),
    ]
    print(render_table(["id", "paper artifact", "what"], rows))
    print("\nRegenerate: pytest benchmarks/ --benchmark-only -s")
    return 0


def cmd_dfm() -> int:
    from repro.channels import Channel
    from repro.core import Description, combine, solve
    from repro.functions import chan, even_of, odd_of
    from repro.report import render_solver_result, render_verdict
    from repro.traces import Trace

    b = Channel("b", alphabet={0, 2})
    c = Channel("c", alphabet={1, 3})
    d = Channel("d", alphabet={0, 1, 2, 3})
    dfm = combine([
        Description(even_of(chan(d)), chan(b)),
        Description(odd_of(chan(d)), chan(c)),
    ], name="dfm")
    for t in [
        Trace.from_pairs([(b, 0), (d, 0)]),
        Trace.from_pairs([(d, 0)]),
    ]:
        print(render_verdict(dfm.check(t)))
        print()
    print(render_solver_result(solve(dfm, [b, c, d], max_depth=4)))
    return 0


def cmd_anomaly() -> int:
    from repro.anomaly import analyse

    analysis = analyse()
    print("equation solutions:",
          [list(s) for s in analysis.equation_solutions])
    print("smooth solutions:  ",
          [list(s) for s in analysis.smooth_solutions])
    print("operational:       ",
          sorted(list(s) for s in analysis.operational_outputs))
    print("anomaly resolved:  ", analysis.resolved)
    return 0 if analysis.resolved else 1


def cmd_fig3() -> int:
    from repro.channels import Channel, Event
    from repro.core import Description, combine
    from repro.functions import (
        affine_of,
        chan,
        even_of,
        odd_of,
        prepend_of,
        scale_of,
    )
    from repro.seq import misra_x, misra_y, misra_z
    from repro.traces import Trace

    d = Channel("d")
    desc = combine([
        Description(even_of(chan(d)),
                    prepend_of(0, scale_of(2, chan(d)))),
        Description(odd_of(chan(d)), affine_of(2, 1, chan(d))),
    ], name="fig3")

    def d_trace(seq):
        def gen():
            i = 0
            while True:
                try:
                    yield Event(d, seq.item(i))
                except IndexError:
                    return
                i += 1

        return Trace.lazy(gen())

    for name, seq in [("x", misra_x()), ("y", misra_y()),
                      ("z", misra_z())]:
        verdict = desc.check(d_trace(seq), depth=40)
        print(f"{name}: solves={verdict.is_solution} "
              f"smooth={verdict.is_smooth}")
    return 0


def cmd_zoo() -> int:
    from repro.processes import chaos, random_bit
    from repro.traces import Trace

    p = chaos.make()
    print(f"CHAOS traces to depth 2: {len(p.traces_upto(2))}")
    p = random_bit.make()
    print(f"RandomBit traces: "
          f"{sorted(repr(t) for t in p.traces_upto(2))}")
    print("(run examples/process_zoo.py for the full tour)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="demo runner for the PODC'89 reproduction",
    )
    parser.add_argument(
        "command",
        choices=["summary", "dfm", "anomaly", "fig3", "zoo"],
        nargs="?",
        default="summary",
    )
    args = parser.parse_args(argv)
    dispatch = {
        "summary": cmd_summary,
        "dfm": cmd_dfm,
        "anomaly": cmd_anomaly,
        "fig3": cmd_fig3,
        "zoo": cmd_zoo,
    }
    return dispatch[args.command]()


if __name__ == "__main__":
    sys.exit(main())
