"""Continuous functions from traces into cpos.

Descriptions (§3.2.2) are pairs of continuous functions from traces to a
common cpo.  This module gives them a concrete, *inspectable* form: a
small expression language whose leaves are channel observations and whose
interior nodes are monotone sequence operations.  Keeping functions as
expression trees (rather than opaque closures) buys three things the
paper's development needs:

* **support tracking** — the set of channels a function can depend on,
  used for Theorem 1's independence test and the Composition Theorem's
  description constraint *dc*;
* **substitution** — Section 7's variable elimination literally replaces
  the leaf ``b`` by another function's expression, which is only possible
  when the structure is visible; and
* **laziness for free** — every node is built from the lazy-aware
  combinators of :mod:`repro.seq`, so a function applied to an infinite
  trace yields its (possibly infinite) value as a lazy sequence without
  any extra lifting machinery.

Continuity is by construction (each primitive is prefix-stable) and is
additionally validated empirically in
:mod:`repro.functions.continuity` and the test suite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    FrozenSet,
    Mapping,
    Optional,
    Sequence as PySeq,
)

from repro.channels.channel import Channel
from repro.order.cpo import Cpo
from repro.order.product import ProductCpo
from repro.seq.finite import Seq
from repro.seq.ordering import SequenceCpo
from repro.traces.domain import TraceCpo
from repro.traces.trace import Trace


class ContinuousFn(ABC):
    """A continuous function from traces to a cpo, as an expression tree."""

    #: Human-readable name (used by description reprs).
    name: str = "f"
    #: The codomain cpo — where values of this function live.
    codomain: Cpo
    #: Channels this function may depend on; ``None`` means unknown/all.
    support: Optional[FrozenSet[Channel]] = None

    @abstractmethod
    def apply(self, trace: Trace) -> Any:
        """Evaluate on a finite or lazy trace.

        On a finite trace the result is a finite codomain value; on a
        lazy trace the result may be lazy (its finite prefixes are exact).
        """

    def __call__(self, trace: Trace) -> Any:
        return self.apply(trace)

    @abstractmethod
    def substitute(self, channel: Channel,
                   replacement: "ContinuousFn") -> "ContinuousFn":
        """Replace every observation of ``channel`` by ``replacement``.

        This is the syntactic engine of Section 7's variable elimination:
        ``g' = g[b := h]``.  ``replacement`` must be sequence-valued when
        it substitutes a sequence-valued leaf.
        """

    def apply_env(self, env: "Mapping[Channel, Any]") -> Any:
        """Evaluate against per-channel message sequences instead of a trace.

        The paper's equations constrain only the per-channel sequences
        (the interleaving is pinned separately, by smoothness); evaluating
        on an environment ``{channel: sequence}`` is what the Kahn
        fixpoint computation of §2.1/§6 iterates on.  Functions that
        inspect the interleaving itself (projections, identity) do not
        support environment evaluation and raise ``TypeError``.
        """
        raise TypeError(
            f"{self.name} cannot be evaluated on a channel environment"
        )

    # -- support utilities --------------------------------------------------

    def depends_only_on(self, channels: FrozenSet[Channel]) -> bool:
        """Is the support known and contained in ``channels``?"""
        return self.support is not None and self.support <= channels

    def independent_of(self, channel: Channel) -> bool:
        """Is the support known and avoiding ``channel``? (§7)"""
        return self.support is not None and channel not in self.support

    def __repr__(self) -> str:
        return self.name

    # -- structural identity -------------------------------------------------

    def expr_key(self) -> tuple:
        """A structural fingerprint of this expression.

        Two expressions with the same key denote the same function in
        every model (same constructors, same channels/constants, same
        operation *names*).  Used by the §7 note's general substitution
        to find occurrences of a defined term ``p`` inside other
        descriptions.  Operation identity is by name — two OpFns built
        by the same combinator (e.g. ``even_of``) share a name and are
        therefore matched, which is the intent.
        """
        return (type(self).__name__, self.name)

    def substitute_term(self, target: "ContinuousFn",
                        replacement: "ContinuousFn") -> "ContinuousFn":
        """Replace every sub-expression structurally equal to ``target``.

        This is the engine of §7's note on general substitutions: when
        ``p ⟵ h`` is a description and ``p`` is surjective, occurrences
        of the *term* ``p`` (not the bare channel) may be replaced by
        ``h``.  The default handles the leaf case; composite nodes
        recurse.
        """
        if same_expression(self, target):
            return replacement
        return self


def same_expression(a: ContinuousFn, b: ContinuousFn) -> bool:
    """Structural equality of function expressions (see ``expr_key``)."""
    return a.expr_key() == b.expr_key()


def are_independent(f: ContinuousFn, g: ContinuousFn) -> bool:
    """Theorem 1's side condition: disjoint (known) channel supports."""
    return (
        f.support is not None
        and g.support is not None
        and not (f.support & g.support)
    )


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------

class ChannelFn(ContinuousFn):
    """The function the paper writes as the channel name: ``b(t) = t_b``,
    delivered as the plain message sequence carried by the channel."""

    def __init__(self, channel: Channel):
        self.channel = channel
        self.name = channel.name
        self.codomain = SequenceCpo(channel.alphabet,
                                    name=f"Seq[{channel.name}]")
        self.support = frozenset({channel})

    def apply(self, trace: Trace) -> Seq:
        return trace.sequence_on(self.channel)

    def apply_env(self, env: Mapping[Channel, Any]) -> Any:
        try:
            return env[self.channel]
        except KeyError:
            raise KeyError(
                f"environment lacks channel {self.channel.name!r}"
            ) from None

    def substitute(self, channel: Channel,
                   replacement: ContinuousFn) -> ContinuousFn:
        if channel == self.channel:
            return replacement
        return self

    def expr_key(self) -> tuple:
        return ("ChannelFn", self.channel.name)


class ProjectionFn(ContinuousFn):
    """Trace projection ``t ↦ t_L`` as a continuous function (Fact F3)."""

    def __init__(self, channels: FrozenSet[Channel], name: str = ""):
        self.channels = frozenset(channels)
        self.name = name or (
            "π{" + ",".join(sorted(c.name for c in self.channels)) + "}"
        )
        self.codomain = TraceCpo(self.channels, name=self.name)
        self.support = self.channels

    def apply(self, trace: Trace) -> Trace:
        return trace.project(self.channels)

    def substitute(self, channel: Channel,
                   replacement: ContinuousFn) -> ContinuousFn:
        if channel in self.channels:
            raise ValueError(
                f"cannot substitute {channel.name!r} inside a trace "
                "projection; rewrite the description with channel "
                "functions first"
            )
        return self

    def expr_key(self) -> tuple:
        return ("ProjectionFn",
                tuple(sorted(c.name for c in self.channels)))


class IdentityFn(ContinuousFn):
    """The identity on traces; the ``id`` of Theorem 4's ``id ⟵ h``."""

    def __init__(self, channels: Optional[FrozenSet[Channel]] = None):
        self.name = "id"
        self.codomain = TraceCpo(channels, name="Trace")
        self.support = channels

    def apply(self, trace: Trace) -> Trace:
        return trace

    def substitute(self, channel: Channel,
                   replacement: ContinuousFn) -> ContinuousFn:
        raise ValueError("cannot substitute inside the identity function")


class ConstFn(ContinuousFn):
    """A constant function.  Constants are trivially continuous.

    The value may be an infinite lazy sequence (e.g. ``trues`` of §4.7).
    """

    def __init__(self, value: Any, codomain: Cpo, name: str = ""):
        self.value = value
        self.codomain = codomain
        self.name = name or f"const({value!r})"
        self.support = frozenset()

    def apply(self, trace: Trace) -> Any:
        del trace
        return self.value

    def apply_env(self, env: Mapping[Channel, Any]) -> Any:
        del env
        return self.value

    def substitute(self, channel: Channel,
                   replacement: ContinuousFn) -> ContinuousFn:
        return self

    def expr_key(self) -> tuple:
        from repro.seq.finite import FiniteSeq

        if isinstance(self.value, FiniteSeq):
            value_key = ("finite", self.value.items)
        else:
            value_key = ("opaque", self.name)
        return ("ConstFn", value_key)


# ---------------------------------------------------------------------------
# Interior nodes
# ---------------------------------------------------------------------------

class OpFn(ContinuousFn):
    """A monotone operation applied to the values of argument functions.

    ``op`` receives one codomain value per argument function and must be
    monotone (and prefix-stable on sequence values) in each; all the
    operations in :mod:`repro.functions.seq_fns` and
    :mod:`repro.functions.logic` qualify.  Continuity of the composite
    follows from continuity of the parts.
    """

    def __init__(self, name: str, op: Callable[..., Any],
                 args: PySeq[ContinuousFn],
                 codomain: Optional[Cpo] = None):
        if not args:
            raise ValueError("OpFn needs at least one argument function")
        self.op = op
        self.args = tuple(args)
        self.name = name
        self.codomain = codomain if codomain is not None else SequenceCpo()
        supports = [a.support for a in self.args]
        self.support = (
            None if any(s is None for s in supports)
            else frozenset().union(*supports)  # type: ignore[arg-type]
        )

    def apply(self, trace: Trace) -> Any:
        return self.op(*(a.apply(trace) for a in self.args))

    def apply_env(self, env: Mapping[Channel, Any]) -> Any:
        return self.op(*(a.apply_env(env) for a in self.args))

    def substitute(self, channel: Channel,
                   replacement: ContinuousFn) -> ContinuousFn:
        new_args = tuple(
            a.substitute(channel, replacement) for a in self.args
        )
        if new_args == self.args:
            return self
        return OpFn(self.name, self.op, new_args, codomain=self.codomain)

    def expr_key(self) -> tuple:
        return ("OpFn", self.name,
                tuple(a.expr_key() for a in self.args))

    def substitute_term(self, target: ContinuousFn,
                        replacement: ContinuousFn) -> ContinuousFn:
        if same_expression(self, target):
            return replacement
        new_args = tuple(
            a.substitute_term(target, replacement) for a in self.args
        )
        if new_args == self.args:
            return self
        return OpFn(self.name, self.op, new_args,
                    codomain=self.codomain)


class TupleFn(ContinuousFn):
    """Pairing: ``(f₁, …, fₙ)(t) = (f₁(t), …, fₙ(t))``.

    This is the paper's mechanism for combining multiple descriptions
    into one (Note in Section 4): the codomain is the product cpo of the
    component codomains.
    """

    def __init__(self, components: PySeq[ContinuousFn], name: str = ""):
        if not components:
            raise ValueError("TupleFn needs at least one component")
        self.components = tuple(components)
        self.name = name or (
            "(" + ", ".join(c.name for c in self.components) + ")"
        )
        self.codomain = ProductCpo(
            [c.codomain for c in self.components]
        )
        supports = [c.support for c in self.components]
        self.support = (
            None if any(s is None for s in supports)
            else frozenset().union(*supports)  # type: ignore[arg-type]
        )

    def apply(self, trace: Trace) -> tuple[Any, ...]:
        return tuple(c.apply(trace) for c in self.components)

    def apply_env(self, env: Mapping[Channel, Any]) -> tuple[Any, ...]:
        return tuple(c.apply_env(env) for c in self.components)

    def substitute(self, channel: Channel,
                   replacement: ContinuousFn) -> ContinuousFn:
        new = tuple(
            c.substitute(channel, replacement) for c in self.components
        )
        if new == self.components:
            return self
        return TupleFn(new)

    def expr_key(self) -> tuple:
        return ("TupleFn",
                tuple(c.expr_key() for c in self.components))

    def substitute_term(self, target: ContinuousFn,
                        replacement: ContinuousFn) -> ContinuousFn:
        if same_expression(self, target):
            return replacement
        new = tuple(
            c.substitute_term(target, replacement)
            for c in self.components
        )
        if new == self.components:
            return self
        return TupleFn(new)


class LambdaFn(ContinuousFn):
    """An opaque continuous function given directly as a callable.

    Escape hatch for tests and for functions outside the expression
    language.  Substitution is unavailable (no structure to rewrite) and
    the support must be declared by the caller (or left unknown).
    """

    def __init__(self, name: str, fn: Callable[[Trace], Any],
                 codomain: Cpo,
                 support: Optional[FrozenSet[Channel]] = None):
        self.name = name
        self.fn = fn
        self.codomain = codomain
        self.support = support

    def apply(self, trace: Trace) -> Any:
        return self.fn(trace)

    def substitute(self, channel: Channel,
                   replacement: ContinuousFn) -> ContinuousFn:
        if self.support is not None and channel not in self.support:
            return self
        raise ValueError(
            f"cannot substitute {channel.name!r} inside opaque function "
            f"{self.name!r}"
        )


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def chan(channel: Channel) -> ChannelFn:
    """The observation function of a channel."""
    return ChannelFn(channel)


def const_seq(value: Any, name: str = "") -> ConstFn:
    """A constant sequence-valued function."""
    return ConstFn(value, SequenceCpo(), name=name)


def tuple_fn(*components: ContinuousFn) -> TupleFn:
    return TupleFn(components)
