"""The flat-domain logic functions of §4.3 and §4.5.

``R`` maps both ``T`` and ``F`` to ``T`` (and ``⊥`` to ``⊥``); applied
pointwise to a sequence it forgets the value of each bit while keeping
its presence — the trick that turns the deterministic equation style into
a specification of a *random* bit: any sequence of bits ``b`` with
``R(b) = T̄`` is acceptable.

``AND`` is the strict conjunction: ``⊥`` if either argument is ``⊥``,
``T`` iff both are ``T``, else ``F``.  Applied pointwise to two
sequences, the ``i``-th output exists only when both inputs have an
``i``-th element.  ``nonstrict_and`` is the variant from the §4.5 reader
exercise (``F`` wins even against ``⊥``); at the sequence level a
non-strict pointwise application would not be prefix-stable, which is
exactly why the paper's description uses the strict one — see
``tests/functions/test_logic.py`` for the demonstration.
"""

from __future__ import annotations

from typing import Any

from repro.functions.base import ContinuousFn, OpFn
from repro.order.flat import BOTTOM
from repro.seq.combinators import pointwise, seq_map
from repro.seq.finite import Seq


def r_bit(x: Any) -> Any:
    """The flat function ``R`` of §4.3: ``R(T) = R(F) = T``, ``R(⊥) = ⊥``."""
    if x is BOTTOM:
        return BOTTOM
    if x in ("T", "F"):
        return "T"
    raise ValueError(f"R is defined on {{T, F, ⊥}}, got {x!r}")


def and_bit(x: Any, y: Any) -> Any:
    """Strict ``AND``: ``⊥`` if either argument is ``⊥``; ``T`` iff both
    ``T``; ``F`` otherwise (§4.5)."""
    for v in (x, y):
        if v is BOTTOM:
            return BOTTOM
        if v not in ("T", "F"):
            raise ValueError(f"AND is defined on {{T, F, ⊥}}, got {v!r}")
    return "T" if (x, y) == ("T", "T") else "F"


def nonstrict_and_bit(x: Any, y: Any) -> Any:
    """Non-strict ``AND``: ``F`` if either argument is ``F``, ``T`` if
    both are ``T``, ``⊥`` otherwise (§4.5's reader exercise)."""
    if x == "F" or y == "F":
        return "F"
    if x == "T" and y == "T":
        return "T"
    return BOTTOM


def r_map(s: Seq) -> Seq:
    """``R`` applied pointwise to a bit sequence."""
    return seq_map(r_bit, s, name="R")


def and_map(a: Seq, b: Seq) -> Seq:
    """Strict ``AND`` applied pointwise to two bit sequences.

    Strictness at the element level becomes the min-length rule at the
    sequence level (an absent element is ``⊥``), which keeps the lifted
    function monotone in both arguments.
    """
    return pointwise(and_bit, a, b, name="AND")


def r_of(fn: ContinuousFn) -> OpFn:
    """``R(fn)`` as a continuous trace function."""
    return OpFn(f"R({fn.name})", r_map, [fn])


def and_of(left: ContinuousFn, right: ContinuousFn) -> OpFn:
    """``left AND right`` as a continuous trace function."""
    return OpFn(f"({left.name} AND {right.name})", and_map,
                [left, right])
