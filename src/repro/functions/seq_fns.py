"""The sequence operations used by the paper's descriptions.

Each operation here is a monotone, prefix-stable transformation of
message sequences (lazy-aware via :mod:`repro.seq.combinators`), together
with a lifting helper that applies it to the value of a
:class:`~repro.functions.base.ContinuousFn` — yielding the composite
continuous trace functions the descriptions are written with:

======================  =====================================================
paper                   here
======================  =====================================================
``even(d)`` (§2.2)      ``even_of(chan(d))``
``odd(d)``              ``odd_of(chan(d))``
``0; 2×d`` (§2.3)       ``prepend_of(0, scale_of(2, chan(d)))``
``2×d + 1``             ``affine_of(2, 1, chan(d))``
``TRUE(c)`` (§4.7)      ``true_of(chan(c))``
``ZERO(b)`` (§4.10)     ``tagged_of(0, chan(b))``
``g(c)`` (§4.8)         ``until_first_f_of(chan(c))``
``h(c)`` (§4.9)         ``count_ticks_of(chan(c))``
``t0(c)``/``r(b)``      ``tag_of(0, chan(c))`` / ``untag_of(chan(b))``
``g(c,b)``/``h(c,b)``   ``select_of(chan(c), chan(b), 'T'/'F')`` (§4.6)
``f(c)`` (§2.4)         ``brock_f_of(chan(c))``
======================  =====================================================
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.functions.base import ContinuousFn, OpFn
from repro.seq.combinators import (
    pointwise,
    seq_filter,
    seq_map,
    subsequence_positions,
    take_while,
)
from repro.seq.finite import EMPTY, FiniteSeq, Seq, fseq
from repro.seq.lazy import LazySeq


def _with_face(op, face):
    """Attach a *tuple face* to a sequence operation.

    A tuple face is the operation restricted to finite sequences
    represented as plain tuples: it receives one tuple per argument
    and must return the tuple that ``op`` on the corresponding
    ``FiniteSeq`` arguments would produce (it must be pure — same
    tuples in, same tuple out).  The compiled solver path
    (:mod:`repro.core.compiled`) dispatches to faces to skip the
    ``Seq`` boxing entirely; operations without a face still compile
    through a generic box/unbox wrapper, just more slowly.
    """
    op.tuple_face = face
    return op


# ---------------------------------------------------------------------------
# Subsequence filters
# ---------------------------------------------------------------------------

def even_filter(s: Seq) -> Seq:
    """``even``: the subsequence of even integers (§2.2)."""
    return seq_filter(lambda n: n % 2 == 0, s, name="even")


def odd_filter(s: Seq) -> Seq:
    """``odd``: the subsequence of odd integers (§2.2)."""
    return seq_filter(lambda n: n % 2 != 0, s, name="odd")


def true_filter(s: Seq) -> Seq:
    """``TRUE``: the subsequence of ``'T'`` elements (§4.7)."""
    return seq_filter(lambda x: x == "T", s, name="TRUE")


def false_filter(s: Seq) -> Seq:
    """``FALSE``: the subsequence of ``'F'`` elements (§4.7)."""
    return seq_filter(lambda x: x == "F", s, name="FALSE")


def tagged_filter(tag: Any, s: Seq) -> Seq:
    """``ZERO``/``ONE``: the subsequence of pairs tagged ``tag`` (§4.10)."""
    return seq_filter(
        lambda p: isinstance(p, tuple) and len(p) == 2 and p[0] == tag,
        s, name=f"tag={tag!r}",
    )


# ---------------------------------------------------------------------------
# Pointwise maps
# ---------------------------------------------------------------------------

def scale(k: int, s: Seq) -> Seq:
    """``k × s``: scale every element (§2.3's ``2×d``)."""
    return seq_map(lambda n: k * n, s, name=f"{k}×")


def affine(a: int, b: int, s: Seq) -> Seq:
    """``a × s + b`` pointwise (§2.3's ``2×d + 1``)."""
    return seq_map(lambda n: a * n + b, s, name=f"{a}×+{b}")


def tag_with(tag: Any, s: Seq) -> Seq:
    """``t0``/``t1`` of §4.10: pair every element with a tag."""
    return seq_map(lambda n: (tag, n), s, name=f"tag{tag!r}")


def untag(s: Seq) -> Seq:
    """``r`` of §4.10: second component of every pair."""
    return seq_map(lambda p: p[1], s, name="untag")


# ---------------------------------------------------------------------------
# Prefix/structure operations
# ---------------------------------------------------------------------------

def prepend_value(value: Any, s: Seq) -> Seq:
    """``value; s`` — the paper's ``;`` with a one-element left side."""
    from repro.seq.builders import prepend

    return prepend(value, s)


def prepend_block(values: tuple, s: Seq) -> Seq:
    """``v₁; v₂; …; s`` for a finite block of values."""
    from repro.seq.builders import concat

    return concat(FiniteSeq(values), s, name="block;…")


def until_first_f(s: Seq) -> Seq:
    """§4.8's ``g``: the longest prefix containing no ``'F'``.

    Monotone: while no ``F`` has appeared the output tracks the input;
    after the first ``F`` the output is frozen.
    """
    return take_while(lambda x: x != "F", s, name="until-first-F")


def count_ticks(s: Seq) -> Seq:
    """§4.9's ``h``: count ``'T'``s before the first ``'F'``; output the
    count (a one-element sequence) only once the ``F`` has been seen.

    Monotone: on prefixes without an ``F`` the output is ``ε`` (we cannot
    yet commit to a count); once the ``F`` arrives the count is fixed and
    further input cannot change it.
    """
    if isinstance(s, FiniteSeq):
        count = 0
        for x in s:
            if x == "F":
                return fseq(count)
            count += 1
        return EMPTY

    def gen() -> Iterator[Any]:
        count = 0
        i = 0
        while True:
            try:
                x = s.item(i)
            except IndexError:
                return
            if x == "F":
                yield count
                return
            count += 1
            i += 1

    return LazySeq(gen(), name="count-ticks")


def brock_f(s: Seq) -> Seq:
    """Process B of the Brock–Ackermann network (§2.4).

    ``f(ε) = ε``, ``f(⟨n⟩) = ε``, ``f(n; m; x) = ⟨n + 1⟩``: output the
    first input plus one, but only after *two* inputs have arrived.
    Monotone: the output is determined (and frozen) exactly when the
    second input item appears.
    """
    if isinstance(s, FiniteSeq):
        if len(s) >= 2:
            return fseq(s.item(0) + 1)
        return EMPTY

    def gen() -> Iterator[Any]:
        try:
            first = s.item(0)
            s.item(1)
        except IndexError:
            return
        yield first + 1

    return LazySeq(gen(), name="brock-f")


def select_by_oracle(s: Seq, oracle: Seq, keep: Any) -> Seq:
    """§4.6's routing functions ``g``/``h``: elements of ``s`` at the
    positions where ``oracle`` reads ``keep``."""
    return subsequence_positions(s, oracle, keep, name=f"select{keep!r}")


def seq_pair(a: Seq, b: Seq) -> tuple[Seq, Seq]:
    """Pair two sequence values (used with product codomains)."""
    return (a, b)


def zip_pairs(a: Seq, b: Seq) -> Seq:
    """Pointwise pairing of two sequences (length = min)."""
    return pointwise(lambda x, y: (x, y), a, b, name="zip")


# ---------------------------------------------------------------------------
# Tuple faces (compiled finite fragment of the operations above)
# ---------------------------------------------------------------------------

def _count_ticks_face(t: tuple) -> tuple:
    count = 0
    for x in t:
        if x == "F":
            return (count,)
        count += 1
    return ()


def _until_first_f_face(t: tuple) -> tuple:
    for i, x in enumerate(t):
        if x == "F":
            return t[:i]
    return t


_with_face(even_filter, lambda t: tuple(n for n in t if n % 2 == 0))
_with_face(odd_filter, lambda t: tuple(n for n in t if n % 2 != 0))
_with_face(true_filter, lambda t: tuple(x for x in t if x == "T"))
_with_face(false_filter, lambda t: tuple(x for x in t if x == "F"))
_with_face(until_first_f, _until_first_f_face)
_with_face(count_ticks, _count_ticks_face)
_with_face(brock_f, lambda t: (t[0] + 1,) if len(t) >= 2 else ())
_with_face(untag, lambda t: tuple(p[1] for p in t))
_with_face(zip_pairs, lambda a, b: tuple(zip(a, b)))


# ---------------------------------------------------------------------------
# Lifts to continuous trace functions
# ---------------------------------------------------------------------------

def even_of(fn: ContinuousFn) -> OpFn:
    return OpFn(f"even({fn.name})", even_filter, [fn])


def odd_of(fn: ContinuousFn) -> OpFn:
    return OpFn(f"odd({fn.name})", odd_filter, [fn])


def true_of(fn: ContinuousFn) -> OpFn:
    return OpFn(f"TRUE({fn.name})", true_filter, [fn])


def false_of(fn: ContinuousFn) -> OpFn:
    return OpFn(f"FALSE({fn.name})", false_filter, [fn])


def tagged_of(tag: Any, fn: ContinuousFn) -> OpFn:
    label = "ZERO" if tag == 0 else "ONE" if tag == 1 else f"TAG{tag!r}"
    return OpFn(f"{label}({fn.name})",
                _with_face(
                    lambda s: tagged_filter(tag, s),
                    lambda t: tuple(
                        p for p in t
                        if isinstance(p, tuple) and len(p) == 2
                        and p[0] == tag)),
                [fn])


def scale_of(k: int, fn: ContinuousFn) -> OpFn:
    return OpFn(f"{k}×{fn.name}",
                _with_face(lambda s: scale(k, s),
                           lambda t: tuple(k * n for n in t)),
                [fn])


def affine_of(a: int, b: int, fn: ContinuousFn) -> OpFn:
    return OpFn(f"{a}×{fn.name}+{b}",
                _with_face(lambda s: affine(a, b, s),
                           lambda t: tuple(a * n + b for n in t)),
                [fn])


def prepend_of(value: Any, fn: ContinuousFn) -> OpFn:
    return OpFn(f"{value!r};{fn.name}",
                _with_face(lambda s: prepend_value(value, s),
                           lambda t: (value,) + t),
                [fn])


def prepend_block_of(values: tuple, fn: ContinuousFn) -> OpFn:
    return OpFn(f"{values!r};{fn.name}",
                _with_face(lambda s: prepend_block(values, s),
                           lambda t: tuple(values) + t),
                [fn])


def until_first_f_of(fn: ContinuousFn) -> OpFn:
    return OpFn(f"g({fn.name})", until_first_f, [fn])


def count_ticks_of(fn: ContinuousFn) -> OpFn:
    return OpFn(f"h({fn.name})", count_ticks, [fn])


def tag_of(tag: Any, fn: ContinuousFn) -> OpFn:
    return OpFn(f"t{tag!r}({fn.name})",
                _with_face(lambda s: tag_with(tag, s),
                           lambda t: tuple((tag, n) for n in t)),
                [fn])


def untag_of(fn: ContinuousFn) -> OpFn:
    return OpFn(f"r({fn.name})", untag, [fn])


def select_of(source: ContinuousFn, oracle: ContinuousFn,
              keep: Any) -> OpFn:
    return OpFn(
        f"select[{keep!r}]({source.name},{oracle.name})",
        _with_face(
            lambda s, o: select_by_oracle(s, o, keep),
            lambda s, o: tuple(x for x, bit in zip(s, o)
                               if bit == keep)),
        [source, oracle],
    )


def brock_f_of(fn: ContinuousFn) -> OpFn:
    return OpFn(f"f({fn.name})", brock_f, [fn])


def take_of(n: int, fn: ContinuousFn) -> OpFn:
    """The length-``n`` prefix of a sequence value (monotone, continuous).

    ``take_of(1, ·)`` is the deterministic "head" process used by the
    folklore construction of nondeterministic processes from fair
    merges (see ``tests/integration/test_folklore_universality.py``).
    """
    return OpFn(f"take{n}({fn.name})",
                _with_face(lambda s: s.take(n), lambda t: t[:n]),
                [fn])
