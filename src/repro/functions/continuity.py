"""Empirical continuity validation for trace functions.

The theory requires every function in a description to be continuous
(§3).  Our functions are continuous by construction, but construction
can be wrong; this module checks, on generated samples:

* **monotonicity** — ``u ⊑ v ⇒ f(u) ⊑ f(v)`` over prefix pairs of
  sample traces;
* **prefix consistency (continuity surrogate)** — for a lazy trace
  ``t``, the chain ``f(t↾0) ⊑ f(t↾1) ⊑ …`` ascends and its elements are
  approximations of ``f(t)`` — i.e. ``f(lub) = lub(f)`` restricted to
  the materialized part.

Both checks raise :class:`~repro.order.checks.LawViolation` with the
offending pair on failure.
"""

from __future__ import annotations

from typing import Iterable, Sequence as PySeq

from repro.functions.base import ContinuousFn
from repro.order.checks import LawViolation
from repro.traces.trace import Trace


def check_fn_monotone(fn: ContinuousFn,
                      traces: Iterable[Trace]) -> None:
    """Check monotonicity of ``fn`` over all prefix pairs of each trace
    and over all prefix-comparable pairs across traces."""
    pool: list[Trace] = []
    for t in traces:
        pool.extend(t.prefixes())
    for u in pool:
        for v in pool:
            if not u.is_prefix_of(v):
                continue
            fu, fv = fn.apply(u), fn.apply(v)
            if not fn.codomain.leq(fu, fv):
                raise LawViolation(
                    f"{fn.name} is not monotone: {u!r} ⊑ {v!r} but "
                    f"{fu!r} ⋢ {fv!r}"
                )


def check_fn_continuous_on(fn: ContinuousFn, trace: Trace,
                           depth: int) -> None:
    """Check that prefix applications of ``fn`` approximate ``f(trace)``.

    For each ``n ≤ depth``: ``f(t↾n) ⊑ f(t↾n+1)`` (chain ascends) and
    ``f(t↾n) ⊑ f(t)`` up to the depth bound (elements approximate the
    limit).  For finite traces this specializes to exact continuity.
    """
    limit = fn.apply(trace)
    previous = None
    for n in range(depth + 1):
        prefix = trace.take(n)
        value = fn.apply(prefix)
        if previous is not None and not fn.codomain.leq(previous, value):
            raise LawViolation(
                f"{fn.name}: prefix chain does not ascend at n={n}"
            )
        if not fn.codomain.leq_upto(value, limit, depth):
            raise LawViolation(
                f"{fn.name}: f(t↾{n}) = {value!r} does not approximate "
                f"the limit within depth {depth}"
            )
        previous = value
        if prefix.length() < n:
            break  # trace exhausted


def check_continuous_fn(fn: ContinuousFn, traces: PySeq[Trace],
                        depth: int = 12) -> None:
    """Run both checks over a family of sample traces."""
    finite = [t for t in traces if t.is_known_finite()]
    check_fn_monotone(fn, finite)
    for t in traces:
        check_fn_continuous_on(fn, t, depth)
