"""Human-readable rendering of the library's artifacts.

Descriptions, verdicts, solver results and operational runs all have
``repr``s tuned for debugging; this module renders them as multi-line
reports for examples, notebooks and failure messages.  Pure string
formatting — no semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core.description import Description, DescriptionSystem
from repro.core.solution import SolutionVerdict
from repro.core.solver import SolverResult
from repro.kahn.runtime import RunResult
from repro.traces.trace import Trace


def render_trace(t: Trace, max_events: int = 16) -> str:
    """One-line trace rendering: ``(b,0)(d,0)…``.

    The trailing ``…`` means *more events exist than were shown*.  For
    a trace of unknown length we probe one event past the cap: a lazy
    trace that exhausts within ``max_events`` renders exactly like the
    equivalent finite trace (no false truncation marker).
    """
    n = t.events.known_length()
    if n is None:
        probed = list(t.iter_upto(max_events + 1))
        if not probed:
            return "ε"
        shown = "".join(repr(e) for e in probed[:max_events])
        return shown + ("…" if len(probed) > max_events else "")
    if n == 0:
        return "ε"
    shown = "".join(
        repr(t.item(i)) for i in range(min(n, max_events))
    )
    return shown + ("…" if n > max_events else "")


def render_description(desc: Description) -> str:
    """``lhs ⟵ rhs`` with support annotation."""
    support = desc.support()
    chans = (
        "{" + ",".join(sorted(c.name for c in support)) + "}"
        if support is not None else "unknown"
    )
    return f"{desc.lhs.name} ⟵ {desc.rhs.name}    [channels {chans}]"


def render_system(system: DescriptionSystem) -> str:
    lines = [f"system {system.name!r}:"]
    lines.extend(
        f"  {render_description(d)}" for d in system.descriptions
    )
    return "\n".join(lines)


def render_verdict(verdict: SolutionVerdict) -> str:
    lines = [
        f"trace    {render_trace(verdict.trace)}",
        f"against  {verdict.description_name}",
        f"limit    {verdict.limit}",
    ]
    if verdict.violations:
        lines.append(f"smooth   {len(verdict.violations)} violation(s):")
        for violation in verdict.violations[:4]:
            lines.append(
                f"         at u = {render_trace(violation.u)}: "
                f"f(v) = {violation.lhs_of_v!r} ⋢ "
                f"g(u) = {violation.rhs_of_u!r}"
            )
        if len(verdict.violations) > 4:
            lines.append(
                f"         … {len(verdict.violations) - 4} more"
            )
    else:
        lines.append("smooth   no violations")
    mode = "exact" if verdict.exact else f"to depth {verdict.depth}"
    status = "SMOOTH SOLUTION" if verdict.is_smooth else (
        "solution, NOT smooth" if verdict.is_solution
        else "not a solution"
    )
    lines.append(f"verdict  {status} ({mode})")
    return "\n".join(lines)


def render_solver_result(result: SolverResult,
                         max_listed: int = 10) -> str:
    lines = [
        f"explored {result.nodes_explored} nodes to depth "
        f"{result.depth}",
        f"finite smooth solutions: {len(result.finite_solutions)}",
    ]
    for t in result.finite_solutions[:max_listed]:
        lines.append(f"  {render_trace(t)}")
    if len(result.finite_solutions) > max_listed:
        lines.append(
            f"  … {len(result.finite_solutions) - max_listed} more"
        )
    if result.frontier:
        lines.append(
            f"live paths at the depth bound: {len(result.frontier)}"
        )
    if result.dead_ends:
        lines.append(f"dead ends: {len(result.dead_ends)}")
    if result.truncated:
        lines.append(f"TRUNCATED: {result.truncation_reason}")
    if result.unvisited:
        lines.append(
            f"unvisited nodes parked by the guard: "
            f"{len(result.unvisited)} (resume with a checkpoint)"
        )
    return "\n".join(lines)


def render_run(result: RunResult) -> str:
    status = "quiescent" if result.quiescent else "still live"
    lines = [
        f"{status} after {result.steps} steps",
        f"trace: {render_trace(result.trace)}",
    ]
    if result.halted_agents:
        lines.append(f"halted:  {', '.join(result.halted_agents)}")
    if result.blocked_agents:
        lines.append(f"blocked: {', '.join(result.blocked_agents)}")
    if result.failed_agents:
        lines.append(f"failed:  {', '.join(result.failed_agents)}")
    return "\n".join(lines)


def render_metrics(metrics: dict, title: str = "metrics") -> str:
    """Render a metrics summary dict (see
    :meth:`repro.obs.MetricsRegistry.summary`): counters as plain
    numbers, gauge/histogram stat dicts as compact ``k=v`` rows."""
    if not metrics:
        return f"{title}: (none recorded — run with a tracer)"
    lines = [f"{title}:"]
    for name, value in sorted(metrics.items()):
        if isinstance(value, dict):
            stats = " ".join(
                f"{k}={_fmt_stat(v)}" for k, v in sorted(value.items())
                if k != "buckets" and v is not None
            )
            lines.append(f"  {name:<32s} {stats}")
        else:
            lines.append(f"  {name:<32s} {value}")
    return "\n".join(lines)


def _fmt_stat(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.3g}"
    return str(v)


def render_fleet_status(snap: dict, width: int = 40) -> str:
    """Render a :meth:`~repro.obs.telemetry.FleetStatus.snapshot` as
    the ``python -m repro top`` scoreboard: progress bar, worker
    occupancy, outcome counts, cache hit-rate, streamed telemetry and
    ETA.  Pure function of the snapshot dict — deterministic output
    for golden tests."""
    total = snap.get("total") or 0
    done = snap.get("done") or 0
    frac = (done / total) if total else 0.0
    filled = int(round(width * min(1.0, frac)))
    bar = "█" * filled + "·" * (width - filled)
    eta = snap.get("eta_s")
    eta_text = "—" if eta is None else f"{eta:.1f}s"
    hit = snap.get("cache_hit_rate")
    hit_text = "—" if hit is None else f"{hit * 100:.0f}%"
    state = "done" if snap.get("finished") else "running"
    lines = [
        f"repro top — grid {snap.get('scenario') or '?'} [{state}]",
        f"  [{bar}] {done}/{total} cells ({frac * 100:.0f}%)",
        f"  workers {snap.get('workers', 0)}  "
        f"busy {snap.get('busy', 0)}  "
        f"elapsed {snap.get('elapsed_s', 0.0):.1f}s  eta {eta_text}",
        f"  conforming {snap.get('conforming', 0)}  "
        f"failures {snap.get('genuine_failures', 0)}  "
        f"quarantined {snap.get('quarantined', 0)}",
        f"  retries {snap.get('retries', 0)}  "
        f"timeouts {snap.get('timeouts', 0)}  "
        f"crashes {snap.get('crashes', 0)}",
        f"  cache hits {snap.get('cached', 0)} ({hit_text})  "
        f"streamed {snap.get('records_streamed', 0)} records in "
        f"{snap.get('batches_streamed', 0)} batches",
    ]
    return "\n".join(lines)


def render_fleet_line(snap: dict) -> str:
    """One-line fleet status for non-TTY ``python -m repro top``
    output (logs, CI): no cursor movement, one line per refresh."""
    total = snap.get("total") or 0
    done = snap.get("done") or 0
    frac = (done / total * 100) if total else 0.0
    eta = snap.get("eta_s")
    eta_text = "—" if eta is None else f"{eta:.1f}s"
    state = "done" if snap.get("finished") else "running"
    return (f"top {snap.get('scenario') or '?'} [{state}] "
            f"{done}/{total} ({frac:.0f}%) "
            f"busy {snap.get('busy', 0)}/{snap.get('workers', 0)} "
            f"ok {snap.get('conforming', 0)} "
            f"fail {snap.get('genuine_failures', 0)} "
            f"retry {snap.get('retries', 0)} "
            f"cached {snap.get('cached', 0)} "
            f"elapsed {snap.get('elapsed_s', 0.0):.1f}s eta {eta_text}")


def render_explanation(expl) -> str:
    """Render a :class:`~repro.obs.causality.DivergenceExplanation`.

    Output-first: names the first divergent delivery, then the root
    decision node and the minimal causal chain connecting them.
    """
    if expl.identical:
        return "runs causally identical (same deliveries, same decisions)"
    lines = []
    if expl.index is not None:
        def show(d):
            if d is None:
                return "(no delivery — run ends earlier)"
            return f"{d[1]!r} on {d[0]}"
        lines.append(f"first divergent delivery at index {expl.index}:")
        lines.append(f"  run A: {show(expl.delivery_a)}")
        lines.append(f"  run B: {show(expl.delivery_b)}")
    else:
        lines.append("deliveries identical; decision streams differ:")
    if expl.root is None:
        lines.append("  no divergent decision found "
                     "(runs differ only in length)")
        return "\n".join(lines)
    lines.append(f"root cause — first divergent decision "
                 f"(run {expl.root_run}):")
    lines.append(f"  {expl.root.label()}")
    if expl.counterpart is not None:
        other = "A" if expl.root_run == "B" else "B"
        lines.append(f"  vs run {other}: {expl.counterpart.label()}")
    else:
        other = "A" if expl.root_run == "B" else "B"
        lines.append(f"  (run {other} has no matching decision)")
    if expl.chain:
        lines.append("causal chain:")
        for i, node in enumerate(expl.chain):
            arrow = "  " if i == 0 else "  → "
            lines.append(f"{arrow}{node.label()}")
    if expl.total_deliveries:
        lines.append(
            f"impact: {expl.descendant_deliveries}/"
            f"{expl.total_deliveries} deliveries in run "
            f"{expl.root_run} causally descend from the root")
    return "\n".join(lines)


def render_hotspots(rows, title: str = "solver hotspots") -> str:
    """Render :func:`repro.obs.profile.hotspots` rows as a table."""
    if not rows:
        return f"{title}: (none recorded — run with a tracer)"
    table = render_table(
        ("site", "calls", "ms", "share"),
        [(r["site"], r["calls"], f"{r['ns'] / 1e6:.3f}",
          f"{r['share'] * 100:.1f}%") for r in rows])
    return f"{title}:\n" + "\n".join(
        "  " + line for line in table.splitlines())


def render_causal_summary(graph, max_chain: int = 12) -> str:
    """Render a :class:`~repro.obs.causality.CausalGraph` overview:
    size, digest, deliveries, decision count and the critical path."""
    counts: Dict[str, int] = {}
    for _, _, label in graph.edges:
        counts[label] = counts.get(label, 0) + 1
    edge_text = " ".join(f"{k}={counts[k]}" for k in sorted(counts))
    lines = [
        f"causal graph: {len(graph.nodes)} nodes, "
        f"{len(graph.edges)} edges ({edge_text or 'none'})",
        f"digest {graph.digest()[:16]}",
        f"deliveries: {len(graph.deliveries)}  "
        f"decisions: {len(graph.decisions())}",
    ]
    chain = graph.critical_path()
    if chain:
        lines.append(f"critical path ({len(chain)} events — the "
                     "longest dependency chain):")
        for node in chain[:max_chain]:
            lines.append(f"  {node.label()}")
        if len(chain) > max_chain:
            lines.append(f"  … {len(chain) - max_chain} more")
    return "\n".join(lines)


def render_schedule(schedule, max_decisions: int = 8) -> str:
    """Render a flight-recorder :class:`~repro.obs.recorder.Schedule`.

    Meta keys are emitted in sorted order and each decision stream
    shows its head up to ``max_decisions`` entries — deterministic
    output, suitable for golden tests and diff-friendly logs.
    """
    lines = [f"schedule ({len(schedule)} decisions, "
             f"digest {schedule.digest()[:12]})"]
    for key, value in sorted(schedule.meta.items()):
        lines.append(f"  meta {key:<18s} {value}")
    streams = [
        ("agent_picks", schedule.agent_picks,
         lambda d: f"{d[0]}  (ready: {', '.join(d[1])})"),
        ("choice_picks", schedule.choice_picks,
         lambda d: f"branch {d[0]}/{d[1]} in {d[2]}"),
        ("rng_draws", schedule.rng_draws,
         lambda d: f"{d[0]} {d[1]} -> {d[2]!r}"),
        ("path", schedule.path,
         lambda d: f"({d[0]}, {d[1]})"),
    ]
    for name, stream, fmt in streams:
        if not stream:
            continue
        lines.append(f"  {name} ({len(stream)}):")
        for i, decision in enumerate(stream[:max_decisions]):
            lines.append(f"    [{i}] {fmt(decision)}")
        if len(stream) > max_decisions:
            lines.append(f"    … {len(stream) - max_decisions} more")
    return "\n".join(lines)


def render_run_diff(diff) -> str:
    """Render a :class:`~repro.obs.diff.RunDiff` (see
    :func:`~repro.obs.diff.diff_runs`)."""
    lines = [diff.summary()]
    if diff.divergence is not None:
        lines.append("  " + diff.divergence.describe())
    for name, (a, b) in sorted(diff.outcome.items()):
        lines.append(f"  outcome {name}: {a!r} != {b!r}")
    if diff.digest_a != diff.digest_b:
        lines.append(f"  digest a: {diff.digest_a}")
        lines.append(f"  digest b: {diff.digest_b}")
    return "\n".join(lines)


def render_schedule_diff(diff) -> str:
    """Render a :class:`~repro.obs.diff.ScheduleDiff` (see
    :func:`~repro.obs.diff.diff_schedules`)."""
    if not diff.divergences:
        return "schedules identical"
    lines = [f"{len(diff.divergences)} divergent stream(s); "
             f"first: {diff.first.stream}[{diff.first.index}]"]
    for d in diff.divergences:
        lines.append("  " + d.describe())
    return "\n".join(lines)


def render_conformance_report(report, max_failures: int = 5) -> str:
    """Render a :class:`~repro.faults.harness.ConformanceReport`.

    Shows both clocks: ``wall_clock_s`` (what an observer waited for
    the whole grid) and ``total_elapsed_s()`` (summed per-cell
    compute).  Under a parallel executor the cells overlap, so the
    compute sum exceeds the wall clock; the ``overlap`` factor is
    their ratio — an effective-parallelism estimate.
    """
    if not report.cases:
        return (f"conformance[{report.network}] 0 cells — "
                "empty grid, vacuously conforming")
    lines = [report.summary()]
    if report.degraded:
        infra = [c for c in report.cases if c.infra_failure]
        lines.append(
            f"  DEGRADED: {len(infra)}/{len(report.cases)} cells "
            "lost to infrastructure (timeout/crash/quarantine) — "
            f"verdicts below cover the {len(report.surviving_cases)} "
            "surviving cells")
        for case in infra:
            lines.append(f"  LOST {case}")
    stats = getattr(report, "fleet_stats", None)
    if stats:
        fleet_bits = [f"workers: {stats.get('workers', 0)}"]
        for key in ("respawns", "retries", "timeouts", "crashes",
                    "errors", "quarantined"):
            if stats.get(key):
                fleet_bits.append(f"{key}: {stats[key]}")
        if stats.get("chaos"):
            fleet_bits.append(f"chaos: {stats['chaos']}")
        lines.append("  fleet " + ", ".join(fleet_bits))
    cached = report.cached_cases
    if cached:
        lines.append(f"  {len(cached)}/{len(report.cases)} cells "
                     "served from cache")
    wall = report.wall_clock_s
    compute = report.total_elapsed_s()
    timing = (f"wall-clock {wall:.3f}s, "
              f"per-cell compute {compute:.3f}s")
    if wall > 0 and compute > wall:
        timing += f"  (overlap ×{compute / wall:.1f})"
    lines.append(timing)
    plans: Dict[str, Dict[str, int]] = {}
    for case in report.cases:
        per = plans.setdefault(case.plan, {})
        per[case.outcome] = per.get(case.outcome, 0) + 1
    for plan in sorted(plans):
        counts = ", ".join(f"{k}: {v}"
                           for k, v in sorted(plans[plan].items()))
        lines.append(f"  {plan:<16s} {counts}")
    # infra losses were already listed under DEGRADED; FAIL lines are
    # genuine verdicts of the system under test
    failures = report.genuine_failures
    for case in failures[:max_failures]:
        lines.append(f"  FAIL {case}")
    if len(failures) > max_failures:
        lines.append(f"  … {len(failures) - max_failures} more "
                     "failing cells")
    return "\n".join(lines)


def render_table(headers: Iterable[str],
                 rows: Iterable[Iterable[object]]) -> str:
    """A minimal fixed-width text table (used by the CLI)."""
    header_list = [str(h) for h in headers]
    row_lists = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header_list]
    for row in row_lists:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*header_list)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt.format(*row) for row in row_lists)
    return "\n".join(lines)
