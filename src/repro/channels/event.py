"""Events: the ``(channel, message)`` pairs traces are made of (§3.1.2)."""

from __future__ import annotations

from typing import Any

from repro.channels.channel import Channel


class Event:
    """A single communication: message ``message`` sent along ``channel``.

    Per the paper, only *sends* appear in traces; receipt is not recorded.
    """

    __slots__ = ("channel", "message")

    def __init__(self, channel: Channel, message: Any):
        if not channel.admits(message):
            raise ValueError(
                f"message {message!r} is not in the alphabet of "
                f"channel {channel.name!r}"
            )
        object.__setattr__(self, "channel", channel)
        object.__setattr__(self, "message", message)

    def __setattr__(self, *_: Any) -> None:  # pragma: no cover
        raise AttributeError("Event is immutable")

    def __reduce__(self):
        # see Channel.__reduce__: immutable slots need an explicit
        # pickle path; messages must themselves be picklable.
        return (Event, (self.channel, self.message))

    def on(self, channels: Any) -> bool:
        """Return ``True`` iff this event's channel is in ``channels``."""
        return self.channel in channels

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Event):
            return (self.channel, self.message) == \
                (other.channel, other.message)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Event", self.channel, self.message))

    def __repr__(self) -> str:
        return f"({self.channel.name},{self.message!r})"

    def __iter__(self):
        """Allow ``c, m = event`` unpacking."""
        yield self.channel
        yield self.message


def ev(channel: Channel, message: Any) -> Event:
    """Shorthand constructor."""
    return Event(channel, message)
