"""Channels and their message alphabets.

The paper fixes a set *channels*; each channel has an associated alphabet
*messages* (§3.1.2).  A :class:`Channel` is identified by its name —
two channels with the same name are the same channel — and optionally
constrains its message alphabet (used by the smooth-solution solver to
enumerate one-step extensions, and by validators to reject ill-typed
events).

Channels may be flagged *auxiliary* (§8.2): auxiliary channels are
internal to a single process, and a described process's traces are the
smooth solutions *projected off* its auxiliary channels.
"""

from __future__ import annotations

from typing import AbstractSet, Any, FrozenSet, Iterable, Optional


class Channel:
    """A named channel with an optional finite message alphabet."""

    __slots__ = ("name", "alphabet", "auxiliary")

    def __init__(self, name: str,
                 alphabet: Optional[Iterable[Any]] = None,
                 auxiliary: bool = False):
        if not name:
            raise ValueError("a channel needs a nonempty name")
        object.__setattr__(self, "name", name)
        object.__setattr__(
            self, "alphabet",
            None if alphabet is None else frozenset(alphabet),
        )
        object.__setattr__(self, "auxiliary", bool(auxiliary))

    def __setattr__(self, *_: Any) -> None:  # pragma: no cover
        raise AttributeError("Channel is immutable")

    def __reduce__(self):
        # slots + the immutability guard defeat default pickling
        # (unpickling would call the guarded ``__setattr__``); rebuild
        # through ``__init__`` instead so channels cross process
        # boundaries (parallel conformance grids) intact.
        return (Channel, (self.name, self.alphabet, self.auxiliary))

    def admits(self, message: Any) -> bool:
        """Return ``True`` iff ``message`` is in this channel's alphabet."""
        return self.alphabet is None or message in self.alphabet

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Channel):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Channel", self.name))

    def __repr__(self) -> str:
        aux = ", aux" if self.auxiliary else ""
        return f"Channel({self.name!r}{aux})"

    def __lt__(self, other: "Channel") -> bool:
        return self.name < other.name


def channel_set(*channels: Channel) -> FrozenSet[Channel]:
    """A frozen set of channels (the ``L`` of projections ``t_L``)."""
    return frozenset(channels)


def names(channels: AbstractSet[Channel]) -> tuple[str, ...]:
    """Sorted channel names, for stable display."""
    return tuple(sorted(c.name for c in channels))


def non_auxiliary(channels: AbstractSet[Channel]) -> FrozenSet[Channel]:
    """The externally visible channels (§8.2)."""
    return frozenset(c for c in channels if not c.auxiliary)
