"""Channels, alphabets and events (§3.1.2 of the paper)."""

from repro.channels.channel import (
    Channel,
    channel_set,
    names,
    non_auxiliary,
)
from repro.channels.event import Event, ev

__all__ = [
    "Channel",
    "Event",
    "channel_set",
    "ev",
    "names",
    "non_auxiliary",
]
