"""Solver checkpoints: a truncated exploration as pure JSON.

A §3.3 exploration that hits a resource guard is not a dead end — the
nodes it never visited are a set of Kleene-iteration *prefixes*, and
continuing the chain from them reproduces exactly the straight run.  A
:class:`SolverCheckpoint` captures everything that continuation needs:

* the already-classified sets (finite solutions, frontier, dead ends)
  as JSON trace keys — ``[[channel_name, message_repr], ...]`` per
  trace, the same canonical form the solver's digests and witness
  schedules use;
* the ``unvisited`` nodes (the parked BFS residue, at one or two
  adjacent depths — their depths are their trace lengths);
* the exploration shape: depth bound, limit depth, nodes explored,
  the description's name and the truncation reason.

Checkpoints deliberately contain **no pickled objects**: resuming
reconstructs every carried trace by replaying its key as a witness
path through the live description (re-deriving the ``f(u)`` values
the BFS carries), so a checkpoint is as portable and as auditable as
a flight-recorder schedule — and a corrupted checkpoint is caught by
the replay, not silently trusted.

The loader is strict in the style of
:meth:`repro.obs.recorder.Schedule.from_dict`: a missing ``version``
field raises ``ValueError`` naming the keys that are present, because
truncated or hand-edited files should fail at load time, not as a
confusing divergence later.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.obs.recorder import stable_digest

#: Format version stamped into serialized checkpoints.
CHECKPOINT_VERSION = 1

#: JSON trace key: ``[[channel_name, message_repr], ...]``.
TraceKey = List[list]


@dataclass
class SolverCheckpoint:
    """A resumable snapshot of one bounded §3.3 exploration."""

    description: str = ""
    depth: int = 0
    limit_depth: int = 0
    nodes_explored: int = 0
    truncation_reason: str = ""
    finite_solutions: List[TraceKey] = field(default_factory=list)
    frontier: List[TraceKey] = field(default_factory=list)
    dead_ends: List[TraceKey] = field(default_factory=list)
    unvisited: List[TraceKey] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        """Number of carried traces (all four buckets)."""
        return (len(self.finite_solutions) + len(self.frontier)
                + len(self.dead_ends) + len(self.unvisited))

    @property
    def exhausted(self) -> bool:
        """Nothing left to resume — the checkpoint is of a complete
        (or fully resumed) exploration."""
        return not self.unvisited

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": CHECKPOINT_VERSION,
            "kind": "solver-checkpoint",
            "description": self.description,
            "depth": self.depth,
            "limit_depth": self.limit_depth,
            "nodes_explored": self.nodes_explored,
            "truncation_reason": self.truncation_reason,
            "finite_solutions": [list(map(list, t))
                                 for t in self.finite_solutions],
            "frontier": [list(map(list, t)) for t in self.frontier],
            "dead_ends": [list(map(list, t)) for t in self.dead_ends],
            "unvisited": [list(map(list, t)) for t in self.unvisited],
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SolverCheckpoint":
        """Strict loader: requires the version stamp.

        ``to_dict``/``save`` always write ``version``, so a dict
        without it is a truncated or hand-edited file — refuse it with
        a ``ValueError`` naming the keys that were found instead of
        guessing.
        """
        if not isinstance(data, dict):
            raise ValueError(
                "checkpoint is not an object: "
                f"{type(data).__name__}")
        if "version" not in data:
            raise ValueError(
                "checkpoint missing required 'version' field "
                f"(found keys: {sorted(data)}); the file may be "
                "truncated or hand-edited")
        version = data["version"]
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})")
        return cls(
            description=str(data.get("description", "")),
            depth=int(data.get("depth", 0)),
            limit_depth=int(data.get("limit_depth", 0)),
            nodes_explored=int(data.get("nodes_explored", 0)),
            truncation_reason=str(data.get("truncation_reason", "")),
            finite_solutions=[[list(e) for e in t]
                              for t in data.get("finite_solutions",
                                                [])],
            frontier=[[list(e) for e in t]
                      for t in data.get("frontier", [])],
            dead_ends=[[list(e) for e in t]
                       for t in data.get("dead_ends", [])],
            unvisited=[[list(e) for e in t]
                       for t in data.get("unvisited", [])],
            meta=dict(data.get("meta", {})),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SolverCheckpoint":
        return cls.from_dict(json.loads(text))

    def save(self, path: str, fsync: bool = False) -> None:
        """Atomically write the checkpoint (tmp + ``os.replace``): a
        killed writer leaves the previous checkpoint intact, never a
        half-written one a resume would refuse.  ``fsync=True`` also
        fsyncs the file and its directory before returning, so even a
        machine crash cannot roll the rename back to an empty file.
        """
        import os
        import tempfile

        from repro.cache.store import fsync_directory

        target = os.fspath(path)
        parent = os.path.dirname(target) or "."
        fd, tmp = tempfile.mkstemp(prefix=".checkpoint.",
                                   suffix=".tmp", dir=parent)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(self.to_json())
                fh.write("\n")
                if fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if fsync:
            fsync_directory(parent)

    @classmethod
    def load(cls, path: str) -> "SolverCheckpoint":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def digest(self) -> str:
        """Content hash of the carried sets and exploration shape."""
        payload = self.to_dict()
        payload.pop("meta")
        return stable_digest(payload)

    def __repr__(self) -> str:
        return (f"SolverCheckpoint({self.description!r}, "
                f"depth={self.depth}, "
                f"explored={self.nodes_explored}, "
                f"unvisited={len(self.unvisited)})")
