"""Persistent caching and resumable checkpoints (PR 5).

Two related capabilities, both operational readings of §3.3:

* **Checkpoints** — a truncated solver exploration is a set of
  Kleene-iteration prefixes (the unvisited nodes of the tree);
  :class:`SolverCheckpoint` serializes exactly that set as pure JSON
  and :meth:`~repro.core.solver.SmoothSolutionSolver.explore`
  (``resume_from=...``) continues the chain, with the invariant that
  *truncate-then-resume digest-equals the straight run*.
* **The store** — :class:`CacheStore`, a persistent content-addressed
  result cache (default ``.repro-cache/``).  Cells of a conformance
  grid and whole solver explorations are independent computations
  whose input digests fully determine their results (the generalized
  Kahn principle, see PAPERS.md), so they are sound to memoize across
  processes and CI runs.  Entries are version-stamped, written
  atomically (tmp + rename), and corrupt or stale entries are treated
  as misses.

Key construction lives in :mod:`repro.cache.keys`; everything is keyed
through :func:`repro.obs.recorder.stable_digest`, so keys are stable
across processes and hash seeds.
"""

from repro.cache.checkpoint import (
    CHECKPOINT_VERSION,
    SolverCheckpoint,
)
from repro.cache.keys import (
    candidate_identity,
    cell_cache_key,
    description_digest,
    grid_facets,
    solver_cache_key,
)
from repro.cache.store import (
    CACHE_VERSION,
    DEFAULT_CACHE_DIR,
    CacheStore,
)

__all__ = [
    "CACHE_VERSION",
    "CHECKPOINT_VERSION",
    "CacheStore",
    "DEFAULT_CACHE_DIR",
    "SolverCheckpoint",
    "candidate_identity",
    "cell_cache_key",
    "description_digest",
    "grid_facets",
    "solver_cache_key",
]
