"""Cache keys: stable digests of the inputs that determine a result.

A cached result is sound exactly when its key captures every input
that determines it.  Two key families live here:

* **Solver keys** — a bounded §3.3 exploration is determined by the
  description (name + side structure), the candidate generator, the
  depth bound, the limit-check depth and the resource budgets.
* **Cell keys** — a conformance-grid cell is determined by the grid's
  *facets* (network name, channel alphabets, observation set, budgets,
  restart policy) plus the cell's own plan name, seed and recording
  flag.  Fault plans and oracles are rebuilt fresh per cell from
  ``(plan name, seed)``, so those two scalars stand for the whole
  nondeterminism of the cell — the same argument that makes the grid
  process-parallel (see :mod:`repro.par`).

Keys deliberately name code (descriptions, generators, agents) rather
than hashing its bytes; the store's version stamp plus ``--no-cache``
/ ``clear()`` are the escape hatches when code changes under a stable
name.
"""

from __future__ import annotations

import weakref
from typing import Any, Iterable, Mapping, Optional

from repro.obs.recorder import stable_digest

#: description object -> its digest.  A description's visible structure
#: is immutable after construction, so the digest can be computed once;
#: weak keys keep the memo from pinning descriptions alive.
_DESCRIPTION_DIGESTS: "weakref.WeakKeyDictionary[Any, str]" = \
    weakref.WeakKeyDictionary()


def description_digest(description: Any) -> str:
    """Content digest of a description's visible structure.

    Covers the description name and both sides' names plus (when
    known) their channel supports — the identity under which a solver
    result may be reused.  Duck-typed so it also accepts
    ``DescriptionSystem`` (digests the combined description).
    Memoized per object: the structure it digests is fixed at
    construction time, and the solver consults it on every cache
    lookup.
    """
    try:
        cached = _DESCRIPTION_DIGESTS.get(description)
    except TypeError:  # unhashable / non-weakrefable duck type
        cached = None
    if cached is not None:
        return cached
    original = description
    combined = getattr(description, "combined", None)
    if combined is not None and not hasattr(description, "lhs"):
        description = combined()
    payload = {
        "name": getattr(description, "name", ""),
        "lhs": getattr(description.lhs, "name", repr(description.lhs)),
        "rhs": getattr(description.rhs, "name", repr(description.rhs)),
    }
    support = None
    try:
        support = description.support()
    except Exception:
        support = None
    if support is not None:
        payload["support"] = sorted(c.name for c in support)
    digest = stable_digest(payload)
    try:
        _DESCRIPTION_DIGESTS[original] = digest
    except TypeError:
        pass
    return digest


def candidate_identity(candidates: Any) -> Any:
    """A JSON-ready identity for a candidate generator.

    Generators built by the library attach a ``cache_key`` attribute
    describing their content (e.g. the full event alphabet); anything
    else is identified by its qualified name — enough to keep two
    differently-named generators apart, while the version stamp guards
    against silent drift under one name.
    """
    key = getattr(candidates, "cache_key", None)
    if key is not None:
        return key
    return {
        "kind": "opaque",
        "module": getattr(candidates, "__module__", ""),
        "qualname": getattr(candidates, "__qualname__",
                            type(candidates).__name__),
    }


def solver_cache_key(description: Any, candidates: Any,
                     max_depth: int, limit_depth: int,
                     max_nodes: int,
                     budget_seconds: Optional[float]) -> dict:
    """The full input digest payload of one bounded exploration."""
    return {
        "description": getattr(description, "name", ""),
        "description_digest": description_digest(description),
        "candidates": candidate_identity(candidates),
        "depth": max_depth,
        "limit_depth": limit_depth,
        "max_nodes": max_nodes,
        "budget_seconds": budget_seconds,
    }


def _channel_facet(channel: Any) -> list:
    alphabet = getattr(channel, "alphabet", None)
    return [
        channel.name,
        sorted(repr(m) for m in alphabet) if alphabet is not None
        else None,
    ]


def grid_facets(network: str, channels: Iterable[Any],
                observe: Optional[Iterable[Any]],
                max_steps: int, policy: Any,
                watchdog_limit: Optional[int],
                depth: int) -> dict:
    """The per-grid inputs shared by every cell of one conformance
    grid — everything :func:`repro.faults.harness.run_conformance`
    takes that is not the cell's own ``(plan, seed)`` coordinate.
    Plan *content* is represented by the plan name inside the cell key
    (plans are rebuilt fresh per cell from name + seed)."""
    return {
        "network": network,
        "channels": sorted(_channel_facet(c) for c in channels),
        "observe": (sorted(c.name for c in observe)
                    if observe is not None else None),
        "max_steps": max_steps,
        "policy": repr(policy),
        "watchdog_limit": watchdog_limit,
        "depth": depth,
    }


def cell_cache_key(facets: Mapping[str, Any], plan: str, seed: int,
                   record: bool = True) -> dict:
    """One grid cell's key: the grid facets plus its coordinate."""
    return {
        "facets": dict(facets),
        "plan": plan,
        "seed": seed,
        "record": record,
    }
