"""Persistent content-addressed result store.

Layout: ``<root>/<kind>/<digest>.json``, one JSON entry per cached
result, where ``digest`` is the :func:`~repro.obs.recorder.stable_digest`
of the key payload.  Entries are written atomically (``tmp`` +
``os.replace``) so a killed writer can never leave a half-entry that a
later reader trusts, and every entry is stamped with the cache format
version and the library version.

The read contract is *miss-biased*: a missing file, unparsable JSON,
a version mismatch, a kind mismatch or a key-digest mismatch are all
just misses (stale/corrupt entries are additionally evicted), because
a cache must never turn disk state into a wrong answer.  The entry
parser itself (:meth:`CacheStore.parse_entry`) is strict in the style
of :meth:`repro.obs.recorder.Schedule.from_dict` — a missing
``version`` field raises ``ValueError`` naming the keys that *are*
present — and ``get`` maps that strictness to a miss.

Observability: every store carries a
:class:`~repro.obs.metrics.MetricsRegistry` counting
``cache.hit`` / ``cache.miss`` / ``cache.write`` / ``cache.evict``,
and, with a tracer attached, emits matching ``cache.*`` events so a
Perfetto timeline shows which work was skipped.

Crash consistency: a store that cannot write (read-only directory,
disk full, quota) **degrades** instead of aborting the run — one
``RuntimeWarning``, then writes land in a process-local in-memory
overlay so repeated lookups within the session still hit warm
(:attr:`CacheStore.degraded`).  ``fsync=True`` additionally fsyncs
every entry (and its directory) on write, so a machine crash right
after a checkpoint cannot leave an empty-but-renamed entry that a
resume would have to evict.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import stable_digest
from repro.obs.tracer import NULL_TRACER

#: Format version stamped into every store entry.  Bump on any change
#: to entry layout or to the semantics of cached payloads; old entries
#: then read as stale (= misses) instead of as wrong answers.
CACHE_VERSION = 1

#: Default store location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def fsync_directory(path: str | os.PathLike) -> None:
    """fsync a directory so a just-renamed entry survives a crash.

    Directory fds are not writable/fsync-able on every platform;
    failure here means weaker durability, never a wrong result, so
    errors are swallowed.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class CacheStore:
    """A persistent content-addressed cache of computed results.

    ``kind`` partitions the namespace (``"solver"`` for exploration
    results, ``"cell"`` for conformance cells, …); the key payload is
    any JSON-serializable value whose stable digest names the entry.
    """

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Any = None,
                 fsync: bool = False):
        self.root = Path(root)
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: fsync every written entry and its directory (checkpoint
        #: durability: survive a machine crash, not just a killed
        #: process — ``os.replace`` alone already guarantees the
        #: latter)
        self.fsync = fsync
        #: in-memory overlay, populated once disk writes start failing
        self._memory: Dict[Tuple[str, str], Any] = {}
        self._degraded = False

    @property
    def degraded(self) -> bool:
        """Disk writes have failed; entries written since then live in
        a process-local in-memory overlay (warm hits only)."""
        return self._degraded

    def _degrade(self, exc: OSError) -> None:
        if self._degraded:
            return
        self._degraded = True
        self.metrics.counter("cache.degraded").inc()
        if getattr(self.tracer, "enabled", False):
            self.tracer.event("cache.degraded", category="cache",
                              track="cache", error=str(exc))
        warnings.warn(
            f"cache store {self.root} is not writable ({exc}); "
            "degrading to in-memory mode — results stay correct, "
            "cached entries will not persist beyond this process",
            RuntimeWarning, stacklevel=4)

    # -- bookkeeping ---------------------------------------------------------

    def _count(self, what: str, kind: str, digest: str) -> None:
        self.metrics.counter(f"cache.{what}").inc()
        if getattr(self.tracer, "enabled", False):
            self.tracer.event(f"cache.{what}", category="cache",
                              track="cache", kind=kind,
                              key=digest[:16])

    def key_digest(self, key: Any) -> str:
        return stable_digest(key)

    def path_for(self, kind: str, key: Any) -> Path:
        return self.root / kind / f"{self.key_digest(key)}.json"

    # -- strict entry parsing ------------------------------------------------

    @staticmethod
    def parse_entry(data: Any) -> Dict[str, Any]:
        """Validate a decoded store entry; strict about the stamp.

        Raises ``ValueError`` (naming the keys actually present) for a
        non-dict, a missing ``version`` or a missing ``value`` — the
        same refuse-to-guess stance as
        :meth:`repro.obs.recorder.Schedule.from_dict`, because a
        truncated entry that silently loads fails later in a far more
        confusing place.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"cache entry is not an object: {type(data).__name__}")
        if "version" not in data:
            raise ValueError(
                "cache entry missing required 'version' field "
                f"(found keys: {sorted(data)}); the entry may be "
                "truncated or hand-edited")
        if "value" not in data:
            raise ValueError(
                "cache entry missing required 'value' field "
                f"(found keys: {sorted(data)})")
        return data

    # -- the store API -------------------------------------------------------

    def get(self, kind: str, key: Any) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` on any miss.

        Misses include: no entry, unreadable/unparsable entry, format
        or library version mismatch, and entries whose recorded kind
        or key digest disagree with the request (a hash collision or a
        renamed file).  Stale and corrupt entries are evicted so they
        are not re-parsed on every lookup.
        """
        digest = self.key_digest(key)
        if (kind, digest) in self._memory:
            self._count("hit", kind, digest)
            return self._memory[(kind, digest)]
        path = self.root / kind / f"{digest}.json"
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            self._count("miss", kind, digest)
            return None
        try:
            entry = self.parse_entry(json.loads(text))
        except (json.JSONDecodeError, ValueError):
            self._evict(path, kind, digest)
            self._count("miss", kind, digest)
            return None
        from repro import __version__

        stale = (entry.get("version") != CACHE_VERSION
                 or entry.get("repro_version") != __version__
                 or entry.get("kind") != kind
                 or entry.get("key_digest") != digest)
        if stale:
            self._evict(path, kind, digest)
            self._count("miss", kind, digest)
            return None
        self._count("hit", kind, digest)
        return entry["value"]

    def put(self, kind: str, key: Any, value: Any) -> Path:
        """Store ``value`` under ``key`` atomically; returns the path.

        ``value`` must be JSON-serializable.  The entry is written to
        a temporary file in the destination directory and renamed into
        place, so concurrent writers (grid workers, parallel CI jobs)
        race benignly — last complete write wins, and readers never
        observe a partial entry.

        A failing *disk* (read-only directory, ``ENOSPC``, quota)
        degrades the store to in-memory mode instead of raising: the
        value still lands in the overlay (so this session's lookups
        hit warm), a single ``RuntimeWarning`` is emitted, and the
        returned path is where the entry *would* have lived.
        Serialization errors (the caller's bug) still raise.
        """
        from repro import __version__

        digest = self.key_digest(key)
        path = self.root / kind / f"{digest}.json"
        entry = {
            "version": CACHE_VERSION,
            "repro_version": __version__,
            "kind": kind,
            "key_digest": digest,
            "key": key,
            "value": value,
        }
        text = json.dumps(entry, sort_keys=True, indent=None,
                          separators=(",", ":"))
        if not self._degraded:
            try:
                self._write_entry(path, text)
                self._count("write", kind, digest)
                return path
            except OSError as exc:
                self._degrade(exc)
        self._memory[(kind, digest)] = value
        self._count("write", kind, digest)
        return path

    def _write_entry(self, path: Path, text: str) -> None:
        """tmp + fsync? + rename (+ directory fsync) — the atomic,
        optionally durable write every entry goes through."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=f".{path.stem[:12]}.",
                                   suffix=".tmp",
                                   dir=str(path.parent))
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.fsync:
            fsync_directory(path.parent)

    def _evict(self, path: Path, kind: str, digest: str) -> None:
        try:
            path.unlink()
        except OSError:
            return
        self._count("evict", kind, digest)

    def clear(self, kind: Optional[str] = None) -> int:
        """Drop every entry (of ``kind``, or all kinds); returns the
        number of entries removed."""
        removed = 0
        roots = [self.root / kind] if kind is not None else (
            [p for p in self.root.iterdir() if p.is_dir()]
            if self.root.is_dir() else [])
        for sub in roots:
            if not sub.is_dir():
                continue
            for entry in sub.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    continue
        self.metrics.counter("cache.evict").inc(removed)
        return removed

    # -- reporting -----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """This session's hit/miss/write/evict counts."""
        return {name: self.metrics.counter(f"cache.{name}").value
                for name in ("hit", "miss", "write", "evict")}

    def stats(self) -> Dict[str, Any]:
        """Session counters plus the on-disk entry census."""
        entries: Dict[str, int] = {}
        total_bytes = 0
        if self.root.is_dir():
            for sub in sorted(self.root.iterdir()):
                if not sub.is_dir():
                    continue
                files = list(sub.glob("*.json"))
                if files:
                    entries[sub.name] = len(files)
                    total_bytes += sum(f.stat().st_size
                                       for f in files)
        return {
            "root": str(self.root),
            "version": CACHE_VERSION,
            "counters": self.counters(),
            "entries": entries,
            "total_entries": sum(entries.values()),
            "total_bytes": total_bytes,
            "degraded": self._degraded,
            "memory_entries": len(self._memory),
        }

    def __repr__(self) -> str:
        return f"CacheStore({str(self.root)!r})"
