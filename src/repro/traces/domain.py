"""The cpo of traces under prefix ordering (Fact F1).

``TraceCpo`` is the domain over which descriptions are interpreted.  Its
bottom is the empty trace; lubs of materialized finite chains are their
maxima, and lubs of lazily-presented chains of finite traces are lazy
traces (Fact F2 in reverse: a trace is the lub of its finite prefixes).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence as PySequence

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.order.cpo import Cpo
from repro.order.poset import NotAChainError
from repro.seq.finite import FiniteSeq
from repro.seq.lazy import LazySeq
from repro.traces.trace import Trace


class TraceCpo(Cpo):
    """Traces over a fixed set of channels, prefix-ordered."""

    def __init__(self, channels: Optional[frozenset[Channel]] = None,
                 name: str = "Trace"):
        self.channels = channels
        self.name = name

    @property
    def bottom(self) -> Trace:
        return Trace.empty()

    def _coerce(self, x: Any) -> Trace:
        if not isinstance(x, Trace):
            raise TypeError(f"{x!r} is not a trace")
        return x

    def leq(self, x: Any, y: Any) -> bool:
        a, b = self._coerce(x), self._coerce(y)
        n = a.events.known_length()
        if n is None:
            raise ValueError(
                "prefix order with a lazy left operand is undecidable; "
                "compare finite prefixes"
            )
        return a.take(n).is_prefix_of(b)

    def eq(self, x: Any, y: Any) -> bool:
        a, b = self._coerce(x), self._coerce(y)
        la, lb = a.events.known_length(), b.events.known_length()
        if la is not None and lb is not None:
            return la == lb and a.take(la).is_prefix_of(b)
        return super().eq(a, b)

    def eq_upto(self, x: Any, y: Any, depth: int) -> bool:
        return trace_eq_upto(self._coerce(x), self._coerce(y), depth)

    def leq_upto(self, x: Any, y: Any, depth: int) -> bool:
        a = self._coerce(x).take(depth)
        b = self._coerce(y)
        la = a.events.known_length()
        assert la is not None
        return a.take(la).is_prefix_of(b)

    def lub_chain(self, chain: PySequence[Any]) -> Trace:
        if not chain:
            return Trace.empty()
        traces = [self._coerce(t) for t in chain]
        if not self.is_ascending(traces):
            raise NotAChainError("trace chain does not ascend")
        return traces[-1]

    def lub_of_chain_fn(self, nth: Callable[[int], Trace],
                        name: str = "lub",
                        stable_steps: int = 64) -> Trace:
        """The lub of ``nth(0) ⊑ nth(1) ⊑ …`` as a lazy trace.

        Mirrors :meth:`repro.seq.ordering.SequenceCpo.lub_of_chain_fn`;
        stabilization is detected heuristically after ``stable_steps``
        non-growing chain elements.
        """

        def gen():
            emitted = 0
            k = 0
            stable = 0
            current = nth(0)
            while True:
                n = current.length()
                while n > emitted:
                    yield current.item(emitted)
                    emitted += 1
                    stable = 0
                k += 1
                nxt = nth(k)
                if not current.is_prefix_of(nxt):
                    raise NotAChainError(
                        f"trace chain {name!r} does not ascend at {k}"
                    )
                if nxt.length() == n:
                    stable += 1
                    if stable >= stable_steps:
                        return
                current = nxt

        return Trace(LazySeq(gen(), name=name), name=name)

    def sample(self) -> list[Any]:
        if not self.channels:
            return [Trace.empty()]
        chans = sorted(self.channels)
        events: list[Event] = []
        for c in chans[:2]:
            alphabet = sorted(c.alphabet, key=repr)[:2] if c.alphabet \
                else [0, 1]
            events.extend(Event(c, m) for m in alphabet)
        sample = [Trace.empty()]
        sample.extend(Trace.finite([e]) for e in events)
        sample.extend(
            Trace.finite([e1, e2])
            for e1 in events[:2]
            for e2 in events[:2]
        )
        return sample


def trace_eq_upto(a: Trace, b: Trace, depth: int) -> bool:
    """Bounded trace equality, conclusive for ``False``.

    Mirrors :func:`repro.seq.ordering.seq_eq_upto` at the trace level.
    """
    fa, fb = a.take(depth), b.take(depth)
    la = fa.events.known_length()
    lb = fb.events.known_length()
    assert la is not None and lb is not None
    if la != lb:
        return False
    if FiniteSeq(fa.events.take(la).items) != \
            FiniteSeq(fb.events.take(lb).items):
        return False
    ka, kb = a.events.known_length(), b.events.known_length()
    if ka is not None and kb is not None:
        return ka == kb
    if ka is not None and ka < depth:
        return False
    if kb is not None and kb < depth:
        return False
    return True


#: Unrestricted trace cpo.
TRACE_CPO = TraceCpo()
