"""Interning: channels, messages and events as small integers.

The compiled solver path replaces linked :class:`Trace` values with a
*packed* representation — a tuple of ``(channel_id, message_id)`` int
pairs — plus an *environment*: one flat message tuple per channel,
which is exactly the per-channel subsequence the paper writes as
``b(t)``.  The :class:`InternTable` owns both directions of the
mapping, and the conversion is lossless by construction: unpacking
reuses the very same :class:`~repro.channels.event.Event` objects the
reference path appends, so digests, cache keys and checkpoints come
out bit-identical.

The table is built from a solver's *constant* candidate alphabet (the
``alphabet_candidates`` generator publishes it as
``constant_events``); per-node candidate generators such as
``rhs_guided_candidates`` have no fixed alphabet and therefore no
intern table — the solver falls back to the reference path for them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.seq.finite import FiniteSeq
from repro.traces.trace import Trace

#: A packed event: ``(channel_id, message_id)``.
PackedEvent = Tuple[int, int]
#: A packed trace: a flat tuple of packed events.
PackedTrace = Tuple[PackedEvent, ...]
#: A packed environment: per-channel message tuples, indexed by
#: channel id.  ``env[cid]`` is the channel's message subsequence.
PackedEnv = Tuple[Tuple[Any, ...], ...]


class InternTable:
    """Bidirectional channel/message/event ↔ small-int mapping."""

    __slots__ = (
        "channels", "channel_ids", "messages", "message_ids",
        "events", "_event_pairs", "_pair_events", "empty_env",
        "_events_memo",
    )

    def __init__(self, events: Iterable[Event],
                 extra_channels: Iterable[Channel] = ()):
        channels: List[Channel] = []
        channel_ids: Dict[Channel, int] = {}
        messages: List[Any] = []
        message_ids: Dict[Any, int] = {}
        event_list: List[Event] = []
        pairs: List[PackedEvent] = []
        pair_events: Dict[PackedEvent, Event] = {}

        def intern_channel(channel: Channel) -> int:
            cid = channel_ids.get(channel)
            if cid is None:
                cid = len(channels)
                channel_ids[channel] = cid
                channels.append(channel)
            return cid

        # Channels a description observes but no candidate mentions
        # still need environment slots (their subsequence is ε).
        for channel in extra_channels:
            intern_channel(channel)
        for event in events:
            cid = intern_channel(event.channel)
            mid = message_ids.get(event.message)
            if mid is None:
                mid = len(messages)
                message_ids[event.message] = mid
                messages.append(event.message)
            pair = (cid, mid)
            event_list.append(event)
            pairs.append(pair)
            # keep the *first* Event object for a pair so unpacking
            # returns stable identities even with duplicate candidates
            pair_events.setdefault(pair, event)

        self.channels = tuple(channels)
        self.channel_ids = channel_ids
        self.messages = tuple(messages)
        self.message_ids = message_ids
        self.events = tuple(event_list)
        self._event_pairs = tuple(pairs)
        self._pair_events = pair_events
        self.empty_env: PackedEnv = ((),) * len(self.channels)
        #: packed trace -> its Event tuple; BFS levels share prefixes,
        #: so each unpack is one concat off its parent's entry
        self._events_memo: Dict[PackedTrace, Tuple[Event, ...]] = \
            {(): ()}

    # -- events ---------------------------------------------------------

    def event_pairs(self) -> Tuple[PackedEvent, ...]:
        """Packed form of the candidate events, in candidate order."""
        return self._event_pairs

    def intern_event(self, event: Event) -> PackedEvent:
        """Pack one event; raises ``KeyError`` off-alphabet."""
        return (self.channel_ids[event.channel],
                self.message_ids[event.message])

    def event_for(self, pair: PackedEvent) -> Event:
        """The canonical :class:`Event` for a packed pair."""
        event = self._pair_events.get(pair)
        if event is None:
            # a pair assembled from valid ids that never co-occurred
            # in the alphabet: build (and remember) a fresh event
            event = Event(self.channels[pair[0]], self.messages[pair[1]])
            self._pair_events[pair] = event
        return event

    # -- traces ---------------------------------------------------------

    def pack(self, trace: Trace) -> PackedTrace:
        """Pack a known-finite trace; ``KeyError`` off-alphabet."""
        return tuple(self.intern_event(e) for e in trace)

    def unpack(self, packed: PackedTrace, name: str = "") -> Trace:
        """Rebuild the :class:`Trace` for a packed trace.

        Event objects come from the candidate alphabet, so the result
        is indistinguishable from the trace the reference path builds
        by repeated ``append`` — same events, same equality, same
        hash, same ``repr``.
        """
        if not packed and not name:
            return Trace.empty()
        return Trace(FiniteSeq.from_tuple(self._events_of(packed)),
                     name=name)

    def _events_of(self, packed: PackedTrace) -> Tuple[Event, ...]:
        memo = self._events_memo
        events = memo.get(packed)
        if events is not None:
            return events
        # walk back to the longest memoized prefix (usually the
        # direct parent — BFS siblings share it), then fill forward
        i = len(packed) - 1
        while i > 0 and packed[:i] not in memo:
            i -= 1
        events = memo[packed[:i]]
        for j in range(i, len(packed)):
            events = events + (self.event_for(packed[j]),)
            memo[packed[:j + 1]] = events
        return events

    def env_of(self, packed: PackedTrace) -> PackedEnv:
        """The per-channel message environment of a packed trace.

        ``env[cid]`` equals ``trace.messages_on(channels[cid])`` as a
        flat tuple — the compiled face of the paper's ``b(t)``.
        """
        buckets: List[List[Any]] = [[] for _ in self.channels]
        for cid, mid in packed:
            buckets[cid].append(self.messages[mid])
        return tuple(tuple(b) for b in buckets)

    def extend_env(self, env: PackedEnv, pair: PackedEvent) -> PackedEnv:
        """The environment after appending one packed event."""
        cid, mid = pair
        return env[:cid] + (env[cid] + (self.messages[mid],),) \
            + env[cid + 1:]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<InternTable {len(self.channels)} channels, "
                f"{len(self.messages)} messages, "
                f"{len(self.events)} events>")


def intern_table_for(candidates: Any,
                     extra_channels: Sequence[Channel] = ()
                     ) -> Optional[InternTable]:
    """Build an :class:`InternTable` from a candidate generator.

    Returns ``None`` when the generator does not publish a constant
    alphabet (``constant_events``) — the signal that the solver must
    stay on the reference path.
    """
    events = getattr(candidates, "constant_events", None)
    if events is None:
        return None
    return InternTable(events, extra_channels=extra_channels)
