"""Traces, projections and the trace cpo (§3.1 of the paper)."""

from repro.traces.domain import TRACE_CPO, TraceCpo, trace_eq_upto
from repro.traces.intern import InternTable, intern_table_for
from repro.traces.projection import (
    fact_f4,
    fact_f5_witness,
    is_projection_of_prefix,
    project,
)
from repro.traces.trace import Trace, one_step_extensions

__all__ = [
    "InternTable",
    "TRACE_CPO",
    "Trace",
    "TraceCpo",
    "intern_table_for",
    "fact_f4",
    "fact_f5_witness",
    "is_projection_of_prefix",
    "one_step_extensions",
    "project",
    "trace_eq_upto",
]
