"""Projection of traces onto channel subsets (§3.1.2–3.1.3).

``project(t, L)`` is the subsequence ``t_L`` of events on channels in
``L``.  Projection is a continuous function from traces to traces (Fact
F3); this module provides it in standalone-function form plus the
witness constructions behind Facts F4 and F5 that the Composition
Theorem's proof relies on.
"""

from __future__ import annotations

from typing import AbstractSet, Optional

from repro.channels.channel import Channel
from repro.traces.trace import Trace


def project(trace: Trace, channels: AbstractSet[Channel]) -> Trace:
    """The projection ``t_L``."""
    return trace.project(channels)


def fact_f4(u: Trace, v: Trace,
            channels: AbstractSet[Channel]) -> bool:
    """Fact F4: ``u pre v`` implies ``u_L = v_L`` or ``u_L pre v_L``.

    Returns the truth of the consequent for a concrete ``u pre v`` pair
    (raises if ``u pre v`` does not hold — the fact is conditional).
    """
    if not u.pre(v):
        raise ValueError("fact F4 applies to pairs with u pre v")
    pu, pv = u.project(channels), v.project(channels)
    lu, lv = pu.length(), pv.length()
    if lu == lv:
        return pu.is_prefix_of(pv) and lu == lv
    return pu.pre(pv)


def fact_f5_witness(t: Trace, channels: AbstractSet[Channel],
                    x: Trace, y: Trace,
                    search_depth: int = 10_000
                    ) -> Optional[tuple[Trace, Trace]]:
    """Fact F5's existential witness.

    Given ``x pre y in t_L``, find ``(u, v)`` with ``u pre v in t``,
    ``u_L = x`` and ``v_L = y``.  Implements the paper's construction:
    ``v`` is the *shortest* prefix of ``t`` with ``v_L = y``; ``u`` is its
    immediate predecessor.

    Returns ``None`` if no witness exists within ``search_depth`` prefixes
    of ``t`` (for genuine projections of prefixes of ``t`` a witness
    always exists).
    """
    if not x.pre(y):
        raise ValueError("fact F5 applies to pairs with x pre y")
    target_len = y.length()
    for n in range(1, search_depth + 1):
        v = t.take(n)
        if v.length() < n:
            return None  # trace exhausted
        pv = v.project(channels)
        if pv.length() == target_len and pv.is_prefix_of(y):
            u = t.take(n - 1)
            if u.project(channels) == x and pv == y:
                return u, v
            return None  # shortest prefix reached but projections differ
    return None


def is_projection_of_prefix(candidate: Trace, t: Trace,
                            channels: AbstractSet[Channel],
                            search_depth: int = 10_000) -> bool:
    """Is ``candidate = (t.take(n))_L`` for some ``n ≤ search_depth``?"""
    want = candidate.length()
    for n in range(search_depth + 1):
        prefix = t.take(n)
        if prefix.length() < n:
            # trace ended; check the full projection
            return prefix.project(channels) == candidate
        proj = prefix.project(channels)
        if proj.length() == want:
            if proj == candidate:
                return True
        if proj.length() > want:
            return False
    return False
