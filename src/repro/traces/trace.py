"""Traces: sequences of communication events (§3.1).

A trace is a sequence of ``(channel, message)`` pairs.  The paper uses
"trace" for the *quiescent* communication histories that define a
process; here :class:`Trace` is the data structure for any communication
history — quiescence is a property ascribed by processes and
descriptions, not by the data type.

A :class:`Trace` wraps a :class:`~repro.seq.finite.Seq` of
:class:`~repro.channels.event.Event` values, so it inherits the finite /
lazy duality of the sequence layer: the paper's infinite quiescent traces
(e.g. ``(b,T)^ω`` of §4.2) are lazy traces, and every check the core
performs on them goes through finite prefixes.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Any,
    Callable,
    Iterable,
    Iterator,
    Optional,
)

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.seq.finite import EMPTY, FiniteSeq, Seq
from repro.seq.lazy import LazySeq


class Trace:
    """A finite or lazy sequence of events."""

    __slots__ = ("events", "name", "_hash")

    def __init__(self, events: Seq, name: str = ""):
        self.events = events
        self.name = name
        self._hash = None

    def __reduce__(self):
        # rebuild through ``__init__`` so the cached hash is never
        # shipped across process boundaries: hash values differ per
        # process under hash randomization, so a pickled ``_hash``
        # would be silently wrong on the other side.
        return (type(self), (self.events, self.name))

    # -- constructors ------------------------------------------------------

    @classmethod
    def finite(cls, events: Iterable[Event] = (), name: str = "") -> "Trace":
        """A finite trace from an iterable of events."""
        seq = FiniteSeq(events)
        for e in seq:
            _require_event(e)
        return cls(seq, name=name)

    @classmethod
    def of(cls, *events: Event) -> "Trace":
        """Shorthand finite constructor: ``Trace.of(ev(b,0), ev(d,0))``."""
        return cls.finite(events)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Channel, Any]],
                   name: str = "") -> "Trace":
        """A finite trace from ``(channel, message)`` tuples."""
        return cls.finite((Event(c, m) for c, m in pairs), name=name)

    @classmethod
    def lazy(cls, events: Iterator[Event], name: str = "lazy") -> "Trace":
        """A lazy (possibly infinite) trace from an event iterator."""
        return cls(LazySeq(events, name=name), name=name)

    @classmethod
    def cycle_pairs(cls, pairs: Iterable[tuple[Channel, Any]],
                    name: str = "cycle") -> "Trace":
        """The infinite periodic trace repeating the given block."""
        import itertools

        block = tuple(Event(c, m) for c, m in pairs)
        if not block:
            raise ValueError("cannot cycle an empty block")
        return cls(LazySeq(itertools.cycle(block), name=name), name=name)

    @classmethod
    def empty(cls) -> "Trace":
        """The empty trace ``⊥``."""
        return _EMPTY_TRACE

    # -- basic structure -----------------------------------------------------

    def is_known_finite(self) -> bool:
        return self.events.known_length() is not None

    def known_length(self) -> Optional[int]:
        return self.events.known_length()

    def length(self) -> int:
        """Length of a known-finite trace; raises otherwise."""
        n = self.events.known_length()
        if n is None:
            raise ValueError(
                f"trace {self.name!r} is not known finite; use take()"
            )
        return n

    def item(self, i: int) -> Event:
        return self.events.item(i)

    def take(self, n: int) -> "Trace":
        """The finite prefix of length (at most) ``n``."""
        return Trace(self.events.take(n), name=self.name)

    def append(self, event: Event) -> "Trace":
        """One-step extension of a finite trace."""
        _require_event(event)
        if not isinstance(self.events, FiniteSeq):
            raise ValueError("can only extend a finite trace")
        return Trace(self.events.append(event))

    def concat(self, other: "Trace") -> "Trace":
        if not isinstance(self.events, FiniteSeq) or \
                not isinstance(other.events, FiniteSeq):
            raise ValueError("concat requires finite traces")
        return Trace(self.events.concat(other.events))

    def __iter__(self) -> Iterator[Event]:
        """Iterate a known-finite trace."""
        n = self.length()
        return iter(self.events.take(n).items)

    def iter_upto(self, n: int) -> Iterator[Event]:
        return self.events.iter_upto(n)

    # -- prefix order ----------------------------------------------------

    def is_prefix_of(self, other: "Trace") -> bool:
        """Prefix order; requires self known finite (or forces it)."""
        n = self.events.known_length()
        if n is None:
            raise ValueError("prefix test requires a finite left operand")
        return self.events.take(n).is_prefix_of(other.events)

    def pre(self, other: "Trace") -> bool:
        """The paper's ``u pre v``: prefix, one element shorter."""
        if not (self.is_known_finite() and other.is_known_finite()):
            raise ValueError("pre is a relation on finite traces")
        return (
            other.length() == self.length() + 1
            and self.is_prefix_of(other)
        )

    def prefixes(self) -> Iterator["Trace"]:
        """All finite prefixes of a finite trace, ascending."""
        for n in range(self.length() + 1):
            yield self.take(n)

    def pre_pairs(self, depth: int) -> Iterator[tuple["Trace", "Trace"]]:
        """Pairs ``(u, v)`` with ``u pre v in self``, up to |v| = depth.

        For a finite trace shorter than ``depth`` this enumerates *all*
        its pre-pairs; for a lazy trace it enumerates the pre-pairs among
        the first ``depth`` prefixes — the basis of every bounded
        smoothness check in the library.
        """
        previous = self.take(0)
        for n in range(1, depth + 1):
            current = self.take(n)
            if current.events.known_length() == previous.events.known_length():
                return  # trace ended before reaching depth
            yield previous, current
            previous = current

    # -- channel structure --------------------------------------------------

    def project(self, channels: AbstractSet[Channel]) -> "Trace":
        """The projection ``t_L`` (§3.1.2): keep events on ``channels``."""
        from repro.seq.combinators import seq_filter

        chans = frozenset(channels)
        filtered = seq_filter(
            lambda e: e.channel in chans, self.events,
            name=f"{self.name}|{{{','.join(sorted(c.name for c in chans))}}}",
        )
        return Trace(filtered, name=self.name)

    def sequence_on(self, channel: Channel) -> Seq:
        """The message sequence carried by ``channel`` in this trace.

        This is the function the paper writes as the channel name itself:
        ``b(t) = t_b`` viewed as a plain message sequence.
        """
        from repro.seq.combinators import seq_filter, seq_map

        filtered = seq_filter(
            lambda e: e.channel == channel, self.events,
            name=f"{self.name}.{channel.name}",
        )
        return seq_map(lambda e: e.message, filtered,
                       name=f"{self.name}.{channel.name}")

    def channels_used(self) -> frozenset[Channel]:
        """Channels occurring in a finite trace."""
        return frozenset(e.channel for e in self)

    def messages_on(self, channel: Channel) -> FiniteSeq:
        """Finite-trace shortcut for :meth:`sequence_on`.

        Raises ``ValueError`` when the trace is not known finite: the
        shortcut would otherwise try to force the whole (possibly
        infinite) event stream.  Lazy traces must go through the
        prefix-safe :meth:`sequence_on` instead.
        """
        if self.known_length() is None:
            raise ValueError(
                f"messages_on requires a known-finite trace; "
                f"{self.name!r} is lazy — use sequence_on() instead"
            )
        return FiniteSeq(
            e.message for e in self if e.channel == channel
        )

    def count_on(self, channel: Channel) -> int:
        """Number of events on ``channel`` in a finite trace.

        Like :meth:`messages_on`, refuses lazy traces — counting over
        an unproven-finite trace would force it without bound; use
        ``sequence_on(channel).take(n)`` for a bounded count.
        """
        if self.known_length() is None:
            raise ValueError(
                f"count_on requires a known-finite trace; "
                f"{self.name!r} is lazy — use sequence_on() instead"
            )
        return sum(1 for e in self if e.channel == channel)

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        a, b = self.events.known_length(), other.events.known_length()
        if a is None or b is None:
            raise ValueError(
                "equality of traces of unknown length is undecidable; "
                "compare finite prefixes"
            )
        return self.events.take(a) == other.events.take(b)

    def __hash__(self) -> int:
        # Solution sets, memo tables and cache keys hash the same
        # trace objects repeatedly; cache the hash after the first
        # computation (lazy traces stay unhashable).
        h = self._hash
        if h is not None:
            return h
        n = self.events.known_length()
        if n is None:
            raise ValueError("only finite traces are hashable")
        h = hash(("Trace", self.events.take(n)))
        self._hash = h
        return h

    def __repr__(self) -> str:
        n = self.events.known_length()
        if n is None:
            shown = " ".join(repr(e) for e in self.iter_upto(5))
            return f"Trace⟨{shown} …⟩"
        if n == 0:
            return "Trace⟨⟩"
        shown = " ".join(repr(self.item(i)) for i in range(min(n, 12)))
        ellipsis = " …" if n > 12 else ""
        return f"Trace⟨{shown}{ellipsis}⟩"

    # -- functional helpers ------------------------------------------------

    def map_events(self, fn: Callable[[Event], Event],
                   name: str = "map") -> "Trace":
        from repro.seq.combinators import seq_map

        return Trace(seq_map(fn, self.events, name=name), name=name)


def _require_event(e: Any) -> None:
    if not isinstance(e, Event):
        raise TypeError(f"traces contain Events, got {e!r}")


_EMPTY_TRACE = Trace(EMPTY, name="⊥")


def one_step_extensions(trace: Trace,
                        candidates: Iterable[Event]) -> Iterator[Trace]:
    """All ``v`` with ``trace pre v`` whose new event is a candidate."""
    for event in candidates:
        yield trace.append(event)
