"""Kleene fixpoint iteration (Theorem 3 of the paper).

For a continuous function ``h`` on a cpo, the least fixpoint is the lub of
the chain ``⊥, h(⊥), h²(⊥), …``.  On a computer the chain can only be
materialized to finite depth, so :func:`kleene_fixpoint` iterates with a
*fuel* bound and reports whether the chain stabilized (in which case the
returned value is exactly the least fixpoint) or merely produced an
approximation from below (every element of the Kleene chain is ⊑ the least
fixpoint, so the approximation is sound).

This is the machinery behind the deterministic (Kahn) side of the paper:
Section 2.1's two-copy network, and the bridge of Theorem 4 (the least
fixpoint is the unique smooth solution of ``id ⟵ h``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.order.cpo import CountableChain, Cpo


@dataclass(frozen=True)
class FixpointResult:
    """Outcome of a fuelled Kleene iteration.

    Attributes:
        value: the last computed element ``h^k(⊥)``.
        converged: ``True`` iff ``h^k(⊥) = h^{k+1}(⊥)``; then ``value`` is
            the least fixpoint exactly.
        iterations: the ``k`` at which iteration stopped.
        chain: the materialized prefix of the Kleene chain,
            ``[⊥, h(⊥), …, h^k(⊥)]``.
    """

    value: Any
    converged: bool
    iterations: int
    chain: list[Any] = field(repr=False)


def kleene_chain(cpo: Cpo, h: Callable[[Any], Any]) -> CountableChain:
    """The countable chain ``⊥, h(⊥), h²(⊥), …`` as a lazy object."""
    return CountableChain.by_iteration(cpo, h, name="kleene")


def kleene_fixpoint(cpo: Cpo, h: Callable[[Any], Any],
                    max_iterations: int = 1000) -> FixpointResult:
    """Iterate ``h`` from ``⊥`` until stabilization or fuel runs out.

    ``h`` must be monotone for the result to approximate the least fixpoint
    from below; monotonicity is *not* checked here (use
    :func:`repro.order.checks.check_monotone` in tests).

    Raises:
        ValueError: if ``max_iterations`` is negative.
    """
    if max_iterations < 0:
        raise ValueError("max_iterations must be nonnegative")
    chain = [cpo.bottom]
    current = cpo.bottom
    for i in range(max_iterations):
        nxt = h(current)
        if not cpo.leq(current, nxt):
            raise ValueError(
                "iteration left the ascending Kleene chain at step "
                f"{i}: h is not monotone (or not a self-map) on {cpo.name}"
            )
        chain.append(nxt)
        if cpo.leq(nxt, current):
            return FixpointResult(
                value=current, converged=True, iterations=i, chain=chain
            )
        current = nxt
    converged = cpo.eq(h(current), current)
    return FixpointResult(
        value=current,
        converged=converged,
        iterations=max_iterations,
        chain=chain,
    )


def is_fixpoint(cpo: Cpo, h: Callable[[Any], Any], z: Any) -> bool:
    """Return ``True`` iff ``z = h(z)`` in the order of ``cpo``."""
    return cpo.eq(z, h(z))


def is_least_fixpoint(cpo: Cpo, h: Callable[[Any], Any], z: Any,
                      candidates: list[Any]) -> bool:
    """Check that ``z`` is a fixpoint and ⊑ every fixpoint in ``candidates``.

    Brute-force check for tests over small domains.
    """
    if not is_fixpoint(cpo, h, z):
        return False
    return all(
        cpo.leq(z, y)
        for y in candidates
        if is_fixpoint(cpo, h, y)
    )
