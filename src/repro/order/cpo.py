"""Complete partial orders and chains.

A cpo (Section 3 of the paper) is a partial order with

1. a bottom element ``⊥`` with ``⊥ ⊑ x`` for every ``x``, and
2. a least upper bound for every chain.

Infinite chains cannot be materialized, so :meth:`Cpo.lub_chain` receives a
finite ascending sequence (the materialized part of a chain) and concrete
domains additionally provide lazy lubs where that makes sense (the sequence
and trace domains do).  :class:`CountableChain` packages the paper's notion
of a countable chain ``x^0 ⊑ x^1 ⊑ …`` with ``x^0 = ⊥`` (Section 6), which
is the form of chain used to define smooth solutions over arbitrary cpos.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Any, Callable, Iterator, Sequence

from repro.order.poset import NotAChainError, PartialOrder


class Cpo(PartialOrder):
    """A complete partial order ``(D, ⊑, ⊥)``."""

    @property
    @abstractmethod
    def bottom(self) -> Any:
        """The least element ``⊥`` of the domain."""

    def is_bottom(self, x: Any) -> bool:
        """Return ``True`` iff ``x`` is (order-equal to) ``⊥``."""
        return self.leq(x, self.bottom)

    def eq_upto(self, x: Any, y: Any, depth: int) -> bool:
        """Bounded equality for domains with infinite elements.

        Domains whose elements are all finite (flat domains) use exact
        equality regardless of ``depth``.  Sequence-like domains override
        this with prefix-bounded comparison: a ``False`` answer is always
        conclusive, a ``True`` answer certifies agreement to ``depth``.
        """
        del depth
        return self.eq(x, y)

    def leq_upto(self, x: Any, y: Any, depth: int) -> bool:
        """Bounded order test, analogous to :meth:`eq_upto`."""
        del depth
        return self.leq(x, y)

    def lub_chain(self, chain: Sequence[Any]) -> Any:
        """Least upper bound of a finite ascending chain.

        The default implementation returns the last element after checking
        that the sequence really ascends.  Domains with interesting limits
        override this or provide lazy variants.
        """
        if not chain:
            return self.bottom
        if not self.is_ascending(chain):
            raise NotAChainError(
                f"sequence is not ascending in {self.name}"
            )
        return chain[-1]

    def sample(self) -> list[Any]:
        """A small list of representative elements, used by validators.

        Concrete domains override this; the default offers just ``⊥``.
        """
        return [self.bottom]


class CountableChain:
    """A countable chain ``x^0 ⊑ x^1 ⊑ …`` with ``x^0 = ⊥`` (Section 6).

    The chain is given by a generator function ``nth(n)``; elements are
    memoized.  A chain may be *finite* in content (eventually constant) —
    :meth:`stabilizes_by` detects that.

    The paper defines ``u pre v in S`` to mean ``u = x^n`` and
    ``v = x^{n+1}`` for some ``n``; :meth:`pre_pairs` enumerates these.
    """

    def __init__(self, cpo: Cpo, nth: Callable[[int], Any],
                 name: str = "chain"):
        self.cpo = cpo
        self.name = name
        self._nth = nth
        self._memo: list[Any] = []

    @classmethod
    def from_elements(cls, cpo: Cpo, elements: Sequence[Any],
                      name: str = "chain") -> "CountableChain":
        """Chain that ascends through ``elements`` then stays constant.

        ``elements[0]`` must be order-equal to ``⊥``.
        """
        if not elements:
            raise ValueError("a countable chain is nonempty (x^0 = ⊥)")
        if not cpo.eq(elements[0], cpo.bottom):
            raise ValueError("a countable chain must start at ⊥")
        if not cpo.is_ascending(elements):
            raise NotAChainError("elements do not ascend")
        last = len(elements) - 1

        def nth(n: int) -> Any:
            return elements[min(n, last)]

        return cls(cpo, nth, name=name)

    @classmethod
    def by_iteration(cls, cpo: Cpo, step: Callable[[Any], Any],
                     name: str = "iteration") -> "CountableChain":
        """The Kleene chain ``⊥, h(⊥), h²(⊥), …`` of a monotone ``step``."""

        memo: list[Any] = [cpo.bottom]

        def nth(n: int) -> Any:
            while len(memo) <= n:
                memo.append(step(memo[-1]))
            return memo[n]

        return cls(cpo, nth, name=name)

    def __getitem__(self, n: int) -> Any:
        if n < 0:
            raise IndexError("chain indices are natural numbers")
        while len(self._memo) <= n:
            self._memo.append(self._nth(len(self._memo)))
        return self._memo[n]

    def prefix(self, n: int) -> list[Any]:
        """The first ``n`` elements ``x^0 … x^{n-1}``."""
        return [self[i] for i in range(n)]

    def pre_pairs(self, upto: int) -> Iterator[tuple[Any, Any]]:
        """Yield ``(x^n, x^{n+1})`` for ``n`` in ``[0, upto)``."""
        for n in range(upto):
            yield self[n], self[n + 1]

    def validate(self, upto: int) -> None:
        """Check ascent and the ``x^0 = ⊥`` condition up to index ``upto``.

        Raises :class:`NotAChainError` or :class:`ValueError` on failure.
        """
        if not self.cpo.eq(self[0], self.cpo.bottom):
            raise ValueError(f"{self.name}: x^0 is not ⊥")
        for n in range(upto):
            if not self.cpo.leq(self[n], self[n + 1]):
                raise NotAChainError(
                    f"{self.name}: x^{n} ⋢ x^{n + 1}"
                )

    def stabilizes_by(self, n: int) -> bool:
        """Return ``True`` iff ``x^n = x^{n+1}`` (the chain has converged).

        For a monotone iteration this implies the chain is constant from
        ``n`` on, so ``x^n`` is the lub of the whole chain.
        """
        return self.cpo.eq(self[n], self[n + 1])

    def lub_upto(self, n: int) -> Any:
        """The lub of the materialized prefix ``x^0 … x^n`` (just ``x^n``)."""
        return self[n]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CountableChain {self.name!r} over {self.cpo.name!r}>"
