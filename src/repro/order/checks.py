"""Empirical validators for order-theoretic laws.

The paper assumes its functions are continuous and its domains are cpos.
These validators verify the assumptions on finite samples; they are used
by the test suite and by :mod:`repro.functions.continuity` to sanity-check
every function in the process catalog.

Each ``check_*`` function raises :class:`LawViolation` with a concrete
counterexample on failure and returns ``None`` on success, so they compose
cleanly with pytest.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.order.cpo import Cpo
from repro.order.poset import PartialOrder


class LawViolation(AssertionError):
    """An order-theoretic law failed on a concrete counterexample."""


def check_reflexive(order: PartialOrder, sample: Iterable[Any]) -> None:
    """``x ⊑ x`` for every sampled ``x``."""
    for x in sample:
        if not order.leq(x, x):
            raise LawViolation(f"{order.name}: {x!r} ⋢ {x!r} (reflexivity)")


def check_antisymmetric(order: PartialOrder,
                        sample: Sequence[Any]) -> None:
    """``x ⊑ y`` and ``y ⊑ x`` imply ``x == y`` for sampled pairs."""
    for x in sample:
        for y in sample:
            if order.leq(x, y) and order.leq(y, x) and x != y:
                raise LawViolation(
                    f"{order.name}: {x!r} and {y!r} violate antisymmetry"
                )


def check_transitive(order: PartialOrder, sample: Sequence[Any]) -> None:
    """``x ⊑ y ⊑ z`` implies ``x ⊑ z`` for sampled triples."""
    for x in sample:
        for y in sample:
            if not order.leq(x, y):
                continue
            for z in sample:
                if order.leq(y, z) and not order.leq(x, z):
                    raise LawViolation(
                        f"{order.name}: transitivity fails on "
                        f"{x!r} ⊑ {y!r} ⊑ {z!r}"
                    )


def check_bottom(cpo: Cpo, sample: Iterable[Any]) -> None:
    """``⊥ ⊑ x`` for every sampled ``x``."""
    for x in sample:
        if not cpo.leq(cpo.bottom, x):
            raise LawViolation(f"{cpo.name}: ⊥ ⋢ {x!r}")


def check_partial_order(order: PartialOrder,
                        sample: Sequence[Any]) -> None:
    """Reflexivity, antisymmetry and transitivity on the sample."""
    check_reflexive(order, sample)
    check_antisymmetric(order, sample)
    check_transitive(order, sample)


def check_cpo(cpo: Cpo, sample: Sequence[Any] | None = None) -> None:
    """Partial-order laws plus the bottom law on the sample."""
    if sample is None:
        sample = cpo.sample()
    check_partial_order(cpo, sample)
    check_bottom(cpo, sample)


def check_monotone(fn: Callable[[Any], Any], domain: PartialOrder,
                   codomain: PartialOrder, sample: Sequence[Any],
                   name: str = "f") -> None:
    """``x ⊑ y`` implies ``f(x) ⊑ f(y)`` for sampled pairs."""
    for x in sample:
        for y in sample:
            if domain.leq(x, y) and not codomain.leq(fn(x), fn(y)):
                raise LawViolation(
                    f"{name} is not monotone: {x!r} ⊑ {y!r} but "
                    f"{fn(x)!r} ⋢ {fn(y)!r}"
                )


def check_continuous_on_chain(fn: Callable[[Any], Any], domain: Cpo,
                              codomain: Cpo, chain: Sequence[Any],
                              name: str = "f") -> None:
    """``f(lub S) = lub f(S)`` for a materialized finite chain ``S``.

    A finite chain's lub is its maximum, so this reduces to
    ``f(max S) = max f(S)`` — which for a monotone ``f`` follows
    automatically; the check still catches non-monotone impostors and
    domain errors, and matters for lazily-extended chains whose
    materialized prefix is compared at several depths by callers.
    """
    if not chain:
        return
    lub_in = domain.lub_chain(list(chain))
    images = [fn(x) for x in chain]
    lub_out = codomain.lub_chain(images)
    if not codomain.eq(fn(lub_in), lub_out):
        raise LawViolation(
            f"{name} is not continuous on the sampled chain: "
            f"f(lub) = {fn(lub_in)!r} but lub(f) = {lub_out!r}"
        )
