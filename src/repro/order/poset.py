"""Partial orders.

The paper's semantic universe is built from complete partial orders (cpos);
this module provides the plain partial-order layer: the ordering relation,
upper bounds, least upper bounds, and chains (Section 3 of the paper).

A partial order is represented *extensionally* by an object implementing
:class:`PartialOrder`: a ``leq`` relation plus (optionally) an element
universe used by validators and brute-force searches.  Elements themselves
are ordinary Python values; the order object is passed around explicitly so
the same value type can live in several orders (e.g. ``'T'`` is an element
of both the flat boolean domain and a discrete order).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Optional, Sequence


class PartialOrder(ABC):
    """A partial order ``(D, ⊑)``.

    Subclasses implement :meth:`leq`.  All other operations are derived.
    """

    #: Human-readable name used in reprs and error messages.
    name: str = "poset"

    @abstractmethod
    def leq(self, x: Any, y: Any) -> bool:
        """Return ``True`` iff ``x ⊑ y``."""

    def lt(self, x: Any, y: Any) -> bool:
        """Return ``True`` iff ``x ⊑ y`` and ``x ≠ y`` (strict order)."""
        return self.leq(x, y) and not self.eq(x, y)

    def eq(self, x: Any, y: Any) -> bool:
        """Order-theoretic equality: ``x ⊑ y`` and ``y ⊑ x``.

        For most concrete domains this coincides with ``==``, but domains
        whose elements have non-canonical representations (e.g. lazy
        sequences) may override it.
        """
        return self.leq(x, y) and self.leq(y, x)

    def comparable(self, x: Any, y: Any) -> bool:
        """Return ``True`` iff ``x ⊑ y`` or ``y ⊑ x``."""
        return self.leq(x, y) or self.leq(y, x)

    def is_upper_bound(self, z: Any, elements: Iterable[Any]) -> bool:
        """Return ``True`` iff ``z`` is an upper bound of ``elements``.

        Follows the paper's definition: ``z`` is an upper bound of a
        nonempty set ``S`` iff ``x ⊑ z`` for every ``x`` in ``S``.
        """
        return all(self.leq(x, z) for x in elements)

    def is_lub(self, z: Any, elements: Sequence[Any],
               candidates: Iterable[Any]) -> bool:
        """Return ``True`` iff ``z`` is the least upper bound of ``elements``.

        ``candidates`` is the universe searched for competing upper bounds;
        for infinite domains pass a representative finite sample.
        """
        if not self.is_upper_bound(z, elements):
            return False
        return all(
            self.leq(z, y)
            for y in candidates
            if self.is_upper_bound(y, elements)
        )

    def lub_of_finite(self, elements: Sequence[Any]) -> Any:
        """Least upper bound of a finite *chain*, i.e. its maximum.

        Raises :class:`NotAChainError` if ``elements`` is not totally
        ordered, and :class:`ValueError` if it is empty.
        """
        if not elements:
            raise ValueError("lub of an empty collection is undefined")
        best = elements[0]
        for x in elements[1:]:
            if self.leq(best, x):
                best = x
            elif not self.leq(x, best):
                raise NotAChainError(
                    f"{best!r} and {x!r} are incomparable in {self.name}"
                )
        return best

    def is_chain(self, elements: Sequence[Any]) -> bool:
        """Return ``True`` iff every pair of ``elements`` is comparable.

        This is the paper's definition of a chain (Section 3).  The empty
        collection is *not* a chain (the paper requires nonemptiness).
        """
        if not elements:
            return False
        return all(
            self.comparable(x, y)
            for i, x in enumerate(elements)
            for y in elements[i + 1:]
        )

    def is_ascending(self, elements: Sequence[Any]) -> bool:
        """Return ``True`` iff ``elements`` is a weakly ascending sequence."""
        return all(
            self.leq(a, b) for a, b in zip(elements, elements[1:])
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class NotAChainError(ValueError):
    """Raised when an operation requiring a chain receives incomparables."""


class DiscreteOrder(PartialOrder):
    """The discrete order: ``x ⊑ y`` iff ``x == y``.

    Useful as a degenerate base case in tests; it is not a cpo (no bottom)
    unless it has exactly one element.
    """

    name = "discrete"

    def leq(self, x: Any, y: Any) -> bool:
        return bool(x == y)


class DualOrder(PartialOrder):
    """The opposite order of a given partial order."""

    def __init__(self, base: PartialOrder):
        self.base = base
        self.name = f"dual({base.name})"

    def leq(self, x: Any, y: Any) -> bool:
        return self.base.leq(y, x)


def maximal_elements(order: PartialOrder,
                     elements: Sequence[Any]) -> list[Any]:
    """Return the elements of ``elements`` not strictly below any other."""
    result = []
    for x in elements:
        if not any(order.lt(x, y) for y in elements):
            result.append(x)
    return result


def minimal_elements(order: PartialOrder,
                     elements: Sequence[Any]) -> list[Any]:
    """Return the elements of ``elements`` not strictly above any other."""
    return maximal_elements(DualOrder(order), elements)


def sort_chain(order: PartialOrder, elements: Sequence[Any]) -> list[Any]:
    """Sort a chain into ascending order.

    Raises :class:`NotAChainError` if the elements are not totally ordered.
    """
    result: list[Any] = []
    for x in elements:
        placed = False
        for i, y in enumerate(result):
            if order.leq(x, y):
                result.insert(i, x)
                placed = True
                break
            if not order.leq(y, x):
                raise NotAChainError(
                    f"{x!r} and {y!r} are incomparable in {order.name}"
                )
        if not placed:
            result.append(x)
    return result


def find_lub(order: PartialOrder, elements: Sequence[Any],
             universe: Iterable[Any]) -> Optional[Any]:
    """Brute-force least upper bound of ``elements`` within ``universe``.

    Returns ``None`` if no element of ``universe`` is a lub.  Intended for
    small finite domains (tests, validators).
    """
    uppers = [z for z in universe if order.is_upper_bound(z, elements)]
    for z in uppers:
        if all(order.leq(z, y) for y in uppers):
            return z
    return None
