"""Product cpos.

The paper combines multiple descriptions into one by pairing both sides
(Note in Section 4): the codomain of the combined description is the
cartesian product of the component codomains, ordered componentwise:

    (x₁, …, xₙ) ⊑ (y₁, …, yₙ)   iff   xᵢ ⊑ yᵢ for every i.

The product of cpos is again a cpo, with ``⊥ = (⊥₁, …, ⊥ₙ)`` and lubs
computed componentwise.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence

from repro.order.cpo import Cpo


class ProductCpo(Cpo):
    """The componentwise-ordered product of finitely many cpos."""

    def __init__(self, components: Sequence[Cpo], name: str = ""):
        if not components:
            raise ValueError("a product cpo needs at least one component")
        self.components: tuple[Cpo, ...] = tuple(components)
        self.name = name or (
            "×".join(c.name for c in self.components)
        )

    @property
    def arity(self) -> int:
        return len(self.components)

    @property
    def bottom(self) -> tuple[Any, ...]:
        return tuple(c.bottom for c in self.components)

    def _check(self, x: Any) -> tuple[Any, ...]:
        if not isinstance(x, tuple) or len(x) != self.arity:
            raise ValueError(
                f"{x!r} is not a {self.arity}-tuple element of {self.name}"
            )
        return x

    def leq(self, x: Any, y: Any) -> bool:
        x = self._check(x)
        y = self._check(y)
        return all(
            c.leq(a, b)
            for c, a, b in zip(self.components, x, y)
        )

    def lub_chain(self, chain: Sequence[Any]) -> tuple[Any, ...]:
        if not chain:
            return self.bottom
        columns = list(zip(*(self._check(x) for x in chain)))
        return tuple(
            c.lub_chain(list(col))
            for c, col in zip(self.components, columns)
        )

    def eq_upto(self, x: Any, y: Any, depth: int) -> bool:
        x = self._check(x)
        y = self._check(y)
        return all(
            c.eq_upto(a, b, depth)
            for c, a, b in zip(self.components, x, y)
        )

    def leq_upto(self, x: Any, y: Any, depth: int) -> bool:
        x = self._check(x)
        y = self._check(y)
        return all(
            c.leq_upto(a, b, depth)
            for c, a, b in zip(self.components, x, y)
        )

    def project(self, x: Any, index: int) -> Any:
        """The ``index``-th component of a product element."""
        return self._check(x)[index]

    def sample(self) -> list[Any]:
        per_component = [c.sample()[:3] for c in self.components]
        return [tuple(t) for t in itertools.product(*per_component)]


def pair_cpo(left: Cpo, right: Cpo) -> ProductCpo:
    """The binary product ``left × right``."""
    return ProductCpo((left, right))
