"""Flat domains.

A flat domain lifts a set of values with a fresh bottom element: ``⊥ ⊑ v``
for every value ``v``, and distinct values are incomparable.  The paper
uses several flat domains:

* ``{T, F, ⊥}`` — the domain of the random-bit function ``R`` (§4.3) and of
  the ``AND`` truth table (§4.5);
* ``{T, ⊥}`` — the range of ``R``;
* flat integers — message values.

``BOTTOM`` is a module-level singleton so that flat-domain bottoms compare
equal across domain instances (convenient when composing functions whose
codomains are built independently).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Optional

from repro.order.cpo import Cpo


class _Bottom:
    """The unique bottom token of flat domains."""

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):  # pragma: no cover - pickling support
        return (_Bottom, ())


#: The bottom element shared by all flat domains.
BOTTOM = _Bottom()


def is_flat_bottom(x: Any) -> bool:
    """Return ``True`` iff ``x`` is the flat-domain bottom token."""
    return x is BOTTOM


class FlatCpo(Cpo):
    """The flat cpo over a (possibly unrestricted) set of values.

    If ``values`` is ``None`` the domain is "flat over everything": any
    non-bottom Python value is an element.  Otherwise membership is
    restricted to the given values, and :meth:`leq` raises ``ValueError``
    on foreign elements — catching domain mix-ups early.
    """

    def __init__(self, values: Optional[Iterable[Any]] = None,
                 name: str = "flat"):
        self.values: Optional[FrozenSet[Any]] = (
            None if values is None else frozenset(values)
        )
        self.name = name

    @property
    def bottom(self) -> Any:
        return BOTTOM

    def contains(self, x: Any) -> bool:
        """Return ``True`` iff ``x`` is an element of this domain."""
        if x is BOTTOM:
            return True
        return self.values is None or x in self.values

    def _check(self, x: Any) -> None:
        if not self.contains(x):
            raise ValueError(f"{x!r} is not an element of {self.name}")

    def leq(self, x: Any, y: Any) -> bool:
        self._check(x)
        self._check(y)
        if x is BOTTOM:
            return True
        return x == y and y is not BOTTOM

    def sample(self) -> list[Any]:
        if self.values is None:
            return [BOTTOM]
        return [BOTTOM, *sorted(self.values, key=repr)]


#: The flat booleans ``{T, F, ⊥}`` used throughout Section 4.
TF = FlatCpo({"T", "F"}, name="flat{T,F}")

#: The range ``{T, ⊥}`` of the function R of §4.3.
T_ONLY = FlatCpo({"T"}, name="flat{T}")


def flat_integers(name: str = "flat-int") -> FlatCpo:
    """The flat domain over all Python integers (unrestricted)."""
    return FlatCpo(None, name=name)
