"""Order theory substrate: posets, cpos, flat/product domains, fixpoints.

This package implements the complete-partial-order background of Section 3
of the paper: partial orders, chains and lubs (:mod:`repro.order.poset`,
:mod:`repro.order.cpo`), the flat and product domain constructions used by
the Section 4 examples (:mod:`repro.order.flat`,
:mod:`repro.order.product`), Kleene iteration / Theorem 3
(:mod:`repro.order.fixpoint`), and empirical law validators
(:mod:`repro.order.checks`).
"""

from repro.order.cpo import CountableChain, Cpo
from repro.order.fixpoint import (
    FixpointResult,
    is_fixpoint,
    is_least_fixpoint,
    kleene_chain,
    kleene_fixpoint,
)
from repro.order.flat import BOTTOM, T_ONLY, TF, FlatCpo, is_flat_bottom
from repro.order.poset import (
    DiscreteOrder,
    DualOrder,
    NotAChainError,
    PartialOrder,
    find_lub,
    maximal_elements,
    minimal_elements,
    sort_chain,
)
from repro.order.product import ProductCpo, pair_cpo

__all__ = [
    "BOTTOM",
    "CountableChain",
    "Cpo",
    "DiscreteOrder",
    "DualOrder",
    "FixpointResult",
    "FlatCpo",
    "NotAChainError",
    "PartialOrder",
    "ProductCpo",
    "TF",
    "T_ONLY",
    "find_lub",
    "is_fixpoint",
    "is_flat_bottom",
    "is_least_fixpoint",
    "kleene_chain",
    "kleene_fixpoint",
    "maximal_elements",
    "minimal_elements",
    "pair_cpo",
    "sort_chain",
]
