"""Ticks (§4.2): the deterministic unending stream of ``T``s.

Description: ``b ⟵ T; b``.  Its only smooth solution is the infinite
trace ``(b,T)^ω`` — every finite trace fails the limit condition (the
right side is always one element longer), while the smoothness condition
admits exactly the one-step extensions by ``(b,T)``.
"""

from __future__ import annotations

from typing import Optional

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan
from repro.functions.seq_fns import prepend_of
from repro.processes.process import DescribedProcess
from repro.traces.trace import Trace


def ticks_description(b: Channel) -> Description:
    """``b ⟵ T; b``."""
    return Description(chan(b), prepend_of("T", chan(b)),
                       name=f"{b.name} ⟵ T;{b.name}")


def make(channel: Optional[Channel] = None) -> DescribedProcess:
    b = channel or Channel("b", alphabet={"T"})
    system = DescriptionSystem(
        [ticks_description(b)], channels=[b], name="Ticks"
    )
    return DescribedProcess("Ticks", [b], system)


def the_trace(channel: Channel) -> Trace:
    """``(b,T)^ω`` — the process's unique quiescent trace."""
    return Trace.cycle_pairs([(channel, "T")], name="(b,T)^ω")
