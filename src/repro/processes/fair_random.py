"""Fair random sequence (§4.7): infinitely many ``T``s *and* ``F``s.

Description:

    TRUE(c)  ⟵ trues
    FALSE(c) ⟵ falses

Every smooth solution is an infinite bit sequence whose ``T``
subsequence is ``T^ω`` and whose ``F`` subsequence is ``F^ω`` — i.e.
both bits occur infinitely often.  This is the fairness primitive out of
which §4.8 (finite ticks) and §4.9 (random number) are built.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import ConstFn, chan
from repro.functions.seq_fns import false_of, true_of
from repro.processes.process import DescribedProcess
from repro.seq.builders import repeat
from repro.seq.ordering import SequenceCpo
from repro.traces.trace import Trace


def fair_random_descriptions(c: Channel) -> list[Description]:
    trues = ConstFn(repeat("T", name="trues"), SequenceCpo(),
                    name="trues")
    falses = ConstFn(repeat("F", name="falses"), SequenceCpo(),
                     name="falses")
    return [
        Description(true_of(chan(c)), trues,
                    name=f"TRUE({c.name}) ⟵ trues"),
        Description(false_of(chan(c)), falses,
                    name=f"FALSE({c.name}) ⟵ falses"),
    ]


def make(channel: Optional[Channel] = None) -> DescribedProcess:
    c = channel or Channel("c", alphabet={"T", "F"})
    system = DescriptionSystem(
        fair_random_descriptions(c), channels=[c],
        name="FairRandomSequence",
    )
    return DescribedProcess("FairRandomSequence", [c], system)


def bit_trace(channel: Channel, bits: Iterable[str],
              then_alternate: bool = True,
              name: str = "bits") -> Trace:
    """A lazy trace emitting the given bits, then alternating ``T F``
    forever (which keeps both subsequences infinite — fair)."""
    import itertools

    prefix = tuple(bits)

    def gen():
        for x in prefix:
            yield Event(channel, x)
        if then_alternate:
            for x in itertools.cycle(("T", "F")):
                yield Event(channel, x)

    return Trace.lazy(gen(), name=name)
