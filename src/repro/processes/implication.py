"""Implication (§4.5): receive at most one bit, answer after receiving.

Output ``F`` if the input is ``F``; arbitrary otherwise.  Quiescent
traces (over ``c``, ``d``):

    ⊥    (c,T)(d,T)    (c,T)(d,F)    (c,F)(d,F)

The description uses the Figure-5 implementation: an auxiliary random
bit ``b`` (§4.3) is ANDed with the input —

    R(b) ⟵ T̄ ,   d ⟵ b AND c

The §4.5 reader exercises are reproduced in the tests: ``d ⟵ c AND d``
is *not* a description of this process (it admits spurious smooth
solutions), and a non-strict AND changes the trace set.
"""

from __future__ import annotations

from typing import Optional

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan
from repro.functions.logic import and_of
from repro.processes.process import DescribedProcess
from repro.processes.random_bit import random_bit_description
from repro.traces.trace import Trace

BITS = frozenset({"T", "F"})


def implication_descriptions(b: Channel, c: Channel,
                             d: Channel) -> list[Description]:
    """``R(b) ⟵ T̄`` and ``d ⟵ b AND c`` (Figure 5)."""
    return [
        random_bit_description(b),
        Description(
            chan(d), and_of(chan(b), chan(c)),
            name=f"{d.name} ⟵ {b.name} AND {c.name}",
        ),
    ]


def make(c: Optional[Channel] = None,
         d: Optional[Channel] = None) -> DescribedProcess:
    c = c or Channel("c", alphabet=BITS)
    d = d or Channel("d", alphabet=BITS)
    b = Channel("b_impl", alphabet=BITS, auxiliary=True)
    system = DescriptionSystem(
        implication_descriptions(b, c, d),
        channels=[b, c, d], name="Implication",
    )
    return DescribedProcess("Implication", [b, c, d], system)


def expected_traces(c: Channel, d: Channel) -> set[Trace]:
    """The four quiescent traces listed in §4.5."""
    return {
        Trace.empty(),
        Trace.from_pairs([(c, "T"), (d, "T")]),
        Trace.from_pairs([(c, "T"), (d, "F")]),
        Trace.from_pairs([(c, "F"), (d, "F")]),
    }
