"""The process catalog: §2's deterministic processes and §4's examples."""

from repro.processes import (
    chaos,
    deterministic,
    fair_random,
    finite_ticks,
    fork,
    implication,
    lossy,
    merge,
    random_bit,
    random_number,
    ticks,
)
from repro.processes.network import Network
from repro.processes.process import DescribedProcess, Process

__all__ = [
    "DescribedProcess",
    "Network",
    "Process",
    "chaos",
    "deterministic",
    "fair_random",
    "finite_ticks",
    "fork",
    "implication",
    "lossy",
    "merge",
    "random_bit",
    "random_number",
    "ticks",
]
