"""CHAOS (§4.1): the process that may send anything on its channel.

The paper *derives* the description: if every trace is to be a smooth
solution of ``f ⟵ g``, then ``f`` must be constant (``f(u) = f(v)``
along every edge), and by the limit condition ``g`` equals the same
constant.  Hence CHAOS is ``K ⟵ K`` for any constant ``K``; we use the
bottom of the sequence cpo.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import ConstFn
from repro.processes.process import DescribedProcess
from repro.seq.finite import EMPTY
from repro.seq.ordering import SequenceCpo

DEFAULT_ALPHABET: frozenset[Any] = frozenset({0, 1})


def chaos_description(constant: Any = EMPTY) -> Description:
    """``K ⟵ K`` — every trace is a smooth solution."""
    cpo = SequenceCpo()
    k = ConstFn(constant, cpo, name="K")
    return Description(k, k, name="K ⟵ K")


def make(channel: Optional[Channel] = None,
         alphabet: Iterable[Any] = DEFAULT_ALPHABET
         ) -> DescribedProcess:
    """The CHAOS process on ``channel`` (default: fresh ``b``)."""
    b = channel or Channel("b", alphabet=alphabet)
    system = DescriptionSystem(
        [chaos_description()], channels=[b], name="CHAOS"
    )
    return DescribedProcess("CHAOS", [b], system)
