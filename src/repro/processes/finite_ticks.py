"""Finite sequence of ticks (§4.8): some finite number of ``T``s, halt.

The interest of this process is the fairness property it encodes:
``(d,T)^i`` is a trace for *every* ``i ≥ 0``, yet the infinite
``(d,T)^ω`` is not — a property no single Kahn function can express.

Implementation: an auxiliary fair random sequence ``c`` (§4.7) is
copied to ``d`` up to (not including) its first ``F``:

    TRUE(c) ⟵ trues ,  FALSE(c) ⟵ falses ,  d ⟵ g(c)

where ``g`` takes the longest ``F``-free prefix.  Since ``c`` must
contain an ``F`` (indeed infinitely many), ``d`` is always finite.
"""

from __future__ import annotations

from typing import Optional

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan
from repro.functions.seq_fns import until_first_f_of
from repro.processes.fair_random import bit_trace, fair_random_descriptions
from repro.processes.process import DescribedProcess
from repro.traces.trace import Trace


def make(d: Optional[Channel] = None) -> DescribedProcess:
    d = d or Channel("d", alphabet={"T"})
    c = Channel("c_ticks", alphabet={"T", "F"}, auxiliary=True)
    descriptions = fair_random_descriptions(c) + [
        Description(chan(d), until_first_f_of(chan(c)),
                    name=f"{d.name} ⟵ g({c.name})"),
    ]
    system = DescriptionSystem(descriptions, channels=[c, d],
                               name="FiniteTicks")
    return DescribedProcess(
        "FiniteTicks", [c, d], system,
        witness_fn=lambda t: witness(t, c, d),
    )


def witness(t: Trace, c: Channel, d: Channel) -> Optional[Trace]:
    """An infinite smooth solution projecting to the visible ``(d,T)^i``.

    Shape: ``(c,T)(d,T)`` repeated ``i`` times, then ``(c,F)`` and a fair
    ``T/F`` alternation on ``c`` forever.  Any other visible trace has no
    witness.
    """
    from repro.channels.event import Event

    if not t.is_known_finite():
        return None  # (d,T)^ω and friends are not traces (see tests)
    i = t.length()
    if any(ev.channel != d or ev.message != "T" for ev in t):
        return None

    def gen():
        for _ in range(i):
            yield Event(c, "T")
            yield Event(d, "T")
        yield Event(c, "F")
        tail = bit_trace(c, (), then_alternate=True)
        k = 0
        while True:
            yield tail.item(k)
            k += 1

    return Trace.lazy(gen(), name=f"finite-ticks-witness({i})")
