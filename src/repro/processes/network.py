"""Networks of processes (§3.1.2) and their composed descriptions (§5)."""

from __future__ import annotations

from typing import Iterable

from repro.channels.channel import Channel
from repro.core.composition import Component, ComposedNetwork
from repro.core.description import DEFAULT_DEPTH, DescriptionSystem
from repro.processes.process import DescribedProcess, Process
from repro.traces.trace import Trace


class Network(Process):
    """A finite collection of component processes, itself a process.

    The incident channels are the union of the components'; ``t`` is a
    network trace iff ``tᵢ`` is a trace of component ``i`` for every
    ``i`` (§3.1.2).
    """

    def __init__(self, processes: Iterable[Process],
                 name: str = "network"):
        self.processes = list(processes)
        if not self.processes:
            raise ValueError("a network needs at least one process")
        channels: frozenset[Channel] = frozenset()
        for p in self.processes:
            channels |= p.channels
        super().__init__(name, channels,
                         is_trace=lambda t: self.is_trace(t))

    def is_trace(self, t: Trace, depth: int = DEFAULT_DEPTH) -> bool:
        return all(
            p.is_trace(t.project(p.channels), depth)
            for p in self.processes
        )

    def described_components(self) -> list[DescribedProcess]:
        out = []
        for p in self.processes:
            if not isinstance(p, DescribedProcess):
                raise TypeError(
                    f"component {p.name!r} has no description"
                )
            out.append(p)
        return out

    def composed(self) -> ComposedNetwork:
        """The Theorem 2 composition of the components' descriptions."""
        return ComposedNetwork(
            [
                Component(
                    name=p.name,
                    channels=p.channels,
                    description=p.description(),
                )
                for p in self.described_components()
            ],
            name=self.name,
        )

    def system(self) -> DescriptionSystem:
        """All component descriptions pooled into one system."""
        descriptions = []
        for p in self.described_components():
            descriptions.extend(p.system.descriptions)
        return DescriptionSystem(descriptions, self.channels,
                                 name=self.name)

    def __repr__(self) -> str:
        parts = ", ".join(p.name for p in self.processes)
        return f"Network({self.name!r}: [{parts}])"
