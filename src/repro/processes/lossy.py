"""A lossy channel — an extension beyond the paper's catalog.

A lossy channel delivers an arbitrary *subsequence* of its input, in
order (it may drop any message; no fairness obligation).  The paper
does not define this process, but it falls straight out of the Fork
construction (§4.6): route each input either to the output or to a
dropped-message sink, with the sink hidden.  Description, with an
auxiliary oracle ``b`` of random bits:

    R(b) ⟵ trues ,   d ⟵ g(c, b)

where ``g`` keeps the inputs at the oracle's ``T`` positions (the ``F``
positions are the drops — the Fork's second output, simply never
named).  This is the §8.2 auxiliary-channel pattern again: drops are
internal nondeterminism the trace set must not expose.

The operational agent optionally bounds consecutive drops (a *fair*
lossy channel) — the standard assumption under which retransmission
protocols such as alternating-bit achieve reliable delivery; see
``examples/alternating_bit.py``.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan
from repro.functions.seq_fns import select_of
from repro.kahn.effects import Choose, Recv, Send
from repro.kahn.runtime import AgentBody
from repro.processes.fork import oracle_description
from repro.processes.process import DescribedProcess
from repro.traces.trace import Trace

DEFAULT_ALPHABET = frozenset({0, 1, 2})


def lossy_descriptions(b: Channel, c: Channel,
                       d: Channel) -> list[Description]:
    """``R(b) ⟵ trues , d ⟵ g(c, b)``."""
    return [
        oracle_description(b),
        Description(chan(d), select_of(chan(c), chan(b), "T"),
                    name=f"{d.name} ⟵ g({c.name},{b.name})"),
    ]


def make(c: Optional[Channel] = None, d: Optional[Channel] = None,
         alphabet: Iterable[Any] = DEFAULT_ALPHABET
         ) -> DescribedProcess:
    c = c or Channel("c", alphabet=alphabet)
    d = d or Channel("d", alphabet=alphabet)
    b = Channel("b_lossy", alphabet={"T", "F"}, auxiliary=True)
    system = DescriptionSystem(
        lossy_descriptions(b, c, d), channels=[b, c, d],
        name="LossyChannel",
    )
    return DescribedProcess(
        "LossyChannel", [b, c, d], system,
        witness_fn=lambda t: witness(t, b, c, d),
    )


def route(t: Trace, c: Channel, d: Channel) -> Optional[list[str]]:
    """Oracle bits delivering the observed subsequence, or ``None``.

    Greedy is sound here: walk the inputs; each pending delivery must
    match the next undelivered input *for some* assignment, and since
    drops are unconstrained the earliest match can always be taken.
    Causality (output after its input) is enforced positionally.
    """
    inputs: list[tuple[int, Any]] = []   # (event index, message)
    bits: list[Optional[str]] = []
    cursor = 0  # next input eligible for delivery
    for k, event in enumerate(t):
        if event.channel == c:
            inputs.append((k, event.message))
            bits.append(None)
        elif event.channel == d:
            while cursor < len(inputs) and (
                inputs[cursor][1] != event.message
                or bits[cursor] is not None
            ):
                bits[cursor] = "F"  # dropped
                cursor += 1
            if cursor >= len(inputs):
                return None  # delivery with no matching prior input
            bits[cursor] = "T"
            cursor += 1
    # undelivered leftovers are drops
    return ["F" if bit is None else bit for bit in bits]


def witness(t: Trace, b: Channel, c: Channel,
            d: Channel) -> Optional[Trace]:
    """An infinite smooth solution projecting to the visible trace."""
    import itertools

    from repro.channels.event import Event

    if not t.is_known_finite():
        return None
    bits = route(t, c, d)
    if bits is None:
        return None
    delivered_to_input = [
        i for i, bit in enumerate(bits) if bit == "T"
    ]

    def gen():
        emitted_bits = 0
        delivery_index = 0
        for event in t:
            if event.channel == d:
                need = delivered_to_input[delivery_index] + 1
                while emitted_bits < need:
                    yield Event(b, bits[emitted_bits])
                    emitted_bits += 1
                delivery_index += 1
            yield event
        while emitted_bits < len(bits):
            yield Event(b, bits[emitted_bits])
            emitted_bits += 1
        for _ in itertools.count():
            yield Event(b, "T")

    return Trace.lazy(gen(), name="lossy-witness")


def lossy_agent(c: Channel, d: Channel,
                max_consecutive_drops: Optional[int] = None
                ) -> AgentBody:
    """Operational lossy channel.

    With ``max_consecutive_drops=None`` every drop pattern is possible
    (matching the description exactly).  A bound makes the channel
    *fair-lossy* — it cannot drop forever — which is the standard
    assumption for retransmission protocols.
    """
    consecutive = 0
    while True:
        message = yield Recv(c)
        forced_delivery = (
            max_consecutive_drops is not None
            and consecutive >= max_consecutive_drops
        )
        if forced_delivery:
            drop = 0
        else:
            drop = yield Choose(2)
        if drop == 1:
            consecutive += 1
            continue
        consecutive = 0
        yield Send(d, message)
