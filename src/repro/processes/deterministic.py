"""The deterministic (Kahn) processes used in §2.

* ``copy``        — ``c ⟵ b`` (§2.1, Figure 1);
* ``prepend0``    — ``b ⟵ 0; c`` (§2.1's modified second process);
* ``doubler`` P   — ``b ⟵ 0; 2×d`` (§2.3, Figure 3);
* ``affine`` Q    — ``c ⟵ 2×d + 1`` (§2.3);
* Brock–Ackermann A — ``even(c) ⟵ ⟨0 2⟩ , odd(c) ⟵ b`` (§2.4) — a fair
  merge of the input with the stored sequence ``⟨0 2⟩`` (even outputs
  discriminate the stored items from the odd inputs);
* Brock–Ackermann B — ``b ⟵ f(c)`` with ``f(n; m; x) = ⟨n + 1⟩``.

Kahn-style equations become descriptions directly (left side a channel
function, right side any continuous expression); Theorem 1 applies to
each — the sides are independent — and Theorem 4 makes their networks'
least fixpoints the unique smooth solutions.
"""

from __future__ import annotations

from typing import Optional

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan, const_seq
from repro.functions.seq_fns import (
    affine_of,
    brock_f_of,
    even_of,
    odd_of,
    prepend_of,
    scale_of,
)
from repro.processes.process import DescribedProcess
from repro.seq.finite import fseq


def copy_description(b: Channel, c: Channel) -> Description:
    """``c ⟵ b``: copy every input to the output (§2.1)."""
    return Description(chan(c), chan(b),
                       name=f"{c.name} ⟵ {b.name}")


def prepend0_description(c: Channel, b: Channel) -> Description:
    """``b ⟵ 0; c``: send a 0 first, then copy (§2.1)."""
    return Description(chan(b), prepend_of(0, chan(c)),
                       name=f"{b.name} ⟵ 0;{c.name}")


def doubler_description(d: Channel, b: Channel) -> Description:
    """Process P of §2.3: ``b ⟵ 0; 2×d``."""
    return Description(chan(b), prepend_of(0, scale_of(2, chan(d))),
                       name=f"{b.name} ⟵ 0;2×{d.name}")


def affine_description(d: Channel, c: Channel) -> Description:
    """Process Q of §2.3: ``c ⟵ 2×d + 1``."""
    return Description(chan(c), affine_of(2, 1, chan(d)),
                       name=f"{c.name} ⟵ 2×{d.name}+1")


def brock_a_descriptions(b: Channel, c: Channel) -> list[Description]:
    """Process A of §2.4: ``even(c) ⟵ ⟨0 2⟩ , odd(c) ⟵ b``."""
    return [
        Description(even_of(chan(c)), const_seq(fseq(0, 2), name="⟨0 2⟩"),
                    name=f"even({c.name}) ⟵ ⟨0 2⟩"),
        Description(odd_of(chan(c)), chan(b),
                    name=f"odd({c.name}) ⟵ {b.name}"),
    ]


def brock_b_description(c: Channel, b: Channel) -> Description:
    """Process B of §2.4: ``b ⟵ f(c)``."""
    return Description(chan(b), brock_f_of(chan(c)),
                       name=f"{b.name} ⟵ f({c.name})")


# ---------------------------------------------------------------------------
# Packaged processes
# ---------------------------------------------------------------------------

def make_copy(b: Optional[Channel] = None,
              c: Optional[Channel] = None,
              name: str = "copy") -> DescribedProcess:
    b = b or Channel("b", alphabet={0, 1})
    c = c or Channel("c", alphabet={0, 1})
    system = DescriptionSystem([copy_description(b, c)],
                               channels=[b, c], name=name)
    return DescribedProcess(name, [b, c], system)


def make_prepend0(c: Optional[Channel] = None,
                  b: Optional[Channel] = None,
                  name: str = "prepend0") -> DescribedProcess:
    c = c or Channel("c", alphabet={0})
    b = b or Channel("b", alphabet={0})
    system = DescriptionSystem([prepend0_description(c, b)],
                               channels=[b, c], name=name)
    return DescribedProcess(name, [b, c], system)


def make_doubler(d: Channel, b: Channel,
                 name: str = "P") -> DescribedProcess:
    system = DescriptionSystem([doubler_description(d, b)],
                               channels=[b, d], name=name)
    return DescribedProcess(name, [b, d], system)


def make_affine(d: Channel, c: Channel,
                name: str = "Q") -> DescribedProcess:
    system = DescriptionSystem([affine_description(d, c)],
                               channels=[c, d], name=name)
    return DescribedProcess(name, [c, d], system)


def make_brock_a(b: Channel, c: Channel) -> DescribedProcess:
    system = DescriptionSystem(brock_a_descriptions(b, c),
                               channels=[b, c], name="A")
    return DescribedProcess("A", [b, c], system)


def make_brock_b(c: Channel, b: Channel) -> DescribedProcess:
    system = DescriptionSystem([brock_b_description(c, b)],
                               channels=[b, c], name="B")
    return DescribedProcess("B", [b, c], system)
