"""Merge processes: ``dfm`` (§2.2) and the general fair merge (§4.10).

``dfm`` — discriminated fair merge — takes even integers on ``b``, odd
integers on ``c``, and fairly merges them onto ``d``:

    even(d) ⟵ b ,   odd(d) ⟵ c

The discrimination (parity) lets the inputs be recovered from the
output, so no auxiliary channel is needed; nondeterminism (the merge
order) and fairness (every input eventually appears) are both captured.

The general fair merge (Figure 7) removes the discrimination by tagging:
processes A/B tag inputs with 0/1, process D performs a discriminated
merge on the tags, and C strips tags:

    c' ⟵ t0(c) ,  d' ⟵ t1(d) ,
    ZERO(b) ⟵ c' ,  ONE(b) ⟵ d' ,
    e ⟵ r(b)

with auxiliary channels ``b, c', d'``.  §4.10 then eliminates ``c'`` and
``d'`` (justified by §7):

    ZERO(b) ⟵ t0(c) ,  ONE(b) ⟵ t1(d) ,  e ⟵ r(b)
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan
from repro.functions.seq_fns import (
    even_of,
    odd_of,
    tag_of,
    tagged_of,
    untag_of,
)
from repro.processes.process import DescribedProcess
from repro.traces.trace import Trace

EVENS = frozenset({0, 2, 4})
ODDS = frozenset({1, 3, 5})


# ---------------------------------------------------------------------------
# dfm (§2.2)
# ---------------------------------------------------------------------------

def dfm_descriptions(b: Channel, c: Channel,
                     d: Channel) -> list[Description]:
    """``even(d) ⟵ b , odd(d) ⟵ c``."""
    return [
        Description(even_of(chan(d)), chan(b),
                    name=f"even({d.name}) ⟵ {b.name}"),
        Description(odd_of(chan(d)), chan(c),
                    name=f"odd({d.name}) ⟵ {c.name}"),
    ]


def make_dfm(b: Optional[Channel] = None, c: Optional[Channel] = None,
             d: Optional[Channel] = None,
             evens: Iterable[int] = EVENS,
             odds: Iterable[int] = ODDS) -> DescribedProcess:
    evens, odds = frozenset(evens), frozenset(odds)
    b = b or Channel("b", alphabet=evens)
    c = c or Channel("c", alphabet=odds)
    d = d or Channel("d", alphabet=evens | odds)
    system = DescriptionSystem(
        dfm_descriptions(b, c, d), channels=[b, c, d], name="dfm"
    )
    return DescribedProcess("dfm", [b, c, d], system)


# ---------------------------------------------------------------------------
# Fair merge (§4.10, Figure 7)
# ---------------------------------------------------------------------------

def fair_merge_descriptions_full(
        c: Channel, d: Channel, e: Channel,
        b: Channel, c1: Channel, d1: Channel) -> list[Description]:
    """The five descriptions of the Figure-7 implementation."""
    return [
        Description(chan(c1), tag_of(0, chan(c)),
                    name=f"{c1.name} ⟵ t0({c.name})"),
        Description(chan(d1), tag_of(1, chan(d)),
                    name=f"{d1.name} ⟵ t1({d.name})"),
        Description(tagged_of(0, chan(b)), chan(c1),
                    name=f"ZERO({b.name}) ⟵ {c1.name}"),
        Description(tagged_of(1, chan(b)), chan(d1),
                    name=f"ONE({b.name}) ⟵ {d1.name}"),
        Description(chan(e), untag_of(chan(b)),
                    name=f"{e.name} ⟵ r({b.name})"),
    ]


def fair_merge_descriptions(c: Channel, d: Channel, e: Channel,
                            b: Channel) -> list[Description]:
    """The post-elimination system of §4.10 (c', d' removed)."""
    return [
        Description(tagged_of(0, chan(b)), tag_of(0, chan(c)),
                    name=f"ZERO({b.name}) ⟵ t0({c.name})"),
        Description(tagged_of(1, chan(b)), tag_of(1, chan(d)),
                    name=f"ONE({b.name}) ⟵ t1({d.name})"),
        Description(chan(e), untag_of(chan(b)),
                    name=f"{e.name} ⟵ r({b.name})"),
    ]


def make_fair_merge(c: Optional[Channel] = None,
                    d: Optional[Channel] = None,
                    e: Optional[Channel] = None,
                    alphabet: Iterable[Any] = frozenset({0, 1, 2}),
                    full_network: bool = False) -> DescribedProcess:
    """The fair merge process.

    With ``full_network=True`` the five-description Figure-7 system is
    used (auxiliary ``b``, ``c'``, ``d'``); otherwise the eliminated
    three-description system (auxiliary ``b`` only).
    """
    alphabet = frozenset(alphabet)
    tag_alphabet = frozenset(
        {(0, m) for m in alphabet} | {(1, m) for m in alphabet}
    )
    c = c or Channel("c", alphabet=alphabet)
    d = d or Channel("d", alphabet=alphabet)
    e = e or Channel("e", alphabet=alphabet)
    b = Channel("b_merge", alphabet=tag_alphabet, auxiliary=True)
    if full_network:
        c1 = Channel("c'", alphabet=tag_alphabet, auxiliary=True)
        d1 = Channel("d'", alphabet=tag_alphabet, auxiliary=True)
        descriptions = fair_merge_descriptions_full(c, d, e, b, c1, d1)
        channels = [b, c, c1, d, d1, e]
    else:
        descriptions = fair_merge_descriptions(c, d, e, b)
        channels = [b, c, d, e]
    system = DescriptionSystem(descriptions, channels=channels,
                               name="FairMerge")
    return DescribedProcess(
        "FairMerge", channels, system,
        witness_fn=(None if full_network
                    else (lambda t: witness(t, b, c, d, e))),
    )


def route(t: Trace, c: Channel, d: Channel,
          e: Channel) -> Optional[list[int]]:
    """Assign each output item of a finite visible trace to input ``c``
    (tag 0) or ``d`` (tag 1), or ``None`` if no assignment exists.

    Constraints: outputs preserve each input's order, each output
    follows its input event, and (quiescence, by ``e ⟵ r(b)`` plus the
    ZERO/ONE limit conditions) every input is eventually output.
    """
    events = list(t)

    def go(k: int, pend_c: tuple, pend_d: tuple,
           tags: tuple[int, ...]) -> Optional[tuple[int, ...]]:
        if k == len(events):
            return tags if not pend_c and not pend_d else None
        event = events[k]
        if event.channel == c:
            return go(k + 1, pend_c + (event.message,), pend_d, tags)
        if event.channel == d:
            return go(k + 1, pend_c, pend_d + (event.message,), tags)
        # output event: must match the head of one pending input queue
        # (heads only: each side's items appear on e in arrival order).
        if pend_c and pend_c[0] == event.message:
            found = go(k + 1, pend_c[1:], pend_d, tags + (0,))
            if found is not None:
                return found
        if pend_d and pend_d[0] == event.message:
            found = go(k + 1, pend_c, pend_d[1:], tags + (1,))
            if found is not None:
                return found
        return None

    result = go(0, (), (), ())
    return None if result is None else list(result)


def witness(t: Trace, b: Channel, c: Channel, d: Channel,
            e: Channel) -> Optional[Trace]:
    """A finite smooth solution of the eliminated §4.10 system that
    projects to the finite visible trace ``t``: insert the tagged
    ``b``-event immediately before each output event."""
    from repro.channels.event import Event

    if not t.is_known_finite():
        return None
    tags = route(t, c, d, e)
    if tags is None:
        return None

    def gen():
        out_index = 0
        for event in t:
            if event.channel == e:
                yield Event(b, (tags[out_index], event.message))
                out_index += 1
            yield event

    return Trace.finite(gen(), name="fair-merge-witness")
