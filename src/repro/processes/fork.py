"""Fork (§4.6): route every input to one of two outputs, no fairness.

Implementation (Figure 6): an auxiliary infinite random-bit *oracle*
``b`` decides, per input item, whether it goes to ``d`` (bit ``T``) or
``e`` (bit ``F``).  Descriptions:

    R(b) ⟵ trues ,   d ⟵ g(c, b) ,   e ⟵ h(c, b)

where ``g``/``h`` select the input elements at the oracle's ``T``/``F``
positions.  (The oracle is Park's trick [1982] for expressing
nondeterministic routing with continuous functions.)
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import ConstFn, chan
from repro.functions.logic import r_of
from repro.functions.seq_fns import select_of
from repro.processes.process import DescribedProcess
from repro.seq.builders import repeat
from repro.seq.ordering import SequenceCpo

DEFAULT_ALPHABET = frozenset({0, 1, 2})


def oracle_description(b: Channel) -> Description:
    """``R(b) ⟵ trues``: an unending supply of random bits (§4.4 with a
    tick source already applied)."""
    trues = ConstFn(repeat("T", name="trues"), SequenceCpo(),
                    name="trues")
    return Description(r_of(chan(b)), trues,
                       name=f"R({b.name}) ⟵ trues")


def fork_descriptions(b: Channel, c: Channel, d: Channel,
                      e: Channel) -> list[Description]:
    return [
        oracle_description(b),
        Description(chan(d), select_of(chan(c), chan(b), "T"),
                    name=f"{d.name} ⟵ g({c.name},{b.name})"),
        Description(chan(e), select_of(chan(c), chan(b), "F"),
                    name=f"{e.name} ⟵ h({c.name},{b.name})"),
    ]


def make(c: Optional[Channel] = None, d: Optional[Channel] = None,
         e: Optional[Channel] = None,
         alphabet: Iterable[Any] = DEFAULT_ALPHABET
         ) -> DescribedProcess:
    c = c or Channel("c", alphabet=alphabet)
    d = d or Channel("d", alphabet=alphabet)
    e = e or Channel("e", alphabet=alphabet)
    b = Channel("b_fork", alphabet={"T", "F"}, auxiliary=True)
    system = DescriptionSystem(
        fork_descriptions(b, c, d, e),
        channels=[b, c, d, e], name="Fork",
    )
    return DescribedProcess(
        "Fork", [b, c, d, e], system,
        witness_fn=lambda t: witness(t, b, c, d, e),
    )


def route(t: "Trace", c: Channel, d: Channel,
          e: Channel) -> Optional[list[str]]:
    """Find oracle bits routing ``c``'s items to the ``d``/``e`` outputs
    observed in a finite visible trace, or ``None`` if impossible.

    Constraints encoded: outputs preserve input order per side, each
    output event follows its input event, and (quiescence) every input
    is routed.  Resolved by depth-first search over the (few) ambiguous
    assignments.
    """
    events = list(t)
    n_inputs = sum(1 for ev in events if ev.channel == c)

    def go(k: int, pending: tuple[tuple[int, Any], ...],
           received: int,
           bits: dict[int, str]) -> Optional[dict[int, str]]:
        if k == len(events):
            return dict(bits) if not pending else None
        event = events[k]
        if event.channel == c:
            return go(k + 1,
                      pending + ((received, event.message),),
                      received + 1, bits)
        want = "T" if event.channel == d else "F"
        last_same = max(
            (i for i, bit in bits.items() if bit == want), default=-1
        )
        for slot, (idx, msg) in enumerate(pending):
            if msg != event.message or idx <= last_same:
                continue
            new_bits = dict(bits)
            new_bits[idx] = want
            rest = pending[:slot] + pending[slot + 1:]
            found = go(k + 1, rest, received, new_bits)
            if found is not None:
                return found
        return None

    assignment = go(0, (), 0, {})
    if assignment is None:
        return None
    return [assignment[i] for i in range(n_inputs)]


def witness(t: "Trace", b: Channel, c: Channel, d: Channel,
            e: Channel) -> Optional["Trace"]:
    """An infinite smooth solution of the Fork description projecting to
    the finite visible trace ``t`` — or ``None`` when ``t`` is not a
    Fork trace.

    Oracle bits are emitted in index order just before they are needed;
    after the visible events the oracle is padded with ``T`` forever
    (``R(b) ⟵ trues`` forces every smooth solution to be infinite)."""
    import itertools

    from repro.channels.event import Event as Ev
    from repro.traces.trace import Trace as Tr

    if not t.is_known_finite():
        return None
    bits = route(t, c, d, e)
    if bits is None:
        return None
    events = list(t)
    input_index_of_output = _match_outputs_to_inputs(events, c, d, e,
                                                     bits)

    def gen():
        emitted_bits = 0
        for k, event in enumerate(events):
            if event.channel in (d, e):
                need = input_index_of_output[k] + 1
                while emitted_bits < need:
                    yield Ev(b, bits[emitted_bits])
                    emitted_bits += 1
            yield event
        while emitted_bits < len(bits):
            yield Ev(b, bits[emitted_bits])
            emitted_bits += 1
        for _ in itertools.count():
            yield Ev(b, "T")

    return Tr.lazy(gen(), name="fork-witness")


def _match_outputs_to_inputs(events: list, c: Channel, d: Channel,
                             e: Channel,
                             bits: list[str]) -> dict[int, int]:
    """Map each output event position to the input index it carries."""
    t_indices = [i for i, bit in enumerate(bits) if bit == "T"]
    f_indices = [i for i, bit in enumerate(bits) if bit == "F"]
    out: dict[int, int] = {}
    ti = fi = 0
    for k, event in enumerate(events):
        if event.channel == d:
            out[k] = t_indices[ti]
            ti += 1
        elif event.channel == e:
            out[k] = f_indices[fi]
            fi += 1
    return out
