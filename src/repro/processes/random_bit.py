"""Random bit (§4.3) and random bit sequence (§4.4).

§4.3: a process with output channel ``b`` that sends one bit (``T`` or
``F``) and halts.  Description: ``R(b) ⟵ T̄`` where ``R`` maps both bits
to ``T``.  The smooth solutions are exactly ``(b,T)`` and ``(b,F)`` —
note how applying the information-discarding ``R`` on the *left* turns
an equation into a nondeterministic choice.

§4.4: with an input channel ``c`` of ticks, ``R(b) ⟵ c`` produces one
fresh random bit per tick.
"""

from __future__ import annotations

from typing import Optional

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan, const_seq
from repro.functions.logic import r_of
from repro.processes.process import DescribedProcess
from repro.seq.finite import fseq

BIT_ALPHABET = frozenset({"T", "F"})


def random_bit_description(b: Channel) -> Description:
    """``R(b) ⟵ T̄`` (one bit, then halt)."""
    return Description(
        r_of(chan(b)), const_seq(fseq("T"), name="T̄"),
        name=f"R({b.name}) ⟵ T̄",
    )


def random_bit_sequence_description(b: Channel,
                                    c: Channel) -> Description:
    """``R(b) ⟵ c`` (one random bit per tick received on ``c``)."""
    return Description(
        r_of(chan(b)), chan(c),
        name=f"R({b.name}) ⟵ {c.name}",
    )


def make(channel: Optional[Channel] = None) -> DescribedProcess:
    """The §4.3 single random bit process."""
    b = channel or Channel("b", alphabet=BIT_ALPHABET)
    system = DescriptionSystem(
        [random_bit_description(b)], channels=[b], name="RandomBit"
    )
    return DescribedProcess("RandomBit", [b], system)


def make_sequence(b: Optional[Channel] = None,
                  c: Optional[Channel] = None) -> DescribedProcess:
    """The §4.4 random bit sequence process (input ``c``: ticks)."""
    b = b or Channel("b", alphabet=BIT_ALPHABET)
    c = c or Channel("c", alphabet={"T"})
    system = DescriptionSystem(
        [random_bit_sequence_description(b, c)],
        channels=[b, c], name="RandomBitSequence",
    )
    return DescribedProcess("RandomBitSequence", [b, c], system)
