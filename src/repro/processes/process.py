"""Processes as trace sets, specified by descriptions (§3.1–§3.2, §8.2).

A process is (1) a set of incident channels and (2) a set of quiescent
traces over them.  A :class:`DescribedProcess` obtains its trace set
from a description system: the traces are the smooth solutions —
projected onto the non-auxiliary incident channels when the description
introduces auxiliary channels (§8.2's semantics).

Trace-set membership for described processes:

* with no auxiliary channels, ``t`` is a trace iff ``t`` is a smooth
  solution (decidable for finite ``t``, bounded for lazy ``t``);
* with auxiliary channels, membership is existential ("some smooth
  solution projects to ``t``"), realized by bounded solver enumeration.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.channels.channel import Channel, non_auxiliary
from repro.core.description import (
    DEFAULT_DEPTH,
    Description,
    DescriptionSystem,
)
from repro.core.solver import (
    CandidateFn,
    SmoothSolutionSolver,
    alphabet_candidates,
)
from repro.traces.trace import Trace


class Process:
    """A process given extensionally: channels plus a trace predicate."""

    def __init__(self, name: str, channels: Iterable[Channel],
                 is_trace: Callable[[Trace], bool]):
        self.name = name
        self.channels = frozenset(channels)
        self._is_trace = is_trace

    def is_trace(self, t: Trace, depth: int = DEFAULT_DEPTH) -> bool:
        del depth
        return self._is_trace(t)

    def project(self, t: Trace) -> Trace:
        return t.project(self.channels)

    def __repr__(self) -> str:
        chans = ",".join(sorted(c.name for c in self.channels))
        return f"Process({self.name!r}: {chans})"


class DescribedProcess(Process):
    """A process whose trace set is given by a description system."""

    def __init__(self, name: str, channels: Iterable[Channel],
                 system: DescriptionSystem,
                 candidates: Optional[CandidateFn] = None,
                 aux_search_slack: int = 2,
                 witness_fn: Optional[
                     Callable[[Trace], Optional[Trace]]] = None):
        self.system = system
        self.candidates = candidates
        #: For membership with auxiliary channels: how many auxiliary
        #: events to allow per visible event (plus a constant) when
        #: searching for a witnessing smooth solution.
        self.aux_search_slack = aux_search_slack
        #: Optional constructive witness: visible trace ↦ candidate
        #: smooth solution projecting to it (or ``None``).  Needed when
        #: the smooth solutions are all infinite (e.g. oracle-driven
        #: processes like Fork, whose description forces an infinite
        #: auxiliary channel), where solver enumeration cannot decide
        #: membership of finite visible traces.
        self.witness_fn = witness_fn
        all_channels = frozenset(channels)
        super().__init__(
            name, all_channels,
            is_trace=lambda t: self.is_trace(t),
        )

    @property
    def visible_channels(self) -> frozenset[Channel]:
        """Incident non-auxiliary channels — where traces live (§8.2)."""
        return non_auxiliary(self.channels)

    @property
    def auxiliary_channels(self) -> frozenset[Channel]:
        return self.channels - self.visible_channels

    def description(self) -> Description:
        return self.system.combined()

    def _candidates(self) -> CandidateFn:
        if self.candidates is not None:
            return self.candidates
        return alphabet_candidates(self.channels)

    def solver(self, limit_depth: int = DEFAULT_DEPTH
               ) -> SmoothSolutionSolver:
        return SmoothSolutionSolver(
            self.description(), self._candidates(),
            limit_depth=limit_depth,
        )

    # -- trace-set membership ---------------------------------------------

    def is_trace(self, t: Trace, depth: int = DEFAULT_DEPTH) -> bool:
        """Is ``t`` (over the visible channels) a quiescent trace?

        Exact for finite ``t`` without auxiliary channels; for auxiliary
        channels the existential is resolved by bounded enumeration —
        sound, and complete whenever a witnessing smooth solution exists
        within ``(slack + 1)·|t| + slack`` events (use
        :meth:`is_trace_within` directly to widen the search, e.g. for
        the §4.9 random-number process where the auxiliary event count
        grows with the *message value*, not the trace length).
        """
        if not self.auxiliary_channels:
            return self.description().is_smooth_solution(t, depth)
        if self.witness_fn is not None:
            candidate = self.witness_fn(t)
            if candidate is None:
                return False
            return self._witness_checks_out(candidate, t, depth)
        if not t.is_known_finite():
            raise ValueError(
                "membership with auxiliary channels is only implemented "
                "for finite traces"
            )
        slack = self.aux_search_slack
        return self.is_trace_within(
            t, search_depth=(slack + 1) * t.length() + slack
        )

    def _witness_checks_out(self, candidate: Trace, t: Trace,
                            depth: int) -> bool:
        return (
            self._projects_to(candidate, t, depth)
            and self.description().is_smooth_solution(candidate, depth)
        )

    def _projects_to(self, candidate: Trace, t: Trace,
                     depth: int, scan_cap: int = 100_000) -> bool:
        """Does the candidate's visible projection equal finite ``t``?

        Scans the (possibly infinite) candidate event-by-event: all of
        ``t``'s events must appear, in order, and no extra visible event
        may follow within ``depth`` further events (beyond that, the
        description's limit condition pins the visible content).
        """
        if not t.is_known_finite():
            raise ValueError("witness comparison needs finite t")
        visible = self.visible_channels
        want = list(t)
        matched = 0
        extra_scan = 0
        i = 0
        while i < scan_cap:
            try:
                event = candidate.item(i)
            except IndexError:
                return matched == len(want)
            i += 1
            if event.channel in visible:
                if matched < len(want):
                    if event != want[matched]:
                        return False
                    matched += 1
                else:
                    return False  # surplus visible event
            elif matched == len(want):
                extra_scan += 1
                if extra_scan >= depth:
                    return True
        return matched == len(want)

    def is_trace_within(self, t: Trace, search_depth: int) -> bool:
        """Existential membership via solver enumeration to a depth."""
        visible = self.visible_channels
        result = self.solver().explore(search_depth)
        return any(
            s.project(visible) == t for s in result.finite_solutions
        )

    def traces_upto(self, depth: int,
                    limit_depth: int = DEFAULT_DEPTH) -> set[Trace]:
        """All finite quiescent traces reachable within ``depth`` solver
        steps, projected onto the visible channels."""
        result = self.solver(limit_depth).explore(depth)
        visible = self.visible_channels
        return {s.project(visible) for s in result.finite_solutions}

    def smooth_solutions_upto(self, depth: int,
                              limit_depth: int = DEFAULT_DEPTH
                              ) -> list[Trace]:
        """Unprojected finite smooth solutions (including auxiliaries)."""
        return self.solver(limit_depth).explore(depth).finite_solutions
